#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, the unsafe audit and the race-freedom
# matrix, then the full test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== unsafe audit =="
cargo test --offline -q --test unsafe_audit

echo "== race-freedom matrix =="
cargo test --offline -q --test race_freedom

echo "== schedule-exploration verify lane =="
# Seeded + round-robin schedule matrix over all six algorithms (including
# MORTON's bounded-exhaustive sort-and-emit kernel pass), plus the
# publication-order mutation self-test (the explorer must find the
# re-introduced bug). The full bounded-exhaustive pass is #[ignore]d here
# and runs on the paper-scale line below.
cargo test --offline -q --test schedule_matrix --test schedule_mutation

echo "== batched force kernel lane (parity + grouped matrix cells) =="
# The grouped traversal/evaluation kernel's dedicated gates: bitwise parity
# at group_size = 1, ≤1e-12 grouped parity across all six algorithms, the
# group-window property test, and the group-size race/schedule cells (the
# default matrices above already cover group_size = 16).
cargo test --offline -q --test flat_force
cargo test --offline -q --test race_freedom grouped_force_kernel
cargo test --offline -q --test schedule_matrix grouped_force_kernel

echo "== build (release) =="
cargo build --offline --release

echo "== full test suite =="
cargo test --offline -q --workspace

echo "== paper-scale ignored suites =="
cargo test --offline -q --test platform_behavior --test race_freedom -- --ignored
cargo test --offline -q --test schedule_matrix -- --ignored

echo "== repro smoke run (batched sweep over all six algorithms, --jobs 2) + emitted-JSON schema checks =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
REPRO="$PWD/target/release/repro"
(cd "$SMOKE_DIR" && "$REPRO" all --scale tiny --jobs 2 \
    --json results.json --trace trace.json >/dev/null)
"$REPRO" check-json "$SMOKE_DIR/results.json"
"$REPRO" check-json "$SMOKE_DIR/BENCH_tiny.json"
"$REPRO" check-trace "$SMOKE_DIR/trace.json"

echo "== report lane (attributed telemetry + scaling analysis) =="
# Smoke-run the scaling/analysis subsystem and schema-check what it emits;
# check-json also re-derives the attribution tiling property from the
# report_comm records alone. The schema-drift test (every emitted metric
# key covered by the validator) runs with the library tests above.
(cd "$SMOKE_DIR" && "$REPRO" report --scale tiny >/dev/null)
"$REPRO" check-json "$SMOKE_DIR/REPORT_tiny.json"

echo "== sweep determinism gate (--jobs 2 vs --jobs 1) =="
# Single-processor runs are bitwise deterministic: table1 must emit
# byte-identical JSON whatever the scheduler width. Multi-processor simulated
# timings carry inherent run-to-run jitter (real thread interleaving feeds
# the contention model), so the full matrix is compared structurally — same
# experiments, configurations and series.
(cd "$SMOKE_DIR" && "$REPRO" table1 --scale tiny --jobs 2 --json table1_j2.json >/dev/null)
(cd "$SMOKE_DIR" && "$REPRO" table1 --scale tiny --jobs 1 --json table1_j1.json >/dev/null)
cmp "$SMOKE_DIR/table1_j2.json" "$SMOKE_DIR/table1_j1.json"
echo "table1 --jobs 2 and --jobs 1 outputs are byte-identical"
(cd "$SMOKE_DIR" && "$REPRO" matrix --scale tiny --jobs 2 --json matrix_j2.json >/dev/null)
(cd "$SMOKE_DIR" && "$REPRO" matrix --scale tiny --jobs 1 --json matrix_j1.json >/dev/null)
"$REPRO" check-same "$SMOKE_DIR/matrix_j2.json" "$SMOKE_DIR/matrix_j1.json"

echo "== serve lane (unix-socket smoke against the serve binary) =="
# Boot the standalone server, push a couple of jobs through a real socket,
# and shut it down gracefully; its final stats line must account for every
# job. The protocol robustness matrix (malformed/oversized/disconnect)
# runs with the integration tests above (tests/serve_protocol.rs).
SERVE_DIR="$SMOKE_DIR/serve"
mkdir -p "$SERVE_DIR"
SOCK="$SERVE_DIR/serve.sock"
"$PWD/target/release/serve" --unix "$SOCK" --workers 2 --queue-cap 16 --engines 4 \
    > "$SERVE_DIR/serve_stats.json" &
SERVE_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || { echo "serve binary never bound $SOCK"; exit 1; }
python3 - "$SOCK" <<'EOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX); s.connect(sys.argv[1])
f = s.makefile("rw")
for i in range(4):
    f.write(json.dumps({"op": "job", "id": f"smoke{i}", "tenant": "gate",
                        "n": 512, "steps": 1, "warmup": 0}) + "\n")
f.flush()
for i in range(4):
    r = json.loads(f.readline())
    assert r.get("ok") is True, r
f.write('{"op":"shutdown"}\n'); f.flush()
assert json.loads(f.readline()).get("ok") is True
EOF
wait "$SERVE_PID"
grep -q '"served_total":4' "$SERVE_DIR/serve_stats.json" || {
    echo "serve final stats wrong:"; cat "$SERVE_DIR/serve_stats.json"; exit 1; }

echo "== serve soak (mixed-tenant load, backpressure under burst) =="
# >= 200 jobs across >= 2 tenants through the self-hosted server: zero
# failures, every digest bitwise-identical to a direct run, explicit
# queue_full backpressure under the pipelined burst, then schema-check the
# emitted serve_* records. Runs in its own directory so the treebuild
# BENCH document above is not clobbered.
(cd "$SERVE_DIR" && "$REPRO" bench-serve --scale tiny --tenants 2 --jobs 100 \
    --workers 2 --queue-cap 8 --engines 4 --burst 40 --expect-backpressure)
"$REPRO" check-json "$SERVE_DIR/BENCH_tiny.json"

echo "== bench regression gate (fresh treebuild vs committed BENCH_small.json) =="
"$REPRO" check-json BENCH_small.json
(cd "$SMOKE_DIR" && "$REPRO" treebuild --scale small >/dev/null)
"$REPRO" bench-diff BENCH_small.json "$SMOKE_DIR/BENCH_small.json" --max-regress 0.25

echo "All checks passed."
