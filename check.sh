#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, the unsafe audit and the race-freedom
# matrix, then the full test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== unsafe audit =="
cargo test --offline -q --test unsafe_audit

echo "== race-freedom matrix =="
cargo test --offline -q --test race_freedom

echo "== build (release) =="
cargo build --offline --release

echo "== full test suite =="
cargo test --offline -q --workspace

echo "All checks passed."
