#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, the unsafe audit and the race-freedom
# matrix, then the full test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== unsafe audit =="
cargo test --offline -q --test unsafe_audit

echo "== race-freedom matrix =="
cargo test --offline -q --test race_freedom

echo "== build (release) =="
cargo build --offline --release

echo "== full test suite =="
cargo test --offline -q --workspace

echo "== paper-scale ignored suites =="
cargo test --offline -q --test platform_behavior --test race_freedom -- --ignored

echo "== repro smoke run + emitted-JSON schema checks =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
REPRO="$PWD/target/release/repro"
(cd "$SMOKE_DIR" && "$REPRO" all --scale tiny \
    --json results.json --trace trace.json >/dev/null)
"$REPRO" check-json "$SMOKE_DIR/results.json"
"$REPRO" check-json "$SMOKE_DIR/BENCH_tiny.json"
"$REPRO" check-trace "$SMOKE_DIR/trace.json"

echo "== bench regression gate (fresh treebuild vs committed BENCH_small.json) =="
"$REPRO" check-json BENCH_small.json
(cd "$SMOKE_DIR" && "$REPRO" treebuild --scale small >/dev/null)
"$REPRO" bench-diff BENCH_small.json "$SMOKE_DIR/BENCH_small.json" --max-regress 0.25

echo "All checks passed."
