//! Quickstart: run a parallel Barnes-Hut galaxy simulation with the paper's
//! lock-free SPACE tree builder on native threads.
//!
//! ```text
//! cargo run --release --example quickstart [n_bodies] [threads] [steps]
//! ```

use bh_repro::bh_core::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("Generating a {n}-body Plummer galaxy...");
    let bodies = Model::Plummer.generate(n, 42);

    let env = NativeEnv::new(threads);
    let mut cfg = SimConfig::new(Algorithm::Space);
    cfg.warmup_steps = 1;
    cfg.measured_steps = steps;

    println!("Running {steps} measured steps on {threads} threads (SPACE tree builder)...");
    let (stats, final_bodies) = run_simulation_with_state(&env, &cfg, &bodies);
    stats.assert_valid();

    let total_ms = stats.total_time() as f64 / 1e6;
    println!("\nmeasured wall time     : {total_ms:.1} ms over {steps} steps");
    println!(
        "tree-build share       : {:.1}%",
        100.0 * stats.tree_fraction()
    );
    println!(
        "locks in tree build    : {} total across {} threads (SPACE is lock-free)",
        stats.tree_locks_per_proc().iter().sum::<u64>(),
        threads
    );

    // Show that the galaxy actually evolved.
    let drift: f64 = bodies
        .iter()
        .zip(&final_bodies)
        .map(|(a, b)| a.pos.dist(b.pos))
        .sum::<f64>()
        / n as f64;
    println!("mean body displacement : {drift:.4} length units");
}
