//! Compare all six tree-building algorithms (the paper's five plus the
//! sort-based MORTON) on native threads: wall time per phase, lock counts,
//! and structural agreement.
//!
//! ```text
//! cargo run --release --example algorithm_shootout [n_bodies] [threads]
//! ```

use bh_repro::bh_core::prelude::*;
use bh_repro::bh_core::tree::validate;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let bodies = Model::Plummer.generate(n, 2024);

    // Reference structure for cross-checking.
    let reference = SeqTree::build(&bodies, 8);
    let (cells, leaves) = reference.cell_and_leaf_counts();
    println!(
        "{n} bodies -> octree with {cells} cells, {leaves} leaves, depth {}\n",
        reference.depth()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "alg", "tree ms", "total ms", "tree locks", "lock/body", "tree%"
    );

    for alg in Algorithm::ALL {
        let env = NativeEnv::new(threads);
        let mut cfg = SimConfig::new(alg);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 2;
        let stats = run_simulation(&env, &cfg, &bodies);
        stats.assert_valid();
        let locks: u64 = stats.tree_locks_per_proc().iter().sum();
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>12} {:>12.3} {:>9.1}%",
            alg.name(),
            stats.tree_time() as f64 / 1e6,
            stats.total_time() as f64 / 1e6,
            locks,
            locks as f64 / (n as f64 * cfg.measured_steps as f64),
            100.0 * stats.tree_fraction(),
        );
    }

    // Structural agreement: every rebuild algorithm produces the exact tree
    // the sequential code does (UPDATE may retain extra empty cells).
    println!("\nCross-checking structural agreement against the sequential tree...");
    for alg in [
        Algorithm::Orig,
        Algorithm::Local,
        Algorithm::Partree,
        Algorithm::Space,
    ] {
        let env = NativeEnv::new(threads);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, 8, alg.layout());
        let builder = bh_repro::bh_core::algorithms::Builder::new(&env, alg, n, 8);
        bh_repro::bh_core::harness::spmd(&env, |proc, ctx| {
            let cube = bh_repro::bh_core::algorithms::common::bounds_phase(&env, ctx, &world, proc);
            builder.build(&env, ctx, &tree, &world, proc, 0, cube);
            env.barrier(ctx);
            builder.com(&env, ctx, &tree, &world, proc, 0);
            env.barrier(ctx);
        });
        validate::matches_reference(&tree, &reference).unwrap_or_else(|e| panic!("{alg}: {e}"));
        println!("  {alg:<8} matches the sequential reference exactly");
    }
}
