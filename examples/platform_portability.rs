//! The paper's headline experiment in miniature: performance portability of
//! the shared-address-space programming model. The *same* tree-building code
//! runs on five simulated platforms — from hardware cache coherence to
//! page-based software shared virtual memory — comparing the classic LOCAL
//! algorithm against the paper's lock-free SPACE algorithm.
//!
//! ```text
//! cargo run --release --example platform_portability [n_bodies] [procs]
//! ```

use bh_repro::bh_core::prelude::*;
use bh_repro::ssmp::{platform, Machine};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_192);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let bodies = Model::Plummer.generate(n, 1998);

    println!("{n} bodies, {procs} simulated processors\n");
    println!(
        "{:<16} {:>13} {:>13} {:>11} {:>11}",
        "platform", "LOCAL speedup", "SPACE speedup", "LOCAL tree%", "SPACE tree%"
    );

    for cost in platform::all_platforms(procs) {
        // Sequential baseline: lock-free one-processor run on the same
        // platform model.
        let seq_machine = Machine::new(cost.clone(), 1);
        let mut seq_cfg = SimConfig::new(Algorithm::Partree);
        seq_cfg.warmup_steps = 1;
        seq_cfg.measured_steps = 2;
        let seq = run_simulation(&seq_machine, &seq_cfg, &bodies);
        seq.assert_valid();

        let run = |alg: Algorithm| {
            let machine = Machine::new(cost.clone(), procs);
            let mut cfg = SimConfig::new(alg);
            cfg.warmup_steps = 1;
            cfg.measured_steps = 2;
            let stats = run_simulation(&machine, &cfg, &bodies);
            stats.assert_valid();
            (
                seq.total_time() as f64 / stats.total_time().max(1) as f64,
                stats.tree_fraction(),
            )
        };
        let (local_s, local_f) = run(Algorithm::Local);
        let (space_s, space_f) = run(Algorithm::Space);
        println!(
            "{:<16} {:>13.2} {:>13.2} {:>10.1}% {:>10.1}%",
            cost.name,
            local_s,
            space_s,
            100.0 * local_f,
            100.0 * space_f
        );
    }

    println!("\nOn the hardware-coherent machines both algorithms do fine; on the");
    println!("software shared-virtual-memory platforms the lock-per-insert LOCAL");
    println!("algorithm drowns in synchronization protocol costs while the");
    println!("lock-free SPACE algorithm keeps the tree build a small fraction of");
    println!("the step — the performance portability the paper argues for.");
}
