//! Two Plummer clusters on a collision course — the kind of irregular,
//! dynamically evolving workload the paper's introduction motivates. Tracks
//! energy conservation and tree shape as the clusters merge, using the
//! UPDATE algorithm (incremental tree maintenance shines when the
//! distribution evolves slowly between steps).
//!
//! ```text
//! cargo run --release --example galaxy_collision [n_bodies] [threads]
//! ```

use bh_repro::bh_core::body::total_energy;
use bh_repro::bh_core::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let epochs = 5;
    let steps_per_epoch = 4;

    println!("Two {}-body clusters approaching head-on...", n / 2);
    let mut bodies = Model::TwoClusterCollision.generate(n, 7);
    let params = ForceParams {
        theta: 0.8,
        eps: 0.05,
        gravity: 1.0,
    };
    let e0 = total_energy(&bodies, params.gravity, params.eps);
    println!("initial total energy: {e0:.4}\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "step", "separation", "energy", "drift", "tree%"
    );

    let env = NativeEnv::new(threads);
    for epoch in 0..epochs {
        let mut cfg = SimConfig::new(Algorithm::Update);
        cfg.force = params;
        cfg.dt = 0.02;
        cfg.warmup_steps = 0;
        cfg.measured_steps = steps_per_epoch;
        let (stats, next) = run_simulation_with_state(&env, &cfg, &bodies);
        stats.assert_valid();
        bodies = next;

        // Separation between the two clusters' halves.
        let com1: Vec3 = bodies[..n / 2].iter().map(|b| b.pos * b.mass).sum::<Vec3>()
            / bodies[..n / 2].iter().map(|b| b.mass).sum::<f64>();
        let com2: Vec3 = bodies[n / 2..].iter().map(|b| b.pos * b.mass).sum::<Vec3>()
            / bodies[n / 2..].iter().map(|b| b.mass).sum::<f64>();
        let e = total_energy(&bodies, params.gravity, params.eps);
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>11.2}% {:>9.1}%",
            (epoch + 1) * steps_per_epoch,
            com1.dist(com2),
            e,
            100.0 * (e - e0) / e0.abs(),
            100.0 * stats.tree_fraction(),
        );
    }
    println!("\nThe clusters fall toward each other while the incremental (UPDATE)");
    println!("tree follows the evolving distribution without full rebuilds.");
}
