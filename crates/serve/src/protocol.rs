//! The line-delimited JSON job protocol: parsing and response encoding.
//!
//! One request per line, one response line per request (responses to
//! pipelined requests may interleave in completion order; match them by
//! `id`). This module is pure string-to-struct translation so every
//! protocol edge case — malformed JSON, unknown fields, wrong types — is
//! testable without a socket.
//!
//! Requests (`op` selects the kind):
//!
//! ```text
//! {"op":"job","id":"j1","tenant":"acme","scenario":"plummer",
//!  "algorithm":"partree","platform":"native","n":4096,"procs":2,
//!  "steps":1,"group_size":16}                 // warmup, k, seed optional
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Error responses carry a stable `error` code (`bad_json`, `bad_request`,
//! `unknown_field`, `oversized`, `queue_full`, `shutting_down`,
//! `engine_panic`) plus a human-readable `message` naming the offending
//! field or value. Success responses for jobs carry only run-deterministic
//! fields, so a recorded request stream replays byte-identically at one
//! processor (the replay gate in `tests/serve_protocol.rs`).

use crate::exec::JobOutcome;
use crate::job::{JobSpec, PlatformId};
use crate::json::{escape, Json};
use bh_core::prelude::{Algorithm, Model};

/// Longest accepted request line (bytes, excluding the newline). Longer
/// lines are answered with an `oversized` error and skipped without
/// buffering them.
pub const MAX_LINE: usize = 64 * 1024;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Job {
        id: String,
        tenant: String,
        spec: JobSpec,
    },
    Stats,
    Ping,
    Shutdown,
}

/// A protocol-level rejection: stable code + diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub code: &'static str,
    pub message: String,
}

impl ProtoError {
    fn bad_json(message: String) -> ProtoError {
        ProtoError {
            code: "bad_json",
            message,
        }
    }

    fn bad_request(message: String) -> ProtoError {
        ProtoError {
            code: "bad_request",
            message,
        }
    }
}

/// Every field a `job` request may carry; anything else is `unknown_field`.
const JOB_FIELDS: [&str; 12] = [
    "op",
    "id",
    "tenant",
    "scenario",
    "algorithm",
    "platform",
    "n",
    "procs",
    "steps",
    "warmup",
    "k",
    "group_size",
];
const SEED_FIELD: &str = "seed";

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, ProtoError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ProtoError::bad_request(format!("field '{key}' must be a string"))),
    }
}

fn get_usize(obj: &Json, key: &str) -> Result<Option<usize>, ProtoError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_f64().ok_or_else(|| {
                ProtoError::bad_request(format!("field '{key}' must be a number"))
            })?;
            if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                return Err(ProtoError::bad_request(format!(
                    "field '{key}' has invalid value {n} (expected a non-negative integer)"
                )));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Parse one request line. The caller enforces [`MAX_LINE`] before calling.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = Json::parse(line).map_err(ProtoError::bad_json)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::bad_request(
            "request must be a JSON object".to_string(),
        ));
    }
    let op = get_str(&doc, "op")?
        .ok_or_else(|| ProtoError::bad_request("missing field 'op'".to_string()))?;
    match op {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "job" => parse_job(&doc),
        other => Err(ProtoError::bad_request(format!(
            "unknown op '{other}' (expected job, stats, ping or shutdown)"
        ))),
    }
}

fn parse_job(doc: &Json) -> Result<Request, ProtoError> {
    if let Json::Obj(fields) = doc {
        for (key, _) in fields {
            if !JOB_FIELDS.contains(&key.as_str()) && key != SEED_FIELD {
                return Err(ProtoError {
                    code: "unknown_field",
                    message: format!("unknown field '{key}' in job request"),
                });
            }
        }
    }
    let id = get_str(doc, "id")?
        .ok_or_else(|| ProtoError::bad_request("missing field 'id'".to_string()))?
        .to_string();
    let tenant = get_str(doc, "tenant")?
        .ok_or_else(|| ProtoError::bad_request("missing field 'tenant'".to_string()))?
        .to_string();
    if id.is_empty() || tenant.is_empty() {
        return Err(ProtoError::bad_request(
            "'id' and 'tenant' must be non-empty".to_string(),
        ));
    }
    let n = get_usize(doc, "n")?
        .ok_or_else(|| ProtoError::bad_request("missing field 'n'".to_string()))?;

    let mut spec = JobSpec::defaults(n);
    if let Some(s) = get_str(doc, "scenario")? {
        spec.scenario = Model::parse(s).ok_or_else(|| {
            ProtoError::bad_request(format!(
                "unknown scenario '{s}' (expected plummer, uniform or collision)"
            ))
        })?;
    }
    if let Some(s) = get_str(doc, "algorithm")? {
        spec.algorithm = Algorithm::parse(s)
            .ok_or_else(|| ProtoError::bad_request(format!("unknown algorithm '{s}'")))?;
    }
    if let Some(s) = get_str(doc, "platform")? {
        spec.platform = PlatformId::parse(s)
            .ok_or_else(|| ProtoError::bad_request(format!("unknown platform '{s}'")))?;
    }
    if let Some(v) = get_usize(doc, "procs")? {
        spec.procs = v;
    }
    if let Some(v) = get_usize(doc, "steps")? {
        spec.steps = v;
    }
    if let Some(v) = get_usize(doc, "warmup")? {
        spec.warmup = v;
    }
    if let Some(v) = get_usize(doc, "k")? {
        spec.k = v;
    }
    if let Some(v) = get_usize(doc, "group_size")? {
        spec.group_size = v;
    }
    if let Some(v) = get_usize(doc, SEED_FIELD)? {
        spec.seed = v as u64;
    }
    // Range validation happens at admission (Server::submit) so in-process
    // submitters share the same checks; parse only shapes the data.
    Ok(Request::Job { id, tenant, spec })
}

/// Success line for a finished job. Only run-deterministic fields: the
/// digest certifies physics; cycle totals are deterministic per (server
/// history, job) at one worker because the simulator itself is.
pub fn encode_job_ok(id: &str, tenant: &str, outcome: &JobOutcome) -> String {
    format!(
        "{{\"ok\":true,\"id\":{},\"tenant\":{},\"cache_hit\":{},\"digest\":\"{:016x}\",\"total_cycles\":{},\"tree_cycles\":{},\"steps\":{}}}",
        escape(id),
        escape(tenant),
        outcome.cache_hit,
        outcome.digest,
        outcome.total_cycles,
        outcome.tree_cycles,
        outcome.steps,
    )
}

/// Error line. `id` is echoed when the request got far enough to have one.
pub fn encode_error(id: Option<&str>, code: &str, message: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"ok\":false,\"id\":{},\"error\":{},\"message\":{}}}",
            escape(id),
            escape(code),
            escape(message)
        ),
        None => format!(
            "{{\"ok\":false,\"error\":{},\"message\":{}}}",
            escape(code),
            escape(message)
        ),
    }
}

/// Stats line for the `stats` op.
pub fn encode_stats(stats: &crate::server::ServerStats) -> String {
    let tenants: Vec<String> = stats
        .tenants
        .iter()
        .map(|(name, c)| {
            format!(
                "{{\"tenant\":{},\"enqueued\":{},\"served\":{},\"rejected\":{}}}",
                escape(name),
                c.enqueued,
                c.served,
                c.rejected
            )
        })
        .collect();
    let samples: Vec<u64> = stats.depth_samples.iter().map(|&d| d as u64).collect();
    format!(
        "{{\"ok\":true,\"queue_depth\":{},\"queue_capacity\":{},\"depth_hwm\":{},\"depth_p50\":{},\"depth_p99\":{},\"rejected_full\":{},\"served_total\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\"cached_engines\":{},\"tenants\":[{}]}}",
        stats.queue_depth,
        stats.queue_capacity,
        stats.depth_hwm,
        bh_core::prelude::percentile_u64(&samples, 50.0),
        bh_core::prelude::percentile_u64(&samples, 99.0),
        stats.rejected_full,
        stats.served_total,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.cached_engines,
        tenants.join(",")
    )
}

pub fn encode_pong() -> String {
    "{\"ok\":true,\"pong\":true}".to_string()
}

pub fn encode_shutdown_ack() -> String {
    "{\"ok\":true,\"shutdown\":true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_job_request() {
        let line = r#"{"op":"job","id":"j1","tenant":"acme","scenario":"uniform",
            "algorithm":"local","platform":"origin2000","n":512,"procs":4,
            "steps":2,"warmup":1,"k":4,"group_size":8,"seed":7}"#;
        match parse_request(line).unwrap() {
            Request::Job { id, tenant, spec } => {
                assert_eq!(id, "j1");
                assert_eq!(tenant, "acme");
                assert_eq!(spec.scenario, Model::UniformSphere);
                assert_eq!(spec.algorithm, Algorithm::Local);
                // Platform names canonicalize so aliases share cache keys.
                assert_eq!(spec.platform.name(), "SGI-Origin2000");
                assert_eq!((spec.n, spec.procs, spec.steps), (512, 4, 2));
                assert_eq!((spec.warmup, spec.k, spec.group_size), (1, 4, 8));
                assert_eq!(spec.seed, 7);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn optional_fields_default() {
        let req = parse_request(r#"{"op":"job","id":"a","tenant":"t","n":256}"#).unwrap();
        match req {
            Request::Job { spec, .. } => {
                assert_eq!(spec, JobSpec::defaults(256));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_json_is_bad_json() {
        let err = parse_request("{\"op\":").unwrap_err();
        assert_eq!(err.code, "bad_json");
        let err = parse_request("[1,2,3]").unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn unknown_fields_are_named() {
        let err =
            parse_request(r#"{"op":"job","id":"a","tenant":"t","n":64,"turbo":1}"#).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        assert!(err.message.contains("'turbo'"), "{}", err.message);
    }

    #[test]
    fn wrong_types_and_values_are_diagnosed() {
        let err = parse_request(r#"{"op":"job","id":"a","tenant":"t","n":"big"}"#).unwrap_err();
        assert!(err.message.contains("'n'"), "{}", err.message);
        let err = parse_request(r#"{"op":"job","id":"a","tenant":"t","n":12.5}"#).unwrap_err();
        assert!(err.message.contains("12.5"), "{}", err.message);
        let err = parse_request(r#"{"op":"job","id":"a","tenant":"t","n":64,"scenario":"mars"}"#)
            .unwrap_err();
        assert!(err.message.contains("'mars'"), "{}", err.message);
        let err = parse_request(r#"{"op":"teapot"}"#).unwrap_err();
        assert!(err.message.contains("'teapot'"), "{}", err.message);
    }

    #[test]
    fn responses_are_valid_json() {
        let outcome = JobOutcome {
            digest: 0xdead_beef,
            cache_hit: true,
            total_cycles: 123,
            tree_cycles: 45,
            steps: 2,
        };
        let line = encode_job_ok("j\"1", "t", &outcome);
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("j\"1"));
        assert_eq!(
            doc.get("digest").unwrap().as_str(),
            Some("00000000deadbeef")
        );
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));

        let line = encode_error(Some("j2"), "queue_full", "queue at capacity (32)");
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("queue_full"));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));

        assert!(Json::parse(&encode_pong()).is_ok());
        assert!(Json::parse(&encode_shutdown_ack()).is_ok());
    }
}
