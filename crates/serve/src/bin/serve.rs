//! `serve` — the job-server daemon.
//!
//! ```text
//! serve --unix /tmp/bh.sock --workers 4 --queue-cap 32 --engines 8
//! serve --tcp 127.0.0.1:7007 --weights gold=3,bronze=1
//! ```
//!
//! Runs until a client sends `{"op":"shutdown"}`, then drains the queue,
//! parks the engines, and prints a final stats line (JSON) to stdout.

use bh_serve::protocol::encode_stats;
use bh_serve::server::{parse_weights, Server, ServerConfig};
use bh_serve::transport::{run, Endpoint};

const USAGE: &str = "\
usage: serve (--unix <path> | --tcp <host:port>) [options]

options:
  --workers <n>       executor threads (default 2)
  --queue-cap <n>     admission queue bound (default 32)
  --engines <n>       engine cache capacity (default 8)
  --quantum <n>       DRR cost credit per turn (default 50000)
  --weights <list>    tenant weights, e.g. gold=3,bronze=1
";

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    let value = value.unwrap_or_else(|| die(&format!("{flag} requires a value")));
    value.parse().unwrap_or_else(|_| {
        die(&format!(
            "invalid {flag} '{value}' (expected a positive integer)"
        ))
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut endpoint: Option<Endpoint> = None;
    let mut cfg = ServerConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--unix" => {
                let path = args.next().unwrap_or_else(|| die("--unix requires a path"));
                endpoint = Some(Endpoint::Unix(path.into()));
            }
            "--tcp" => {
                let addr = args
                    .next()
                    .unwrap_or_else(|| die("--tcp requires host:port"));
                endpoint =
                    Some(Endpoint::parse(&format!("tcp:{addr}")).unwrap_or_else(|e| die(&e)));
            }
            "--workers" => cfg.workers = parse_num("--workers", args.next()).max(1),
            "--queue-cap" => cfg.queue_capacity = parse_num("--queue-cap", args.next()).max(1),
            "--engines" => cfg.engine_capacity = parse_num("--engines", args.next()).max(1),
            "--quantum" => cfg.quantum = parse_num("--quantum", args.next()).max(1) as u64,
            "--weights" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die("--weights requires a list"));
                cfg.weights = parse_weights(&spec).unwrap_or_else(|e| die(&e));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let Some(endpoint) = endpoint else {
        die("one of --unix or --tcp is required");
    };

    let server = Server::start(cfg);
    match run(server, &endpoint) {
        Ok(stats) => println!("{}", encode_stats(&stats)),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}
