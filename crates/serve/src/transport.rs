//! Socket transport: line-delimited JSON over unix-domain or TCP sockets.
//!
//! One reader thread per connection parses requests and submits them to
//! the [`Server`]; responses are written by whichever executor finishes
//! the job, through a mutex-shared writer. The reader therefore never
//! waits for a job before admitting the next pipelined request — which is
//! exactly what lets a bursting client fill the bounded queue and observe
//! real `queue_full` backpressure instead of TCP buffering.
//!
//! This module is on the sync-confinement whitelist (it owns connection
//! threads and the shared writers); protocol logic stays in
//! [`crate::protocol`], job logic in [`crate::server`].

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::protocol::{
    encode_error, encode_job_ok, encode_pong, encode_shutdown_ack, encode_stats, parse_request,
    ProtoError, Request, MAX_LINE,
};
use crate::server::{JobResult, Server, ServerStats, SubmitError};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    Unix(PathBuf),
    Tcp(String),
}

impl Endpoint {
    /// Parse `unix:/path/to.sock` or `tcp:host:port`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(format!("invalid endpoint '{s}' (empty unix path)"));
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err(format!("invalid endpoint '{s}' (expected tcp:host:port)"));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "invalid endpoint '{s}' (expected unix:<path> or tcp:<host:port>)"
            ))
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Run the accept loop until a client sends `{"op":"shutdown"}`, then shut
/// the server down gracefully (drain queue, park engines) and return its
/// final stats. Binding errors are returned immediately.
pub fn run(server: Server, endpoint: &Endpoint) -> io::Result<ServerStats> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a previous run would make bind fail.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path)?)
        }
        Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
    };
    let mut server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));

    loop {
        let conn: Box<dyn Conn> = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(e) => return Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(e) => return Err(e),
            },
        };
        if stop.load(Ordering::SeqCst) {
            // This is the wake-up poke (or a late client); drop it unread.
            break;
        }
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let endpoint = endpoint.clone();
        std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                let shutdown_requested = handle_connection(conn, &server);
                if shutdown_requested {
                    stop.store(true, Ordering::SeqCst);
                    // accept() is blocking; a throwaway connection to our
                    // own endpoint unblocks it so the loop can exit.
                    poke(&endpoint);
                }
            })
            .expect("spawn connection thread");
    }
    drop(listener);
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }

    // Reclaim sole ownership once connection threads drop their clones
    // (they exit as their clients disconnect). A connection that lingers
    // past the grace period only costs us the graceful-drop path: jobs are
    // still drained via wait_idle before we take the final snapshot.
    for _ in 0..1000 {
        match Arc::try_unwrap(server) {
            Ok(owned) => return Ok(owned.shutdown()),
            Err(shared) => {
                server = shared;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    }
    server.wait_idle();
    Ok(server.stats())
}

/// Start [`run`] on a background thread: the self-hosted mode used by
/// `repro bench-serve` and the protocol tests. Join the handle after a
/// client sends `{"op":"shutdown"}` to collect the final stats.
pub fn spawn(
    server: Server,
    endpoint: Endpoint,
) -> std::thread::JoinHandle<io::Result<ServerStats>> {
    std::thread::Builder::new()
        .name("serve-listener".to_string())
        .spawn(move || run(server, &endpoint))
        .expect("spawn listener thread")
}

fn poke(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
    }
}

trait Conn: Send {
    fn split(self: Box<Self>) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
}

impl Conn for UnixStream {
    fn split(self: Box<Self>) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let w = self.try_clone()?;
        Ok((Box::new(*self), Box::new(w)))
    }
}

impl Conn for TcpStream {
    fn split(self: Box<Self>) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let w = self.try_clone()?;
        Ok((Box::new(*self), Box::new(w)))
    }
}

/// Shared response writer: executors and the reader thread both write
/// whole lines through it.
#[derive(Clone)]
struct LineWriter {
    inner: Arc<Mutex<BufWriter<Box<dyn Write + Send>>>>,
}

impl LineWriter {
    fn send(&self, line: &str) {
        // A vanished client is not an error worth crashing for; the job
        // already ran and the counters already recorded it.
        let mut w = self.inner.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }
}

/// Returns true if the client requested server shutdown.
fn handle_connection(conn: Box<dyn Conn>, server: &Arc<Server>) -> bool {
    let Ok((read_half, write_half)) = conn.split() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let writer = LineWriter {
        inner: Arc::new(Mutex::new(BufWriter::new(write_half))),
    };
    loop {
        match read_line_bounded(&mut reader, MAX_LINE) {
            // EOF (including mid-request disconnect): clean close.
            Ok(None) => return false,
            Ok(Some(LineIn::Oversized)) => {
                writer.send(&encode_error(
                    None,
                    "oversized",
                    &format!("request line exceeds {MAX_LINE} bytes"),
                ));
            }
            Ok(Some(LineIn::Line(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Err(ProtoError { code, message }) => {
                        writer.send(&encode_error(None, code, &message));
                    }
                    Ok(Request::Ping) => writer.send(&encode_pong()),
                    Ok(Request::Stats) => writer.send(&encode_stats(&server.stats())),
                    Ok(Request::Shutdown) => {
                        writer.send(&encode_shutdown_ack());
                        return true;
                    }
                    Ok(Request::Job { id, tenant, spec }) => {
                        let w = writer.clone();
                        let rid = id.clone();
                        let rtenant = tenant.clone();
                        let outcome = server.submit(
                            &tenant,
                            spec,
                            Box::new(move |result| match result {
                                JobResult::Done(o) => w.send(&encode_job_ok(&rid, &rtenant, &o)),
                                JobResult::Failed(msg) => {
                                    w.send(&encode_error(Some(&rid), "engine_panic", &msg))
                                }
                            }),
                        );
                        if let Err(err) = outcome {
                            let msg = match &err {
                                SubmitError::Invalid(m) => m.clone(),
                                SubmitError::QueueFull => {
                                    format!("queue at capacity ({})", server.stats().queue_capacity)
                                }
                                SubmitError::ShuttingDown => "server is draining".to_string(),
                            };
                            writer.send(&encode_error(Some(&id), err.code(), &msg));
                        }
                    }
                }
            }
            Err(_) => return false, // connection reset mid-request
        }
    }
}

enum LineIn {
    Line(String),
    /// The line exceeded the cap; it was discarded up to its newline.
    Oversized,
}

/// Read one newline-terminated line without ever buffering more than
/// `max` bytes of it. Returns `Ok(None)` at EOF (a trailing partial line
/// with no newline is treated as a disconnect, not a request).
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Option<LineIn>> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(None);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if !discarding {
                    line.extend_from_slice(&buf[..nl]);
                }
                reader.consume(nl + 1);
                if discarding || line.len() > max {
                    return Ok(Some(LineIn::Oversized));
                }
                let text = String::from_utf8_lossy(&line).into_owned();
                return Ok(Some(LineIn::Line(text)));
            }
            None => {
                let len = buf.len();
                if !discarding {
                    line.extend_from_slice(buf);
                    if line.len() > max {
                        discarding = true;
                        line.clear();
                    }
                }
                reader.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_with_diagnostics() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/s.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7007"),
            Ok(Endpoint::Tcp("127.0.0.1:7007".to_string()))
        );
        assert!(Endpoint::parse("http:x").unwrap_err().contains("http:x"));
        assert!(Endpoint::parse("unix:").unwrap_err().contains("empty"));
        assert!(Endpoint::parse("tcp:noport")
            .unwrap_err()
            .contains("noport"));
    }

    #[test]
    fn bounded_reader_enforces_the_cap() {
        let data = b"short\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        match read_line_bounded(&mut r, 16).unwrap() {
            Some(LineIn::Line(s)) => assert_eq!(s, "short"),
            other => panic!("unexpected: got a line? {}", other.is_some()),
        }

        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        let mut r = BufReader::new(&data[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 16).unwrap(),
            Some(LineIn::Oversized)
        ));
        // The oversized line was skipped; the stream stays usable.
        match read_line_bounded(&mut r, 16).unwrap() {
            Some(LineIn::Line(s)) => assert_eq!(s, "after"),
            _ => panic!("stream wedged after oversized line"),
        }
    }

    #[test]
    fn partial_trailing_line_is_eof() {
        let data = b"no newline".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert!(read_line_bounded(&mut r, 64).unwrap().is_none());
    }
}
