//! Simulation-as-a-service: a multi-tenant job server over
//! [`SimEngine`](bh_core::engine::SimEngine).
//!
//! The paper's experiments run as batch sweeps; this crate turns the same
//! engine into a long-lived service, the way a production system would
//! serve many users' tree-build workloads on one shared-memory machine:
//!
//! * [`protocol`] — line-delimited JSON requests/responses (hand-rolled on
//!   [`json`]; the workspace builds offline, so no HTTP stack).
//! * [`job`] — validated job specs, engine-shape cache keys, physics
//!   digests.
//! * [`queue`] — bounded admission with per-tenant deficit round-robin
//!   fairness and explicit `queue_full` backpressure.
//! * [`cache`] — keyed LRU reuse of warm engines (worker pools +
//!   allocations), bitwise-safe at one processor.
//! * [`exec`] — one job spec in, one outcome out.
//! * [`server`] — executor workers, admission, graceful drain.
//! * [`transport`] — unix/TCP listeners, one reader thread per connection.
//! * [`client`] — blocking client and the multi-tenant load generator
//!   behind `repro bench-serve`.
//!
//! Layering: `bh-serve` sits between `bh-core`/`ssmp` and
//! `bh-experiments`; the experiment sweep scheduler is itself a client of
//! [`server::Server`] (in-process, no sockets), so batch and service
//! traffic share one admission/fairness/execution path.

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod exec;
pub mod job;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod transport;
