//! Bounded admission queue with per-tenant deficit round-robin fairness.
//!
//! The queue is a pure data structure (no locking, no threads) so its
//! fairness and backpressure behaviour can be tested exhaustively; the
//! server wraps it in one mutex. Admission is bounded by a global capacity:
//! a full queue rejects with an explicit `queue_full` — the server never
//! buffers unboundedly and the client always learns it was shed.
//!
//! Dispatch is deficit round-robin (Shreedhar & Varghese): each tenant has
//! a weight-scaled quantum of "cost credit" added when its turn comes
//! around, and may dispatch jobs until the next job's cost exceeds its
//! accumulated deficit. Costs come from [`crate::job::JobSpec::cost`]
//! (`steps * n log n`), so a tenant submitting huge jobs cannot starve a
//! tenant submitting small ones just by keeping the queue non-empty.

use std::collections::VecDeque;

/// Per-tenant accounting, reported in server stats and bench reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    pub enqueued: u64,
    pub served: u64,
    pub rejected: u64,
}

struct Tenant<T> {
    name: String,
    weight: u32,
    deficit: u64,
    jobs: VecDeque<(u64, T)>, // (cost, payload)
    counters: TenantCounters,
}

/// Bounded multi-tenant queue. `T` is the queued payload (the server queues
/// ready-to-run tasks; tests queue labels).
pub struct AdmissionQueue<T> {
    tenants: Vec<Tenant<T>>,
    /// Round-robin cursor into `tenants`.
    cursor: usize,
    /// Total queued jobs across all tenants.
    len: usize,
    capacity: usize,
    /// Base quantum of cost credit per DRR turn (scaled by tenant weight).
    quantum: u64,
    /// Lifetime high-water mark of `len`.
    pub depth_hwm: usize,
    /// Total rejections due to a full queue.
    pub rejected_full: u64,
}

impl<T> AdmissionQueue<T> {
    /// `capacity` bounds the total queued jobs; `quantum` is the per-turn
    /// cost credit for a weight-1 tenant (see [`crate::job::JobSpec::cost`]
    /// for the cost scale — a quantum around one mid-size job's cost gives
    /// fine-grained interleaving).
    pub fn new(capacity: usize, quantum: u64) -> AdmissionQueue<T> {
        assert!(capacity > 0 && quantum > 0);
        AdmissionQueue {
            tenants: Vec::new(),
            cursor: 0,
            len: 0,
            capacity,
            quantum,
            depth_hwm: 0,
            rejected_full: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn tenant_index(&mut self, name: &str, weight: u32) -> usize {
        if let Some(i) = self.tenants.iter().position(|t| t.name == name) {
            return i;
        }
        self.tenants.push(Tenant {
            name: name.to_string(),
            weight: weight.max(1),
            deficit: 0,
            jobs: VecDeque::new(),
            counters: TenantCounters::default(),
        });
        self.tenants.len() - 1
    }

    /// Set a tenant's fair-share weight (default 1). Creates the tenant's
    /// lane if it does not exist yet.
    pub fn set_weight(&mut self, tenant: &str, weight: u32) {
        let i = self.tenant_index(tenant, weight);
        self.tenants[i].weight = weight.max(1);
    }

    /// Admit a job, or reject it with `Err(payload)` if the queue is at
    /// capacity (the payload is handed back so the caller can answer the
    /// client with `queue_full`).
    pub fn push(&mut self, tenant: &str, cost: u64, payload: T) -> Result<(), T> {
        let i = self.tenant_index(tenant, 1);
        if self.len >= self.capacity {
            self.tenants[i].counters.rejected += 1;
            self.rejected_full += 1;
            return Err(payload);
        }
        self.tenants[i].jobs.push_back((cost.max(1), payload));
        self.tenants[i].counters.enqueued += 1;
        self.len += 1;
        self.depth_hwm = self.depth_hwm.max(self.len);
        Ok(())
    }

    /// Dispatch the next job under deficit round-robin, together with its
    /// tenant name. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        // At most two sweeps: the first tops up deficits, and because some
        // tenant is non-empty, within two sweeps someone's deficit covers
        // its head job (deficit grows by quantum*weight >= 1 per sweep and
        // is retained while the lane is non-empty).
        loop {
            let n = self.tenants.len();
            for _ in 0..n {
                let i = self.cursor % n;
                self.cursor = (self.cursor + 1) % n;
                let t = &mut self.tenants[i];
                if t.jobs.is_empty() {
                    // An idle tenant accumulates no credit — otherwise a
                    // long-idle tenant could burst far past its share.
                    t.deficit = 0;
                    continue;
                }
                t.deficit = t.deficit.saturating_add(self.quantum * t.weight as u64);
                if let Some(&(cost, _)) = t.jobs.front() {
                    if cost <= t.deficit {
                        let (cost, payload) = t.jobs.pop_front().unwrap();
                        t.deficit -= cost;
                        t.counters.served += 1;
                        self.len -= 1;
                        if t.jobs.is_empty() {
                            t.deficit = 0;
                        }
                        return Some((t.name.clone(), payload));
                    }
                }
            }
        }
    }

    /// Drain every queued job in DRR order (used for shutdown).
    pub fn drain(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(job) = self.pop() {
            out.push(job);
        }
        out
    }

    /// Per-tenant counters, sorted by tenant name for stable reporting.
    pub fn counters(&self) -> Vec<(String, TenantCounters)> {
        let mut rows: Vec<_> = self
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.counters.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_and_reports_it() {
        let mut q = AdmissionQueue::new(2, 100);
        assert!(q.push("a", 10, "j1").is_ok());
        assert!(q.push("a", 10, "j2").is_ok());
        assert_eq!(q.push("b", 10, "j3"), Err("j3"));
        assert_eq!(q.rejected_full, 1);
        assert_eq!(q.depth_hwm, 2);
        let c = q.counters();
        assert_eq!(c[1].0, "b");
        assert_eq!(c[1].1.rejected, 1);
        // Popping frees capacity again.
        q.pop().unwrap();
        assert!(q.push("b", 10, "j4").is_ok());
    }

    #[test]
    fn round_robin_interleaves_equal_tenants() {
        let mut q = AdmissionQueue::new(16, 100);
        for i in 0..4 {
            q.push("a", 50, format!("a{i}")).unwrap();
            q.push("b", 50, format!("b{i}")).unwrap();
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        // Equal weights and equal costs: strict alternation.
        assert_eq!(order, ["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn expensive_jobs_do_not_starve_cheap_tenant() {
        let mut q = AdmissionQueue::new(64, 100);
        // Tenant "big" queues jobs costing 10 quanta each; tenant "small"
        // queues 10 cheap jobs. DRR must not serve all of "big" first.
        for i in 0..4 {
            q.push("big", 1000, format!("B{i}")).unwrap();
        }
        for i in 0..10 {
            q.push("small", 10, format!("s{i}")).unwrap();
        }
        let mut small_done = 0;
        let mut big_done = 0;
        while big_done < 2 {
            let (t, _) = q.pop().unwrap();
            if t == "small" {
                small_done += 1;
            } else {
                big_done += 1;
            }
        }
        // By the time two big jobs ran, all ten small jobs (total cost 100,
        // a tenth of one big job) must have been served.
        assert_eq!(small_done, 10, "cheap tenant starved behind big jobs");
    }

    #[test]
    fn weights_bias_service_proportionally() {
        let mut q = AdmissionQueue::new(256, 50);
        q.set_weight("gold", 3);
        q.set_weight("bronze", 1);
        for i in 0..40 {
            q.push("gold", 100, format!("g{i}")).unwrap();
            q.push("bronze", 100, format!("b{i}")).unwrap();
        }
        // After 20 dispatches, gold should have roughly 3x bronze's share.
        let mut gold = 0;
        for _ in 0..20 {
            if q.pop().unwrap().0 == "gold" {
                gold += 1;
            }
        }
        assert!((14..=16).contains(&gold), "gold got {gold}/20");
    }

    #[test]
    fn idle_tenant_does_not_bank_credit() {
        let mut q = AdmissionQueue::new(64, 100);
        q.push("a", 100, "a0".to_string()).unwrap();
        q.push("b", 100, "b0".to_string()).unwrap();
        for _ in 0..2 {
            q.pop().unwrap();
        }
        // "b" sat idle through many rounds of "a" traffic...
        for i in 0..8 {
            q.push("a", 100, format!("a{i}")).unwrap();
        }
        while q.pop().is_some() {}
        // ...and when it returns it cannot burst ahead: service alternates.
        for i in 0..3 {
            q.push("a", 100, format!("x{i}")).unwrap();
            q.push("b", 100, format!("y{i}")).unwrap();
        }
        let first_two: Vec<String> = (0..2).map(|_| q.pop().unwrap().0).collect();
        assert!(first_two.contains(&"a".to_string()));
        assert!(first_two.contains(&"b".to_string()));
    }

    #[test]
    fn drain_empties_in_fair_order() {
        let mut q = AdmissionQueue::new(16, 100);
        q.push("a", 10, 1).unwrap();
        q.push("b", 10, 2).unwrap();
        q.push("a", 10, 3).unwrap();
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
