//! A minimal JSON reader for the job protocol and for schema sanity checks.
//!
//! The workspace builds offline (no serde), so both the serve layer's
//! line-delimited job protocol and the pre-merge schema gates (experiment
//! tables, Chrome traces, `BENCH_*.json` metrics) parse with this small
//! recursive-descent parser: strict enough to reject malformed documents,
//! simple enough to audit at a glance. It lived in `bh-experiments` until
//! the job server needed it below the experiments layer.

/// Escape a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (surrounding whitespace allowed;
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Nesting cap: deeper documents are rejected rather than risking a stack
/// overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The cursor only ever advances
                    // by whole scalars or ASCII, so it sits on a boundary.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Non-ASCII passes through raw.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "[1]]",
            "{\"a\":1} extra",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in ["plain", "with \"quotes\"", "tabs\tand\nnewlines", "héllo"] {
            let doc = escape(s);
            assert_eq!(Json::parse(&doc).unwrap(), Json::Str(s.into()), "{doc}");
        }
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
