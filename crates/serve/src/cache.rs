//! Keyed LRU cache of warm [`SimEngine`]s.
//!
//! Creating an engine is the expensive part of serving a job: it spawns a
//! worker pool, allocates the shared tree and per-processor scratch, and
//! (for simulated platforms) builds a whole [`ssmp::machine::Machine`].
//! The cache keeps finished engines parked, keyed by
//! [`EngineShape`](crate::job::EngineShape), so the next same-shape job
//! reuses the pool and allocations. PR 5's reuse certification makes this
//! bitwise-safe at one processor on the native environment; at higher
//! processor counts physics remains valid (the engine revalidates state
//! compatibility per run) but timings are scheduling-dependent as always.
//!
//! The cache is a pure data structure; the server serializes access with
//! its own mutex. Engines are *checked out* (removed) while a job runs, so
//! one engine never runs two jobs concurrently; if a job panics, the
//! executor simply does not return the engine, and the poisoned pool is
//! dropped rather than wedging future jobs.

use crate::job::EngineShape;
use bh_core::prelude::*;
use ssmp::machine::Machine;
use ssmp::platform;

/// An engine over either environment the server can run on. Both variants
/// are boxed: entries move between the cache vector and workers, and a
/// `SimEngine` is over a kilobyte of inline state.
pub enum AnyEngine {
    Native(Box<SimEngine<NativeEnv>>),
    Sim(Box<SimEngine<Machine>>),
}

impl AnyEngine {
    /// Build a fresh engine for the given shape (pool spawn + allocations).
    pub fn fresh(shape: &EngineShape) -> AnyEngine {
        match &shape.platform {
            crate::job::PlatformId::Native => {
                AnyEngine::Native(Box::new(SimEngine::new(NativeEnv::new(shape.procs))))
            }
            crate::job::PlatformId::Sim(name) => {
                let cost =
                    platform::by_name(name, shape.procs).expect("platform validated at admission");
                AnyEngine::Sim(Box::new(SimEngine::new(Machine::new(cost, shape.procs))))
            }
        }
    }

    /// Run a job on this engine, returning stats, final bodies, and the
    /// simulated cycle totals (zero on the native environment).
    pub fn run(&mut self, cfg: &SimConfig, bodies: &[Body]) -> (RunStats, Vec<Body>) {
        match self {
            AnyEngine::Native(e) => e.run_with_state(cfg, bodies),
            AnyEngine::Sim(e) => e.run_with_state(cfg, bodies),
        }
    }
}

/// Counters for the bench report and the `stats` protocol op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheCounters {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    shape: EngineShape,
    engine: AnyEngine,
    /// Logical clock of last use, for LRU eviction.
    last_used: u64,
}

/// LRU cache of parked engines. Duplicate shapes are allowed (two workers
/// can each hold a warm engine for the same popular shape).
pub struct EngineCache {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    pub counters: CacheCounters,
}

impl EngineCache {
    pub fn new(capacity: usize) -> EngineCache {
        assert!(capacity > 0);
        EngineCache {
            entries: Vec::new(),
            capacity,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Take a parked engine matching `shape`, if any. Records a hit or a
    /// miss; on a miss the caller builds a fresh engine (outside the
    /// server lock — construction is slow).
    pub fn checkout(&mut self, shape: &EngineShape) -> Option<AnyEngine> {
        self.tick += 1;
        match self.entries.iter().position(|e| &e.shape == shape) {
            Some(i) => {
                self.counters.hits += 1;
                Some(self.entries.swap_remove(i).engine)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Park an engine after a successful job. Evicts the least recently
    /// used entry if the cache is at capacity.
    pub fn park(&mut self, shape: EngineShape, engine: AnyEngine) {
        self.tick += 1;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0 implies non-empty at this point");
            self.entries.swap_remove(lru);
            self.counters.evictions += 1;
        }
        self.entries.push(Entry {
            shape,
            engine,
            last_used: self.tick,
        });
    }

    /// Drop every parked engine (graceful shutdown: pools park their
    /// threads on drop).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn shape(n: usize) -> EngineShape {
        let mut s = JobSpec::defaults(n);
        s.n = n;
        s.shape()
    }

    #[test]
    fn checkout_miss_then_hit() {
        let mut c = EngineCache::new(2);
        let s = shape(64);
        assert!(c.checkout(&s).is_none());
        assert_eq!(c.counters.misses, 1);
        c.park(s.clone(), AnyEngine::fresh(&s));
        assert!(c.checkout(&s).is_some());
        assert_eq!(c.counters.hits, 1);
        assert!(c.is_empty(), "checkout removes the entry");
    }

    #[test]
    fn lru_eviction_counts_and_prefers_oldest() {
        let mut c = EngineCache::new(2);
        let (s1, s2, s3) = (shape(64), shape(128), shape(256));
        c.park(s1.clone(), AnyEngine::fresh(&s1));
        c.park(s2.clone(), AnyEngine::fresh(&s2));
        // Touch s1 so s2 becomes the LRU entry.
        let e1 = c.checkout(&s1).unwrap();
        c.park(s1.clone(), e1);
        c.park(s3.clone(), AnyEngine::fresh(&s3));
        assert_eq!(c.counters.evictions, 1);
        assert_eq!(c.len(), 2);
        assert!(c.checkout(&s2).is_none(), "s2 was the LRU victim");
        assert!(c.checkout(&s1).is_some());
        assert!(c.checkout(&s3).is_some());
    }

    #[test]
    fn cached_engine_replays_physics_bitwise_at_one_proc() {
        let spec = JobSpec::defaults(96);
        let (cfg, bodies) = (spec.config(), spec.bodies());
        let direct = {
            let mut e = AnyEngine::fresh(&spec.shape());
            e.run(&cfg, &bodies).1
        };
        let mut c = EngineCache::new(2);
        c.park(spec.shape(), AnyEngine::fresh(&spec.shape()));
        let mut e = c.checkout(&spec.shape()).unwrap();
        let first = e.run(&cfg, &bodies).1;
        c.park(spec.shape(), e);
        let mut e = c.checkout(&spec.shape()).unwrap();
        let second = e.run(&cfg, &bodies).1;
        assert_eq!(
            crate::job::digest_bodies(&direct),
            crate::job::digest_bodies(&first)
        );
        assert_eq!(
            crate::job::digest_bodies(&first),
            crate::job::digest_bodies(&second)
        );
    }
}
