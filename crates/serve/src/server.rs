//! The job server: bounded admission, fair scheduling, executor workers.
//!
//! Layering (top to bottom):
//!
//! ```text
//!   transport (sockets)      sweep scheduler / tests (in-process)
//!            \                      /
//!             Server::submit{,_task}
//!                      |
//!          AdmissionQueue (bounded, DRR-fair)     <- one mutex
//!                      |
//!          executor workers (condvar-woken threads)
//!                      |
//!          EngineCache checkout -> run_job -> park
//! ```
//!
//! This module is on the sync-confinement whitelist: it owns the server's
//! threads and condition variables, the same way `harness.rs` owns the
//! worker pool's. Job *logic* (queueing policy, cache policy, execution)
//! lives in the lock-free sibling modules and is reused verbatim by tests.
//!
//! Shutdown is graceful by construction: `shutdown()` closes admission,
//! wakes every worker, lets queued jobs drain, joins the workers, then
//! clears the engine cache (parking each pool's threads on drop).

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::cache::{AnyEngine, CacheCounters, EngineCache};
use crate::exec::{run_job, JobOutcome};
use crate::job::JobSpec;
use crate::queue::{AdmissionQueue, TenantCounters};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads (each runs one job at a time; each job may itself
    /// use a multi-proc worker pool from the engine cache).
    pub workers: usize,
    /// Bound on queued-but-not-running jobs; beyond it, `queue_full`.
    pub queue_capacity: usize,
    /// Bound on parked engines.
    pub engine_capacity: usize,
    /// DRR cost credit per turn for a weight-1 tenant.
    pub quantum: u64,
    /// Per-tenant weights (unlisted tenants get weight 1).
    pub weights: Vec<(String, u32)>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            engine_capacity: 8,
            // One ~4k-body step of credit per turn: small jobs interleave
            // finely, big jobs take a few turns of credit to dispatch.
            quantum: 50_000,
            weights: Vec::new(),
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — explicit backpressure.
    QueueFull,
    /// The server is draining and admits nothing new.
    ShuttingDown,
    /// The spec failed validation (message names the offending field).
    Invalid(String),
}

impl SubmitError {
    /// Stable protocol error code.
    pub fn code(&self) -> &'static str {
        match self {
            SubmitError::QueueFull => "queue_full",
            SubmitError::ShuttingDown => "shutting_down",
            SubmitError::Invalid(_) => "bad_request",
        }
    }
}

/// How one admitted job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    Done(JobOutcome),
    /// The job panicked inside the engine; the engine was dropped, the
    /// worker survived.
    Failed(String),
}

type DoneFn = Box<dyn FnOnce(JobResult) + Send + 'static>;
type TaskFn = Box<dyn FnOnce() + Send + 'static>;

enum Work {
    /// A simulation job: checkout/park engines around `run_job`.
    Job { spec: Box<JobSpec>, on_done: DoneFn },
    /// An arbitrary closure (the sweep scheduler's jobs carry their own
    /// engines/memoization; they only want the queue + worker fabric).
    Task(TaskFn),
}

struct Inner {
    queue: AdmissionQueue<Work>,
    cache: EngineCache,
    draining: bool,
    /// Jobs admitted but not yet finished (queued + running).
    in_flight: usize,
    /// Running sum/samples for queue-depth percentiles.
    depth_samples: Vec<usize>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Workers sleep here when the queue is empty.
    work_ready: Condvar,
    /// `wait_idle` sleeps here until `in_flight` reaches zero.
    idle: Condvar,
    served_total: AtomicU64,
}

/// A snapshot of server health, for the `stats` op and bench reports.
#[derive(Debug, Clone)]
pub struct ServerStats {
    pub queue_depth: usize,
    pub queue_capacity: usize,
    pub depth_hwm: usize,
    pub rejected_full: u64,
    pub served_total: u64,
    pub cache: CacheCounters,
    pub cached_engines: usize,
    pub tenants: Vec<(String, TenantCounters)>,
    /// Queue depths sampled at every admission (for p50/p99 reporting).
    pub depth_samples: Vec<usize>,
}

/// Multi-tenant job server over [`SimEngine`](bh_core::engine::SimEngine).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    pub fn start(cfg: ServerConfig) -> Server {
        assert!(cfg.workers > 0);
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.quantum.max(1));
        for (tenant, weight) in &cfg.weights {
            queue.set_weight(tenant, *weight);
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue,
                cache: EngineCache::new(cfg.engine_capacity),
                draining: false,
                in_flight: 0,
                depth_samples: Vec::new(),
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            served_total: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit a simulation job for `tenant`. `on_done` runs on an executor
    /// thread when the job finishes — transports use it to write the
    /// response, so the submitting (reader) thread never blocks on job
    /// completion and keeps admitting pipelined requests. That is what
    /// makes the bounded queue actually fill (and reject) under burst.
    pub fn submit(&self, tenant: &str, spec: JobSpec, on_done: DoneFn) -> Result<(), SubmitError> {
        if let Err(msg) = spec.validate() {
            return Err(SubmitError::Invalid(msg));
        }
        let cost = spec.cost();
        self.admit(
            tenant,
            cost,
            Work::Job {
                spec: Box::new(spec),
                on_done,
            },
        )
    }

    /// Submit an opaque task (the batch path). Cost feeds DRR fairness.
    pub fn submit_task<F: FnOnce() + Send + 'static>(
        &self,
        tenant: &str,
        cost: u64,
        task: F,
    ) -> Result<(), SubmitError> {
        self.admit(tenant, cost, Work::Task(Box::new(task)))
    }

    fn admit(&self, tenant: &str, cost: u64, work: Work) -> Result<(), SubmitError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.draining {
            return Err(SubmitError::ShuttingDown);
        }
        match inner.queue.push(tenant, cost, work) {
            Ok(()) => {
                inner.in_flight += 1;
                let depth = inner.queue.len();
                inner.depth_samples.push(depth);
                drop(inner);
                self.shared.work_ready.notify_one();
                Ok(())
            }
            Err(_work) => Err(SubmitError::QueueFull),
        }
    }

    /// Block until every admitted job has finished.
    pub fn wait_idle(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        while inner.in_flight > 0 {
            inner = self.shared.idle.wait(inner).unwrap();
        }
    }

    /// Snapshot of counters and queue state.
    pub fn stats(&self) -> ServerStats {
        let inner = self.shared.inner.lock().unwrap();
        ServerStats {
            queue_depth: inner.queue.len(),
            queue_capacity: inner.queue.capacity(),
            depth_hwm: inner.queue.depth_hwm,
            rejected_full: inner.queue.rejected_full,
            served_total: self.shared.served_total.load(Ordering::Relaxed),
            cache: inner.cache.counters,
            cached_engines: inner.cache.len(),
            tenants: inner.queue.counters(),
            depth_samples: inner.depth_samples.clone(),
        }
    }

    /// Graceful shutdown: stop admitting, drain queued jobs, join workers,
    /// drop parked engines (their pools park threads on drop).
    pub fn shutdown(mut self) -> ServerStats {
        {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.draining = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("executor worker panicked outside a job");
        }
        let stats = self.stats();
        self.shared.inner.lock().unwrap().cache.clear();
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not shut down) server still stops its workers.
        {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.draining = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if let Some((_tenant, work)) = inner.queue.pop() {
                    break work;
                }
                if inner.draining {
                    return;
                }
                inner = shared.work_ready.wait(inner).unwrap();
            }
        };
        match work {
            Work::Task(task) => {
                // A panicking batch task must not kill the executor.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(task));
            }
            Work::Job { spec, on_done } => {
                let shape = spec.shape();
                let (cached, fresh_needed) = {
                    let mut inner = shared.inner.lock().unwrap();
                    match inner.cache.checkout(&shape) {
                        Some(e) => (Some(e), false),
                        None => (None, true),
                    }
                };
                let cache_hit = !fresh_needed;
                // Engine construction and the run itself happen unlocked.
                let mut engine = cached.unwrap_or_else(|| AnyEngine::fresh(&shape));
                let result =
                    std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&mut engine, &spec)));
                let result = match result {
                    Ok(mut outcome) => {
                        outcome.cache_hit = cache_hit;
                        // Only a healthy engine goes back in the cache.
                        shared.inner.lock().unwrap().cache.park(shape, engine);
                        shared.served_total.fetch_add(1, Ordering::Relaxed);
                        JobResult::Done(outcome)
                    }
                    Err(panic) => {
                        drop(engine); // poisoned pool: discard, never park
                        JobResult::Failed(panic_message(&panic))
                    }
                };
                // The callback is client code; its panics must not kill the
                // worker either.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(move || on_done(result)));
            }
        }
        let mut inner = shared.inner.lock().unwrap();
        inner.in_flight -= 1;
        if inner.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Per-tenant weight map helper for transports ("gold=3,bronze=1").
pub fn parse_weights(s: &str) -> Result<Vec<(String, u32)>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        let (name, w) = part
            .split_once('=')
            .ok_or_else(|| format!("invalid weight '{part}' (expected tenant=weight)"))?;
        let w: u32 = w
            .parse()
            .map_err(|_| format!("invalid weight '{part}' (expected tenant=weight)"))?;
        out.push((name.to_string(), w));
    }
    Ok(out)
}

/// Weight-map stats view keyed by tenant, for report assembly.
pub fn tenant_map(stats: &ServerStats) -> HashMap<&str, &TenantCounters> {
    stats
        .tenants
        .iter()
        .map(|(name, c)| (name.as_str(), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tiny_spec(n: usize) -> JobSpec {
        let mut s = JobSpec::defaults(n);
        s.steps = 1;
        s.warmup = 0;
        s
    }

    #[test]
    fn serves_jobs_and_reports_outcomes() {
        let server = Server::start(ServerConfig {
            workers: 2,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            server
                .submit("t", tiny_spec(64), Box::new(move |r| tx.send(r).unwrap()))
                .unwrap();
        }
        let results: Vec<JobResult> = rx.iter().take(4).collect();
        let mut digests = Vec::new();
        for r in results {
            match r {
                JobResult::Done(o) => digests.push(o.digest),
                JobResult::Failed(m) => panic!("job failed: {m}"),
            }
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        let stats = server.shutdown();
        assert_eq!(stats.served_total, 4);
        assert!(stats.cache.hits + stats.cache.misses == 4);
        assert!(
            stats.cache.hits >= 1,
            "same-shape jobs should reuse engines"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let server = Server::start(ServerConfig::default());
        let mut bad = tiny_spec(64);
        bad.procs = 999;
        let err = server
            .submit("t", bad, Box::new(|_| panic!("must not run")))
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
        match err {
            SubmitError::Invalid(msg) => assert!(msg.contains("procs 999"), "{msg}"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        // One worker wedged on a slow task keeps the queue occupied.
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        });
        let (block_tx, block_rx) = mpsc::channel::<()>();
        server
            .submit_task("t", 1, move || {
                let _ = block_rx.recv();
            })
            .unwrap();
        // Wait until the blocker is running (queue drained to 0).
        while server.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        server.submit_task("t", 1, || {}).unwrap();
        server.submit_task("t", 1, || {}).unwrap();
        let err = server.submit_task("t", 1, || {}).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        let stats = server.stats();
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(stats.depth_hwm, 2);
        block_tx.send(()).unwrap();
        server.wait_idle();
        server.shutdown();
    }

    #[test]
    fn panicking_job_fails_cleanly_and_workers_survive() {
        let server = Server::start(ServerConfig {
            workers: 1,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        server.submit_task("t", 1, || panic!("boom")).unwrap();
        let tx2 = tx.clone();
        server
            .submit("t", tiny_spec(64), Box::new(move |r| tx2.send(r).unwrap()))
            .unwrap();
        match rx.recv().unwrap() {
            JobResult::Done(o) => assert!(o.digest != 0),
            JobResult::Failed(m) => panic!("follow-up job failed: {m}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.served_total, 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 16,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let tx = tx.clone();
            server
                .submit(
                    "t",
                    tiny_spec(32),
                    Box::new(move |r| tx.send(matches!(r, JobResult::Done(_))).unwrap()),
                )
                .unwrap();
        }
        let stats = server.shutdown(); // must run all 6 before returning
        assert_eq!(stats.served_total, 6);
        assert_eq!(rx.iter().take(6).filter(|ok| *ok).count(), 6);
    }

    #[test]
    fn parse_weights_accepts_lists_and_rejects_garbage() {
        assert_eq!(
            parse_weights("gold=3,bronze=1").unwrap(),
            vec![("gold".to_string(), 3), ("bronze".to_string(), 1)]
        );
        assert_eq!(parse_weights("").unwrap(), vec![]);
        assert!(parse_weights("gold").unwrap_err().contains("gold"));
        assert!(parse_weights("gold=x").unwrap_err().contains("gold=x"));
    }
}
