//! Job specifications: what one simulation request asks for.
//!
//! A [`JobSpec`] is the validated, fully-defaulted form of a protocol
//! request (and of an in-process submission): scenario, algorithm, platform,
//! problem size, processor count, step counts and the force-kernel group
//! size. Its [`JobSpec::shape`] is the engine-cache key — two jobs with the
//! same shape can reuse one [`bh_core::engine::SimEngine`]'s worker pool and
//! allocations (PR 5 certified that reuse bitwise-safe at one processor).

use bh_core::prelude::*;
use ssmp::platform;

/// Where a job runs: the native host or a simulated ssmp platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlatformId {
    Native,
    /// A simulated platform, by `ssmp::platform::by_name` name.
    Sim(String),
}

impl PlatformId {
    pub fn parse(s: &str) -> Option<PlatformId> {
        if s.eq_ignore_ascii_case("native") {
            return Some(PlatformId::Native);
        }
        // Validate the name eagerly so a bad platform is an admission error,
        // not an executor panic.
        platform::by_name(s, 1).map(|cost| PlatformId::Sim(cost.name))
    }

    pub fn name(&self) -> &str {
        match self {
            PlatformId::Native => "native",
            PlatformId::Sim(name) => name,
        }
    }
}

/// Hard limits on what the server will run; violations are admission-time
/// `bad_request` errors, never executor panics.
pub const MAX_N: usize = 1 << 20;
pub const MIN_N: usize = 16;
pub const MAX_PROCS: usize = 32;
pub const MAX_STEPS: usize = 64;
pub const MAX_K: usize = 64;

/// One validated simulation job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub scenario: Model,
    pub algorithm: Algorithm,
    pub platform: PlatformId,
    pub n: usize,
    pub procs: usize,
    /// Measured steps (the paper's protocol; warm-up runs before them).
    pub steps: usize,
    pub warmup: usize,
    pub k: usize,
    pub group_size: usize,
    pub seed: u64,
}

impl JobSpec {
    /// A job with every optional knob at its default: Plummer scenario,
    /// PARTREE, one native processor, 1 warm-up + 1 measured step.
    pub fn defaults(n: usize) -> JobSpec {
        JobSpec {
            scenario: Model::Plummer,
            algorithm: Algorithm::Partree,
            platform: PlatformId::Native,
            n,
            procs: 1,
            steps: 1,
            warmup: 1,
            k: 8,
            group_size: SimConfig::new(Algorithm::Partree).group_size,
            seed: 1998,
        }
    }

    /// Check the spec against the admission limits.
    pub fn validate(&self) -> Result<(), String> {
        if !(MIN_N..=MAX_N).contains(&self.n) {
            return Err(format!("n {} out of range [{MIN_N}, {MAX_N}]", self.n));
        }
        if !(1..=MAX_PROCS).contains(&self.procs) {
            return Err(format!(
                "procs {} out of range [1, {MAX_PROCS}]",
                self.procs
            ));
        }
        if !(1..=MAX_STEPS).contains(&self.steps) {
            return Err(format!(
                "steps {} out of range [1, {MAX_STEPS}]",
                self.steps
            ));
        }
        if self.warmup > MAX_STEPS {
            return Err(format!(
                "warmup {} out of range [0, {MAX_STEPS}]",
                self.warmup
            ));
        }
        if !(1..=MAX_K).contains(&self.k) {
            return Err(format!("k {} out of range [1, {MAX_K}]", self.k));
        }
        if self.group_size > bh_core::force::MAX_GROUP_SIZE {
            return Err(format!(
                "group_size {} out of range [0, {}]",
                self.group_size,
                bh_core::force::MAX_GROUP_SIZE
            ));
        }
        Ok(())
    }

    /// The allocation shape this job needs from an engine. Jobs with equal
    /// shapes reuse one engine's pool and allocations; the algorithm is
    /// *not* part of the shape for the builder map (`SimEngine` caches one
    /// builder per algorithm), but the tree layout is, because switching
    /// layouts reallocates the shared tree inside the engine.
    pub fn shape(&self) -> EngineShape {
        EngineShape {
            platform: self.platform.clone(),
            procs: self.procs,
            n: self.n,
            k: self.k,
            layout: self.algorithm.layout(),
        }
    }

    /// The simulation config this job runs with.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.algorithm);
        cfg.k = self.k;
        cfg.warmup_steps = self.warmup;
        cfg.measured_steps = self.steps;
        cfg.group_size = self.group_size;
        cfg
    }

    /// The initial bodies (deterministic for the spec).
    pub fn bodies(&self) -> Vec<Body> {
        self.scenario.generate(self.n, self.seed)
    }

    /// Rough relative cost for deficit round-robin accounting: the dominant
    /// force-evaluation term, `steps * n log n` (same model as the sweep
    /// scheduler's longest-job-first weight).
    pub fn cost(&self) -> u64 {
        let n = self.n as u64;
        (self.warmup + self.steps) as u64 * n * n.max(2).ilog2() as u64
    }
}

/// The engine-cache key: everything that determines an engine's allocation
/// shape (environment, pool width, state sizes, tree layout).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineShape {
    pub platform: PlatformId,
    pub procs: usize,
    pub n: usize,
    pub k: usize,
    pub layout: TreeLayout,
}

/// FNV-1a over the exact bit patterns of the final body state. Equal
/// digests across the served and direct paths certify bitwise-identical
/// physics (the acceptance gate at one processor, where runs are fully
/// deterministic).
pub fn digest_bodies(bodies: &[Body]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for b in bodies {
        eat(b.pos.x);
        eat(b.pos.y);
        eat(b.pos.z);
        eat(b.vel.x);
        eat(b.vel.y);
        eat(b.vel.z);
        eat(b.mass);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_out_of_range_fields() {
        let ok = JobSpec::defaults(256);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.n = 4;
        assert!(bad.validate().unwrap_err().contains("n 4"));
        let mut bad = ok.clone();
        bad.procs = 64;
        assert!(bad.validate().unwrap_err().contains("procs 64"));
        let mut bad = ok.clone();
        bad.steps = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.group_size = 1000;
        assert!(bad.validate().unwrap_err().contains("group_size"));
    }

    #[test]
    fn shapes_distinguish_layout_but_not_algorithm() {
        let a = JobSpec::defaults(256);
        let mut b = a.clone();
        b.algorithm = Algorithm::Space; // same per-processor layout
        assert_eq!(a.shape(), b.shape());
        let mut c = a.clone();
        c.algorithm = Algorithm::Orig; // global layout
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    fn platform_ids_parse_and_name() {
        assert_eq!(PlatformId::parse("native"), Some(PlatformId::Native));
        let p = PlatformId::parse("origin2000").expect("known platform");
        assert_eq!(PlatformId::parse(p.name()), Some(p));
        assert!(PlatformId::parse("cray").is_none());
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        let a = Model::Plummer.generate(32, 1);
        let mut b = a.clone();
        assert_eq!(digest_bodies(&a), digest_bodies(&b));
        b[0].pos.x = f64::from_bits(b[0].pos.x.to_bits() ^ 1);
        assert_ne!(digest_bodies(&a), digest_bodies(&b));
    }
}
