//! Job execution: one validated [`JobSpec`] in, one [`JobOutcome`] out.
//!
//! The executor is deliberately a free function over the cache so the
//! server's worker threads and in-process tests share exactly one code
//! path. Engine checkout/park happens under the caller-provided lock
//! discipline (the server passes a closure that locks its cache); the run
//! itself — the expensive part — happens outside any lock.

use crate::cache::AnyEngine;
use crate::job::{digest_bodies, JobSpec};

/// What a completed job reports back to its client.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// FNV-1a digest of the final body state's bit patterns. At one
    /// processor this is bitwise-reproducible, so clients can verify served
    /// physics against a direct [`bh_core::engine::SimEngine`] run.
    pub digest: u64,
    /// Whether the engine came warm from the cache.
    pub cache_hit: bool,
    /// Total measured cycles across processors (0 on the native platform,
    /// where wall-clock latency is reported by the client instead).
    pub total_cycles: u64,
    /// Cycles spent in the tree-build phase (0 on native).
    pub tree_cycles: u64,
    /// Measured steps actually recorded.
    pub steps: usize,
}

/// Run `spec` on `engine`, producing the outcome. Panics propagate to the
/// caller (the server catches them per-job and drops the engine).
pub fn run_job(engine: &mut AnyEngine, spec: &JobSpec) -> JobOutcome {
    let cfg = spec.config();
    let bodies = spec.bodies();
    let (stats, finals) = engine.run(&cfg, &bodies);
    let sim = matches!(engine, AnyEngine::Sim(_));
    JobOutcome {
        digest: digest_bodies(&finals),
        cache_hit: false, // filled in by the caller, which knows the source
        total_cycles: if sim { stats.total_time() } else { 0 },
        tree_cycles: if sim { stats.tree_time() } else { 0 },
        steps: stats.steps_recorded(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_core::prelude::*;

    #[test]
    fn outcome_matches_direct_engine_run_at_one_proc() {
        let spec = JobSpec::defaults(128);
        let mut engine = AnyEngine::fresh(&spec.shape());
        let out = run_job(&mut engine, &spec);

        let (_, finals) =
            run_simulation_with_state(&NativeEnv::new(1), &spec.config(), &spec.bodies());
        assert_eq!(out.digest, digest_bodies(&finals));
        assert_eq!(out.total_cycles, 0, "native reports no simulated cycles");
        assert_eq!(out.steps, spec.steps);
    }

    #[test]
    fn simulated_platform_reports_cycles() {
        let mut spec = JobSpec::defaults(64);
        spec.platform = crate::job::PlatformId::parse("origin2000").unwrap();
        let mut engine = AnyEngine::fresh(&spec.shape());
        let out = run_job(&mut engine, &spec);
        assert!(out.total_cycles > 0);
        assert!(out.tree_cycles > 0);
        assert!(out.tree_cycles <= out.total_cycles);
    }
}
