//! Blocking protocol client and the multi-tenant load generator.
//!
//! The client half is a thin line-oriented wrapper over a socket. The load
//! generator drives a server the way the paper's methodology drives a
//! machine: a configurable tenant mix, closed-loop (each tenant keeps a
//! fixed number of requests outstanding) or open-loop (requests arrive on
//! a clock regardless of completions — the mode that actually exposes
//! queueing behaviour), plus a pipelined burst phase designed to overrun
//! the admission queue and demonstrate explicit backpressure.
//!
//! This module is on the sync-confinement whitelist: it spawns one driver
//! thread per tenant connection. Latency statistics use the existing
//! nearest-rank percentile helpers so bench reports match the repo's other
//! tables.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::transport::Endpoint;

/// A connected protocol client (one socket, blocking I/O).
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
}

impl Client {
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let (r, w): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match endpoint {
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let w = s.try_clone()?;
                (Box::new(s), Box::new(w))
            }
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let w = s.try_clone()?;
                (Box::new(s), Box::new(w))
            }
        };
        Ok(Client {
            reader: BufReader::new(r),
            writer: BufWriter::new(w),
        })
    }

    /// Send one request line without waiting for the response (pipelining).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read the next response line (blocks).
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Send a request and read one response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Connect, retrying while the endpoint comes up (a just-spawned
    /// listener may not have bound yet).
    pub fn connect_with_retry(endpoint: &Endpoint, attempts: u32) -> io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last.unwrap())
    }
}

/// One tenant's share of the generated load.
#[derive(Debug, Clone)]
pub struct TenantPlan {
    pub name: String,
    /// Request lines to send, in order (pre-rendered by the caller so the
    /// generator stays protocol-dumb and replayable).
    pub requests: Vec<String>,
    /// Closed loop: max requests outstanding. Open loop: ignored.
    pub window: usize,
    /// Open loop: inter-arrival gap. `None` selects closed-loop mode.
    pub gap: Option<Duration>,
}

/// What one tenant's driver observed.
#[derive(Debug, Clone, Default)]
pub struct TenantLoadResult {
    pub name: String,
    pub ok: u64,
    pub rejected: u64,
    pub failed: u64,
    /// Per-completed-request latency (µs), completion order.
    pub latencies_us: Vec<u64>,
    /// Raw response lines, completion order (for digest verification and
    /// the replay gate).
    pub responses: Vec<String>,
    pub elapsed: Duration,
}

/// Drive all tenants concurrently (one connection and driver thread each);
/// returns per-tenant results in the order given.
pub fn run_load(endpoint: &Endpoint, plans: Vec<TenantPlan>) -> io::Result<Vec<TenantLoadResult>> {
    let mut handles = Vec::new();
    for plan in plans {
        let endpoint = endpoint.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("load-{}", plan.name))
                .spawn(move || drive_tenant(&endpoint, plan))
                .expect("spawn load driver"),
        );
    }
    let mut results = Vec::new();
    for h in handles {
        results.push(h.join().expect("load driver panicked")?);
    }
    Ok(results)
}

fn classify(line: &str, result: &mut TenantLoadResult) {
    match Json::parse(line) {
        Ok(doc) if doc.get("ok") == Some(&Json::Bool(true)) => result.ok += 1,
        Ok(doc) => {
            let code = doc.get("error").and_then(Json::as_str).unwrap_or("");
            if code == "queue_full" {
                result.rejected += 1;
            } else {
                result.failed += 1;
            }
        }
        Err(_) => result.failed += 1,
    }
}

fn drive_tenant(endpoint: &Endpoint, plan: TenantPlan) -> io::Result<TenantLoadResult> {
    let mut client = Client::connect(endpoint)?;
    let mut result = TenantLoadResult {
        name: plan.name.clone(),
        ..Default::default()
    };
    let start = Instant::now();
    let mut sent_at: Vec<Instant> = Vec::with_capacity(plan.requests.len());
    let mut completed = 0usize;

    match plan.gap {
        // Closed loop: keep `window` requests outstanding.
        None => {
            let window = plan.window.max(1);
            let mut next = 0usize;
            while next < plan.requests.len().min(window) {
                client.send(&plan.requests[next])?;
                sent_at.push(Instant::now());
                next += 1;
            }
            while completed < plan.requests.len() {
                let line = client.recv()?;
                // Responses interleave in completion order; latency is
                // measured send-to-completion of the oldest outstanding
                // request, the conservative (FIFO) reading.
                result
                    .latencies_us
                    .push(sent_at[completed].elapsed().as_micros() as u64);
                classify(&line, &mut result);
                result.responses.push(line);
                completed += 1;
                if next < plan.requests.len() {
                    client.send(&plan.requests[next])?;
                    sent_at.push(Instant::now());
                    next += 1;
                }
            }
        }
        // Open loop: send on the clock, collect responses as they come.
        Some(gap) => {
            for (i, req) in plan.requests.iter().enumerate() {
                if i > 0 {
                    std::thread::sleep(gap);
                }
                client.send(req)?;
                sent_at.push(Instant::now());
            }
            while completed < plan.requests.len() {
                let line = client.recv()?;
                result
                    .latencies_us
                    .push(sent_at[completed].elapsed().as_micros() as u64);
                classify(&line, &mut result);
                result.responses.push(line);
                completed += 1;
            }
        }
    }
    result.elapsed = start.elapsed();
    Ok(result)
}

/// Fire `requests` down one connection back-to-back (no reads between
/// sends), then collect all responses: the burst that overruns a bounded
/// queue. Returns the responses in completion order.
pub fn burst(endpoint: &Endpoint, requests: &[String]) -> io::Result<Vec<String>> {
    let mut client = Client::connect(endpoint)?;
    for req in requests {
        client.send(req)?;
    }
    let mut responses = Vec::with_capacity(requests.len());
    for _ in requests {
        responses.push(client.recv()?);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_counts_ok_rejection_and_failure() {
        let mut r = TenantLoadResult::default();
        classify(r#"{"ok":true,"id":"a"}"#, &mut r);
        classify(r#"{"ok":false,"error":"queue_full","message":"m"}"#, &mut r);
        classify(
            r#"{"ok":false,"error":"engine_panic","message":"m"}"#,
            &mut r,
        );
        classify("not json", &mut r);
        assert_eq!((r.ok, r.rejected, r.failed), (1, 1, 2));
    }
}
