//! Shared helpers for the criterion benchmark suite.

use bh_core::prelude::*;

/// Standard benchmark workload (Plummer model, fixed seed).
pub fn workload(n: usize) -> Vec<Body> {
    Model::Plummer.generate(n, 20_011)
}

/// A short simulation config for benchmarking (1 warmup, 1 measured step,
/// validation off — criterion handles repetition).
pub fn bench_config(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    cfg.validate = false;
    cfg
}
