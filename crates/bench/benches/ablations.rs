//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. Leaf capacity `k` — the paper notes that allowing several bodies per
//!    leaf is what leveled the tree-build algorithms on hardware-coherent
//!    machines.
//! 2. The SPACE subdivision threshold — load balance vs partitioning time.
//! 3. The Barnes-Hut opening angle θ — why force calculation dominates
//!    sequential time.

use bh_bench::{bench_config, workload};
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_leaf_capacity(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("ablation_leaf_capacity");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8, 16] {
        for alg in [Algorithm::Local, Algorithm::Space] {
            group.bench_with_input(BenchmarkId::new(alg.name(), k), &(alg, k), |b, &(alg, k)| {
                let mut cfg = bench_config(alg);
                cfg.k = k;
                b.iter(|| {
                    let env = NativeEnv::new(threads);
                    criterion::black_box(run_simulation(&env, &cfg, &bodies).total_time())
                });
            });
        }
    }
    group.finish();
}

fn bench_space_threshold(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("ablation_space_threshold");
    group.sample_size(10);
    for threshold in [16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("SPACE", threshold), &threshold, |b, &threshold| {
            let mut cfg = bench_config(Algorithm::Space);
            cfg.space_threshold = Some(threshold);
            b.iter(|| {
                let env = NativeEnv::new(threads);
                criterion::black_box(run_simulation(&env, &cfg, &bodies).total_time())
            });
        });
    }
    group.finish();
}

fn bench_theta(c: &mut Criterion) {
    let n = 5_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("ablation_theta");
    group.sample_size(10);
    for theta in [0.5f64, 0.8, 1.2] {
        group.bench_with_input(BenchmarkId::new("SPACE", format!("{theta}")), &theta, |b, &theta| {
            let mut cfg = bench_config(Algorithm::Space);
            cfg.force.theta = theta;
            b.iter(|| {
                let env = NativeEnv::new(threads);
                criterion::black_box(run_simulation(&env, &cfg, &bodies).total_time())
            });
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    // Costzones vs Salmon-style ORB: time of one partitioning pass over a
    // built, summarized tree.
    use bh_core::algorithms::{common, Algorithm, Builder};
    use bh_core::harness::spmd;
    use bh_core::partition::costzones;
    use bh_core::partition_orb::orb_partition;
    let n = 20_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("ablation_partitioner");
    group.sample_size(10);
    let env = NativeEnv::new(threads);
    let world = World::new(&env, &bodies);
    let tree = SharedTree::new(&env, n, 8, Algorithm::Local.layout());
    let builder = Builder::new(&env, Algorithm::Local, n, 8);
    spmd(&env, |proc, ctx| {
        let cube = common::bounds_phase(&env, ctx, &world, proc);
        builder.build(&env, ctx, &tree, &world, proc, 0, cube);
        env.barrier(ctx);
        builder.com(&env, ctx, &tree, &world, proc, 0);
        env.barrier(ctx);
    });
    group.bench_function("costzones", |b| {
        b.iter(|| {
            spmd(&env, |proc, ctx| {
                costzones(&env, ctx, &tree, &world, proc);
                env.barrier(ctx);
            })
        });
    });
    group.bench_function("orb", |b| {
        b.iter(|| {
            spmd(&env, |proc, ctx| {
                orb_partition(&env, ctx, &world, proc);
                env.barrier(ctx);
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_leaf_capacity, bench_space_threshold, bench_theta, bench_partitioners);
criterion_main!(benches);
