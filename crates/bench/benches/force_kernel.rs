//! Force-phase kernel benchmarks: the per-body flat walk (`group_size = 0`)
//! against the batched interaction-list kernel at several group sizes, plus
//! a group-size sweep on the sort-based builder whose Morton-ordered bodies
//! give the tightest groups.
//!
//! The batched kernel amortizes one tree traversal over a group of
//! consecutive bodies in zone order and evaluates the shared list in a
//! branch-free SoA loop; the win should grow with `group_size` until the
//! conservative group opening criterion starts lengthening the lists.
//! Build with `--features simd` to widen the evaluation accumulators from
//! 4 to 8 lanes (the `bh-core/simd` feature; summation grouping only).

use bh_bench::{bench_config, workload};
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Per-body walk vs batched kernel on every algorithm's default pipeline.
fn bench_force_kernels(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("force_kernel");
    group.sample_size(10);
    for (label, gs) in [("per_body", 0usize), ("grouped16", 16), ("grouped32", 32)] {
        for alg in [Algorithm::Local, Algorithm::Morton] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), label),
                &(alg, gs),
                |b, &(alg, gs)| {
                    let mut cfg = bench_config(alg);
                    cfg.group_size = gs;
                    b.iter(|| {
                        let env = NativeEnv::new(threads);
                        criterion::black_box(run_simulation(&env, &cfg, &bodies).force_time())
                    });
                },
            );
        }
    }
    group.finish();
}

/// Group-size sweep: where does list reuse stop paying for longer lists?
fn bench_group_size_sweep(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("force_group_size");
    group.sample_size(10);
    for gs in [1usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("MORTON", gs), &gs, |b, &gs| {
            let mut cfg = bench_config(Algorithm::Morton);
            cfg.group_size = gs;
            b.iter(|| {
                let env = NativeEnv::new(threads);
                criterion::black_box(run_simulation(&env, &cfg, &bodies).force_time())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_force_kernels, bench_group_size_sweep);
criterion_main!(benches);
