//! Observability cost: a full simulation step on host threads, bare versus
//! wrapped in [`TraceEnv`]. The wrapper's hot path is pure delegation (its
//! per-processor buffers are only touched at phase boundaries and lock
//! acquires), so the two groups should be within noise of each other for
//! the lock-free algorithms and within a few percent for ORIG.
//!
//! The `attr_overhead` group measures the same property for per-region
//! attribution on a simulated [`Machine`]: enabling it adds one region
//! lookup per accounted miss, which must stay under 5% of native wall
//! time relative to the plain machine.

use bh_bench::workload;
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmp::{platform, Machine};

fn step_config(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 1;
    cfg.validate = false;
    cfg
}

fn bench_trace_overhead(c: &mut Criterion) {
    let n = 20_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for alg in [Algorithm::Orig, Algorithm::Space] {
        group.bench_with_input(BenchmarkId::new("bare", alg.name()), &alg, |b, &alg| {
            let env = NativeEnv::new(threads);
            let cfg = step_config(alg);
            b.iter(|| run_simulation(&env, &cfg, &bodies));
        });
        group.bench_with_input(BenchmarkId::new("traced", alg.name()), &alg, |b, &alg| {
            let env = TraceEnv::new(NativeEnv::new(threads));
            let cfg = step_config(alg);
            b.iter(|| run_simulation(&env, &cfg, &bodies));
        });
    }
    group.finish();
}

fn bench_attr_overhead(c: &mut Criterion) {
    let n = 20_000;
    let procs = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("attr_overhead");
    group.sample_size(10);
    for alg in [Algorithm::Orig, Algorithm::Space] {
        group.bench_with_input(BenchmarkId::new("plain", alg.name()), &alg, |b, &alg| {
            let cfg = step_config(alg);
            b.iter(|| {
                let machine = Machine::new(platform::origin2000(procs), procs);
                run_simulation(&machine, &cfg, &bodies)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("attributed", alg.name()),
            &alg,
            |b, &alg| {
                let cfg = step_config(alg);
                b.iter(|| {
                    let machine =
                        Machine::new(platform::origin2000(procs), procs).with_attribution();
                    run_simulation(&machine, &cfg, &bodies)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead, bench_attr_overhead);
criterion_main!(benches);
