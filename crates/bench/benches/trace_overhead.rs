//! Observability cost: a full simulation step on host threads, bare versus
//! wrapped in [`TraceEnv`]. The wrapper's hot path is pure delegation (its
//! per-processor buffers are only touched at phase boundaries and lock
//! acquires), so the two groups should be within noise of each other for
//! the lock-free algorithms and within a few percent for ORIG.

use bh_bench::workload;
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn step_config(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 1;
    cfg.validate = false;
    cfg
}

fn bench_trace_overhead(c: &mut Criterion) {
    let n = 20_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for alg in [Algorithm::Orig, Algorithm::Space] {
        group.bench_with_input(BenchmarkId::new("bare", alg.name()), &alg, |b, &alg| {
            let env = NativeEnv::new(threads);
            let cfg = step_config(alg);
            b.iter(|| run_simulation(&env, &cfg, &bodies));
        });
        group.bench_with_input(BenchmarkId::new("traced", alg.name()), &alg, |b, &alg| {
            let env = TraceEnv::new(NativeEnv::new(threads));
            let cfg = step_config(alg);
            b.iter(|| run_simulation(&env, &cfg, &bodies));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
