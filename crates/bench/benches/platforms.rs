//! Simulated-platform benchmarks: wall time of running the application on
//! each platform cost model (this measures the *simulator*, complementing
//! the virtual-time results the `repro` binary reports).

use bh_bench::{bench_config, workload};
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmp::{platform, Machine};

fn bench_platforms(c: &mut Criterion) {
    let n = 4_096;
    let procs = 8;
    let bodies = workload(n);
    let mut group = c.benchmark_group("platform_simulation");
    group.sample_size(10);
    for cost in platform::all_platforms(procs) {
        for alg in [Algorithm::Local, Algorithm::Space] {
            group.bench_with_input(
                BenchmarkId::new(cost.name.clone(), alg.name()),
                &(cost.clone(), alg),
                |b, (cost, alg)| {
                    b.iter(|| {
                        let machine = Machine::new(cost.clone(), procs);
                        let stats = run_simulation(&machine, &bench_config(*alg), &bodies);
                        criterion::black_box(stats.total_time())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
