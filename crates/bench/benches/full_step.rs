//! Full-time-step benchmarks on native threads: the complete application
//! (bounds → build → CoM → costzones → forces → update) per algorithm.
//!
//! The per-algorithm and scaling groups run on a persistent [`SimEngine`]
//! so iterations measure the simulation itself rather than thread spawning
//! and allocation; the `engine_reuse` group quantifies exactly that setup
//! overhead by comparing a one-shot `run_simulation` against a reused
//! engine for the same job.

use bh_bench::{bench_config, workload};
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_step(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("full_step_native");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::new(alg.name(), n), &alg, |b, &alg| {
            let mut engine = SimEngine::new(NativeEnv::new(threads));
            let cfg = bench_config(alg);
            b.iter(|| {
                let stats = engine.run(&cfg, &bodies);
                criterion::black_box(stats.total_time())
            });
        });
    }
    group.finish();
}

fn bench_problem_scaling(c: &mut Criterion) {
    let threads = 4;
    let mut group = c.benchmark_group("full_step_scaling");
    group.sample_size(10);
    for n in [2_000usize, 8_000, 32_000] {
        let bodies = workload(n);
        group.bench_with_input(BenchmarkId::new("SPACE", n), &bodies, |b, bodies| {
            let mut engine = SimEngine::new(NativeEnv::new(threads));
            let cfg = bench_config(Algorithm::Space);
            b.iter(|| {
                let stats = engine.run(&cfg, bodies);
                criterion::black_box(stats.total_time())
            });
        });
    }
    group.finish();
}

fn bench_engine_reuse(c: &mut Criterion) {
    // One-shot vs reused engine on an identical short job: the difference
    // is the per-run setup cost (thread spawn/join + World/tree/flat
    // allocation) that SimEngine amortizes across a sweep.
    let n = 2_000;
    let threads = 4;
    let bodies = workload(n);
    let cfg = bench_config(Algorithm::Space);
    let mut group = c.benchmark_group("engine_reuse");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("one_shot", n), |b| {
        b.iter(|| {
            let env = NativeEnv::new(threads);
            let stats = run_simulation(&env, &cfg, &bodies);
            criterion::black_box(stats.total_time())
        });
    });
    group.bench_function(BenchmarkId::new("reused_engine", n), |b| {
        let mut engine = SimEngine::new(NativeEnv::new(threads));
        b.iter(|| {
            let stats = engine.run(&cfg, &bodies);
            criterion::black_box(stats.total_time())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_step,
    bench_problem_scaling,
    bench_engine_reuse
);
criterion_main!(benches);
