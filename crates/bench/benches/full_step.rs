//! Full-time-step benchmarks on native threads: the complete application
//! (bounds → build → CoM → costzones → forces → update) per algorithm.

use bh_bench::{bench_config, workload};
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_step(c: &mut Criterion) {
    let n = 10_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("full_step_native");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::new(alg.name(), n), &alg, |b, &alg| {
            b.iter(|| {
                let env = NativeEnv::new(threads);
                let stats = run_simulation(&env, &bench_config(alg), &bodies);
                criterion::black_box(stats.total_time())
            });
        });
    }
    group.finish();
}

fn bench_problem_scaling(c: &mut Criterion) {
    let threads = 4;
    let mut group = c.benchmark_group("full_step_scaling");
    group.sample_size(10);
    for n in [2_000usize, 8_000, 32_000] {
        let bodies = workload(n);
        group.bench_with_input(BenchmarkId::new("SPACE", n), &bodies, |b, bodies| {
            b.iter(|| {
                let env = NativeEnv::new(threads);
                let stats = run_simulation(&env, &bench_config(Algorithm::Space), bodies);
                criterion::black_box(stats.total_time())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_step, bench_problem_scaling);
criterion_main!(benches);
