//! Native tree-build benchmarks: one group per algorithm, building the tree
//! for a fixed Plummer galaxy on host threads (bounds + build + CoM).

use bh_bench::workload;
use bh_core::algorithms::{common, Algorithm, Builder};
use bh_core::harness::spmd;
use bh_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build_once(env: &NativeEnv, builder: &Builder, tree: &SharedTree, world: &World, step: u32) {
    spmd(env, |proc, ctx| {
        let cube = common::bounds_phase(env, ctx, world, proc);
        builder.build(env, ctx, tree, world, proc, step, cube);
        env.barrier(ctx);
        builder.com(env, ctx, tree, world, proc, step);
        env.barrier(ctx);
    });
}

fn bench_treebuild(c: &mut Criterion) {
    let n = 20_000;
    let threads = 4;
    let bodies = workload(n);
    let mut group = c.benchmark_group("treebuild_native");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::new(alg.name(), n), &alg, |b, &alg| {
            let env = NativeEnv::new(threads);
            let world = World::new(&env, &bodies);
            let tree = SharedTree::new(&env, n, 8, alg.layout());
            let builder = Builder::new(&env, alg, n, 8);
            let mut step = 0u32;
            b.iter(|| {
                build_once(&env, &builder, &tree, &world, step);
                step += 1;
            });
        });
    }
    group.finish();
}

fn bench_treebuild_thread_scaling(c: &mut Criterion) {
    let n = 20_000;
    let bodies = workload(n);
    let mut group = c.benchmark_group("treebuild_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        for alg in [Algorithm::Local, Algorithm::Space] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), threads),
                &(alg, threads),
                |b, &(alg, threads)| {
                    let env = NativeEnv::new(threads);
                    let world = World::new(&env, &bodies);
                    let tree = SharedTree::new(&env, n, 8, alg.layout());
                    let builder = Builder::new(&env, alg, n, 8);
                    let mut step = 0u32;
                    b.iter(|| {
                        build_once(&env, &builder, &tree, &world, step);
                        step += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_sequential_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("treebuild_sequential");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let bodies = workload(n);
        group.bench_with_input(BenchmarkId::new("SeqTree", n), &bodies, |b, bodies| {
            b.iter(|| SeqTree::build(bodies, 8));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_treebuild, bench_treebuild_thread_scaling, bench_sequential_reference);
criterion_main!(benches);
