//! The `repro report` scaling/analysis subsystem.
//!
//! Distills the reproduced runs into three analysis products the paper's
//! tables only hint at:
//!
//! 1. **Communication by data structure** (Table-4-style): every algorithm
//!    run with the simulator's attribution hooks enabled, so simulated
//!    misses, faults, invalidations and lock waits are charged to the shared
//!    [`Region`] they hit and the pipeline stage that incurred them. The
//!    per-region rows *tile* the aggregate counters exactly — the generator
//!    asserts it, and [`validate_report_record`]'s caller re-checks it from
//!    the emitted document.
//! 2. **Speedup/efficiency curves**: per-algorithm speedups over a
//!    processor-count sweep on each simulated platform, with parallel
//!    efficiency (speedup / processors).
//! 3. **Crossover analysis**: which algorithm wins at each processor count,
//!    and where the winner changes — e.g. the point where SPACE's lock-free
//!    build overtakes the lock-based algorithms as contention grows.
//!
//! Plus a per-step time-series summary (**4**): each configuration run
//! `repeats` times, the per-step tree/total times, lock waits and imbalance
//! pooled across repeats, and summarized with nearest-rank p50/p99 — a
//! single slow step surfaces in the p99 column instead of vanishing into a
//! run-level mean.
//!
//! Everything is emitted twice: human-readable [`Table`]s and a flat JSON
//! array (`REPORT_<scale>.json`) of typed records whose schemas live in
//! [`REPORT_SCHEMAS`] — `repro check-json` validates against them, and a
//! schema-drift test asserts every emitted key is covered.

use crate::runner::{run_cached, ExperimentScale, WORKLOAD_SEED};
use crate::tables::{fmt_pct, fmt_speedup, Table};
use bh_core::prelude::*;
use ssmp::{platform, slot_name, AttrTable, CostModel, Machine, ATTR_SLOTS};

use crate::experiments::ALGS;
use crate::json::Json;

/// Complete output of `repro report`.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Human-readable tables, in presentation order.
    pub tables: Vec<Table>,
    /// The `REPORT_<scale>.json` document: a flat array of typed records.
    pub json: String,
}

/// Required fields per record type: (experiment, string fields, numeric
/// fields). Every record `repro report` emits carries `"experiment"` naming
/// its type plus exactly the fields listed here — `repro check-json`
/// validates presence and type, and the schema-drift test asserts no
/// emitted key escapes validation.
pub const REPORT_SCHEMAS: &[(&str, &[&str], &[&str])] = &[
    (
        "report_comm",
        &["scale", "platform", "algorithm", "region", "stage"],
        &[
            "n",
            "procs",
            "local_misses",
            "remote_misses",
            "page_faults",
            "invalidations",
            "lock_acquires",
            "lock_wait_cycles",
        ],
    ),
    (
        "report_scaling",
        &["scale", "platform", "algorithm"],
        &[
            "n",
            "procs",
            "total_cycles",
            "tree_cycles",
            "seq_cycles",
            "speedup",
            "efficiency",
        ],
    ),
    (
        "report_crossover",
        &["scale", "platform", "winner", "runner_up"],
        &["n", "procs", "winner_speedup", "margin", "changed"],
    ),
    (
        "report_steps",
        &["scale", "platform", "algorithm"],
        &[
            "n",
            "procs",
            "repeats",
            "steps",
            "tree_p50_cycles",
            "tree_p99_cycles",
            "total_p50_cycles",
            "total_p99_cycles",
            "lock_wait_p50_cycles",
            "lock_wait_p99_cycles",
            "imbalance_p50",
            "imbalance_p99",
        ],
    ),
];

/// Validate one record of a `REPORT_*.json` document against
/// [`REPORT_SCHEMAS`]: known experiment type, every required string field a
/// string, every required numeric field a number.
pub fn validate_report_record(record: &Json) -> Result<(), String> {
    let exp = record
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or_else(|| "record lacks \"experiment\"".to_string())?;
    let (_, strs, nums) = REPORT_SCHEMAS
        .iter()
        .find(|(name, _, _)| *name == exp)
        .ok_or_else(|| format!("unknown report record type \"{exp}\""))?;
    for field in *strs {
        if record.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("{exp} record lacks string \"{field}\""));
        }
    }
    for field in *nums {
        if record.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("{exp} record lacks numeric \"{field}\""));
        }
    }
    Ok(())
}

/// The simulated platforms the report covers: one hardware-coherent CC-NUMA
/// machine and one software shared-virtual-memory machine — the two ends of
/// the paper's communication-cost spectrum.
fn platforms(procs: usize) -> [CostModel; 2] {
    [platform::origin2000(procs), platform::typhoon0_hlrc(procs)]
}

/// Generate the full scaling report at a scale's standard size. See
/// [`scaling_report_sized`] for the knobs.
pub fn scaling_report(scale: ExperimentScale) -> ScalingReport {
    let mut sweep: Vec<usize> = [1, 2, 4, 8, 16].iter().map(|&p| scale.procs(p)).collect();
    sweep.dedup();
    scaling_report_sized(scale, scale.size(16384), &sweep, 2)
}

/// Generate the report for an explicit size, processor sweep and repeat
/// count. The communication breakdown and step series run at the sweep's
/// largest processor count; the scaling curves cover the whole sweep.
pub fn scaling_report_sized(
    scale: ExperimentScale,
    n: usize,
    procs_sweep: &[usize],
    repeats: usize,
) -> ScalingReport {
    assert!(!procs_sweep.is_empty(), "empty processor sweep");
    let max_procs = *procs_sweep.iter().max().unwrap();
    let mut records: Vec<String> = Vec::new();
    let mut tables = Vec::new();

    tables.push(comm_breakdown(scale, n, max_procs, &mut records));
    let (curves, crossover) = scaling_curves(scale, n, procs_sweep, &mut records);
    tables.extend(curves);
    tables.push(crossover);
    tables.push(step_series(scale, n, max_procs, repeats, &mut records));

    ScalingReport {
        tables,
        json: format!("[\n{}\n]\n", records.join(",\n")),
    }
}

/// Product 1: per-region communication breakdown with attribution enabled,
/// asserting the tiling property against the aggregate counters.
fn comm_breakdown(
    scale: ExperimentScale,
    n: usize,
    procs: usize,
    records: &mut Vec<String>,
) -> Table {
    let mut table = Table::new(
        "Report: communication",
        &format!(
            "Simulated communication by data structure, {n} particles, {procs} processors \
             (whole run; tree-stage remote misses split out; zero rows omitted)"
        ),
        &[
            "platform",
            "alg",
            "region",
            "local",
            "remote",
            "remote@tree",
            "faults",
            "inval",
            "locks",
            "lock_wait",
        ],
        "tree cells dominate communication for the lock-based algorithms; \
         SPACE shifts traffic to bodies and the flat tree",
    );
    let bodies = Model::Plummer.generate(n, WORKLOAD_SEED);
    for cost in platforms(procs) {
        for alg in ALGS {
            let machine = Machine::new(cost.clone(), procs).with_attribution();
            let stats = run_simulation(&machine, &SimConfig::new(alg), &bodies);
            stats.assert_valid();
            let tables = machine
                .attribution()
                .expect("attribution was enabled on this machine");
            let mut sum = AttrTable::new();
            for t in &tables {
                sum.accumulate(t);
            }

            // The tiling property is the contract that makes the breakdown
            // trustworthy: per-region counters must sum exactly to the
            // aggregates the rest of the harness reports.
            let mut agg = CtxStats::default();
            for r in &stats.procs_records {
                agg.accumulate(&r.final_stats);
            }
            let total = sum.total();
            for (name, got, want) in [
                ("local_misses", total.local_misses, agg.local_misses),
                ("remote_misses", total.remote_misses, agg.remote_misses),
                ("page_faults", total.page_faults, agg.page_faults),
                ("lock_acquires", total.lock_acquires, agg.lock_acquires),
                ("lock_wait", total.lock_wait, agg.lock_wait),
            ] {
                assert_eq!(
                    got,
                    want,
                    "report: attribution does not tile {name} for {}/{}",
                    cost.name,
                    alg.name()
                );
            }

            for region in Region::ALL {
                let r = sum.region_total(region);
                if !r.is_zero() {
                    let tree_remote = sum.cell(region, Phase::Tree.index()).remote_misses;
                    table.row(vec![
                        cost.name.clone(),
                        alg.name().to_string(),
                        region.name().to_string(),
                        r.local_misses.to_string(),
                        r.remote_misses.to_string(),
                        tree_remote.to_string(),
                        r.page_faults.to_string(),
                        r.invalidations.to_string(),
                        r.lock_acquires.to_string(),
                        r.lock_wait.to_string(),
                    ]);
                }
                // JSON keeps the full (region x stage) resolution; zero
                // cells are omitted but their absence cannot break tiling.
                for slot in 0..ATTR_SLOTS {
                    let c = sum.cell(region, slot);
                    if !c.is_zero() {
                        records.push(comm_record(
                            scale,
                            &cost.name,
                            alg,
                            n,
                            procs,
                            region.name(),
                            slot_name(slot),
                            c,
                        ));
                    }
                }
            }
            // One totals record per configuration: check-json re-derives
            // the tiling property from the document alone.
            records.push(comm_record(
                scale, &cost.name, alg, n, procs, "total", "all", &total,
            ));
        }
    }
    table
}

#[allow(clippy::too_many_arguments)]
fn comm_record(
    scale: ExperimentScale,
    platform: &str,
    alg: Algorithm,
    n: usize,
    procs: usize,
    region: &str,
    stage: &str,
    c: &ssmp::AttrCell,
) -> String {
    format!(
        "  {{\"experiment\": \"report_comm\", \"scale\": \"{}\", \"platform\": \"{platform}\", \
         \"algorithm\": \"{}\", \"region\": \"{region}\", \"stage\": \"{stage}\", \
         \"n\": {n}, \"procs\": {procs}, \
         \"local_misses\": {}, \"remote_misses\": {}, \"page_faults\": {}, \
         \"invalidations\": {}, \"lock_acquires\": {}, \"lock_wait_cycles\": {}}}",
        scale.name(),
        alg.name(),
        c.local_misses,
        c.remote_misses,
        c.page_faults,
        c.invalidations,
        c.lock_acquires,
        c.lock_wait,
    )
}

/// Products 2 and 3: per-algorithm speedup/efficiency curves over the
/// processor sweep, and the crossover table derived from them.
fn scaling_curves(
    scale: ExperimentScale,
    n: usize,
    procs_sweep: &[usize],
    records: &mut Vec<String>,
) -> (Vec<Table>, Table) {
    let mut curve_tables = Vec::new();
    let mut crossover = Table::new(
        "Report: crossover",
        &format!("Best algorithm per processor count, {n} particles"),
        &["platform", "procs", "winner", "speedup", "margin", "note"],
        "the winner at 1 processor (least overhead) is overtaken by the \
         contention-robust algorithms as processors grow",
    );
    let makers: [fn(usize) -> CostModel; 2] = [platform::origin2000, platform::typhoon0_hlrc];
    for maker in makers {
        let cost0 = maker(1);
        let mut t = Table::new(
            &format!("Report: scaling on {}", cost0.name),
            &format!(
                "Speedup (and efficiency) vs processor count on {}, {n} particles",
                cost0.name
            ),
            &[],
            "speedups grow with processors but efficiency falls; \
             lock-heavy algorithms fall off first",
        );
        t.headers = vec!["procs".to_string()];
        t.headers.extend(ALGS.iter().map(|a| a.name().to_string()));
        let mut prev_winner: Option<Algorithm> = None;
        for &p in procs_sweep {
            let cost = maker(p);
            let mut row = vec![p.to_string()];
            let mut by_speedup: Vec<(Algorithm, f64)> = Vec::new();
            for alg in ALGS {
                let run = run_cached(&cost, alg, n, p);
                let efficiency = run.speedup / p as f64;
                row.push(format!(
                    "{} ({})",
                    fmt_speedup(run.speedup),
                    fmt_pct(efficiency)
                ));
                by_speedup.push((alg, run.speedup));
                records.push(format!(
                    "  {{\"experiment\": \"report_scaling\", \"scale\": \"{}\", \
                     \"platform\": \"{}\", \"algorithm\": \"{}\", \"n\": {n}, \"procs\": {p}, \
                     \"total_cycles\": {}, \"tree_cycles\": {}, \"seq_cycles\": {}, \
                     \"speedup\": {:.4}, \"efficiency\": {:.4}}}",
                    scale.name(),
                    cost.name,
                    alg.name(),
                    run.total_cycles,
                    run.tree_cycles,
                    run.seq_cycles,
                    run.speedup,
                    efficiency,
                ));
            }
            t.rows.push(row);
            by_speedup.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let (winner, ws) = by_speedup[0];
            let (runner_up, rs) = by_speedup[1];
            let changed = prev_winner.is_some_and(|w| w != winner);
            let note = match prev_winner {
                Some(w) if changed => format!("{} overtakes {}", winner.name(), w.name()),
                _ => String::new(),
            };
            crossover.row(vec![
                cost.name.clone(),
                p.to_string(),
                winner.name().to_string(),
                fmt_speedup(ws),
                format!("+{:.2} vs {}", ws - rs, runner_up.name()),
                note,
            ]);
            records.push(format!(
                "  {{\"experiment\": \"report_crossover\", \"scale\": \"{}\", \
                 \"platform\": \"{}\", \"winner\": \"{}\", \"runner_up\": \"{}\", \
                 \"n\": {n}, \"procs\": {p}, \"winner_speedup\": {:.4}, \
                 \"margin\": {:.4}, \"changed\": {}}}",
                scale.name(),
                cost.name,
                winner.name(),
                runner_up.name(),
                ws,
                ws - rs,
                if changed { 1 } else { 0 },
            ));
            prev_winner = Some(winner);
        }
        curve_tables.push(t);
    }
    (curve_tables, crossover)
}

/// Product 4: repeat-aware per-step summaries. Each configuration runs
/// `repeats` times; per-step values are pooled across repeats before taking
/// nearest-rank p50/p99 (multi-processor simulated timings carry real
/// run-to-run jitter — the interleaving of the host threads feeds the
/// contention model — so repeats widen the sample honestly).
fn step_series(
    scale: ExperimentScale,
    n: usize,
    procs: usize,
    repeats: usize,
    records: &mut Vec<String>,
) -> Table {
    let mut table = Table::new(
        "Report: step series",
        &format!(
            "Per-step time series over {repeats} repeat(s), {n} particles, {procs} processors \
             (nearest-rank percentiles over all measured steps of all repeats)"
        ),
        &[
            "platform",
            "alg",
            "steps",
            "tree_p50",
            "tree_p99",
            "total_p50",
            "total_p99",
            "lockw_p50",
            "lockw_p99",
            "imbal_p50",
            "imbal_p99",
        ],
        "lock-based algorithms show wider tree-time tails (p99 >> p50) \
         under contention; SPACE stays tight",
    );
    let bodies = Model::Plummer.generate(n, WORKLOAD_SEED);
    for cost in platforms(procs) {
        for alg in ALGS {
            let mut tree_times: Vec<u64> = Vec::new();
            let mut totals: Vec<u64> = Vec::new();
            let mut lock_waits: Vec<u64> = Vec::new();
            let mut imbalances: Vec<f64> = Vec::new();
            for _ in 0..repeats.max(1) {
                let machine = Machine::new(cost.clone(), procs);
                let stats = run_simulation(&machine, &SimConfig::new(alg), &bodies);
                stats.assert_valid();
                tree_times.extend(stats.step_phase_times(Phase::Tree));
                totals.extend(stats.step_totals());
                lock_waits.extend(stats.step_lock_waits());
                imbalances.extend(stats.step_tree_imbalance());
            }
            let steps = totals.len();
            let row = [
                percentile_u64(&tree_times, 50.0),
                percentile_u64(&tree_times, 99.0),
                percentile_u64(&totals, 50.0),
                percentile_u64(&totals, 99.0),
                percentile_u64(&lock_waits, 50.0),
                percentile_u64(&lock_waits, 99.0),
            ];
            let (imb50, imb99) = (
                percentile_f64(&imbalances, 50.0),
                percentile_f64(&imbalances, 99.0),
            );
            let mut cells = vec![cost.name.clone(), alg.name().to_string(), steps.to_string()];
            cells.extend(row.iter().map(u64::to_string));
            cells.push(format!("{imb50:.3}"));
            cells.push(format!("{imb99:.3}"));
            table.row(cells);
            records.push(format!(
                "  {{\"experiment\": \"report_steps\", \"scale\": \"{}\", \
                 \"platform\": \"{}\", \"algorithm\": \"{}\", \"n\": {n}, \"procs\": {procs}, \
                 \"repeats\": {}, \"steps\": {steps}, \
                 \"tree_p50_cycles\": {}, \"tree_p99_cycles\": {}, \
                 \"total_p50_cycles\": {}, \"total_p99_cycles\": {}, \
                 \"lock_wait_p50_cycles\": {}, \"lock_wait_p99_cycles\": {}, \
                 \"imbalance_p50\": {imb50:.4}, \"imbalance_p99\": {imb99:.4}}}",
                scale.name(),
                cost.name,
                alg.name(),
                repeats.max(1),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                row[5],
            ));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny_report() -> ScalingReport {
        scaling_report_sized(ExperimentScale::Tiny, 128, &[1, 2], 2)
    }

    #[test]
    fn report_emits_valid_records_with_no_schema_drift() {
        let report = tiny_report();
        assert!(!report.tables.is_empty());
        let doc = Json::parse(&report.json).expect("report JSON must parse");
        let records = doc.as_array().expect("report is an array");
        assert!(!records.is_empty());

        let mut seen: HashMap<&str, usize> = HashMap::new();
        for r in records {
            validate_report_record(r).expect("every emitted record validates");
            let exp = r.get("experiment").and_then(Json::as_str).unwrap();
            *seen
                .entry(
                    REPORT_SCHEMAS
                        .iter()
                        .find(|(name, _, _)| *name == exp)
                        .map(|(name, _, _)| *name)
                        .unwrap(),
                )
                .or_default() += 1;

            // Schema drift: every key the generator emits must be covered
            // by the validator — a new metric key without a schema entry
            // fails here before it can ship unvalidated.
            let (_, strs, nums) = REPORT_SCHEMAS
                .iter()
                .find(|(name, _, _)| *name == exp)
                .unwrap();
            let Json::Obj(fields) = r else {
                panic!("record is not an object")
            };
            for (key, _) in fields {
                assert!(
                    key == "experiment"
                        || strs.contains(&key.as_str())
                        || nums.contains(&key.as_str()),
                    "{exp} emits key \"{key}\" that no schema covers"
                );
            }
        }
        // Every record type appears.
        for (name, _, _) in REPORT_SCHEMAS {
            assert!(
                seen.get(name).copied().unwrap_or(0) > 0,
                "report emitted no {name} records"
            );
        }
    }

    #[test]
    fn comm_records_tile_their_totals() {
        let report = tiny_report();
        let doc = Json::parse(&report.json).unwrap();
        // Group report_comm rows by (platform, algorithm) and check the
        // non-total rows sum to the total row, metric by metric.
        let mut sums: HashMap<(String, String), (f64, f64)> = HashMap::new();
        let mut totals: HashMap<(String, String), (f64, f64)> = HashMap::new();
        for r in doc.as_array().unwrap() {
            if r.get("experiment").and_then(Json::as_str) != Some("report_comm") {
                continue;
            }
            let key = (
                r.get("platform")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
                r.get("algorithm")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
            let remote = r.get("remote_misses").and_then(Json::as_f64).unwrap();
            let wait = r.get("lock_wait_cycles").and_then(Json::as_f64).unwrap();
            if r.get("region").and_then(Json::as_str) == Some("total") {
                totals.insert(key, (remote, wait));
            } else {
                let e = sums.entry(key).or_default();
                e.0 += remote;
                e.1 += wait;
            }
        }
        assert!(!totals.is_empty());
        for (key, total) in &totals {
            let sum = sums.get(key).copied().unwrap_or((0.0, 0.0));
            assert_eq!(sum, *total, "comm rows do not tile the total for {key:?}");
        }
    }

    #[test]
    fn validator_rejects_malformed_records() {
        let bad = Json::parse(r#"{"experiment": "report_comm", "scale": "tiny"}"#).unwrap();
        assert!(validate_report_record(&bad).is_err());
        let unknown = Json::parse(r#"{"experiment": "report_nope"}"#).unwrap();
        assert!(unknown_err_mentions_type(&unknown));
        let no_exp = Json::parse(r#"{"id": "x"}"#).unwrap();
        assert!(validate_report_record(&no_exp).is_err());
    }

    fn unknown_err_mentions_type(j: &Json) -> bool {
        match validate_report_record(j) {
            Err(e) => e.contains("report_nope"),
            Ok(()) => false,
        }
    }
}
