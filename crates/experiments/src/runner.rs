//! Shared experiment machinery: platform runs, sequential baselines (with
//! memoization — many figures share them), and problem-size scaling.

use bh_core::prelude::*;
use bh_core::sync::Mutex;
use ssmp::{CostModel, Machine};
use std::collections::HashMap;

/// How large to run the experiments relative to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Paper sizes divided by 64 — smoke tests / CI.
    Tiny,
    /// Paper sizes divided by 8 — the default; every experiment finishes in
    /// minutes on a laptop while preserving the qualitative shapes.
    Small,
    /// The paper's problem sizes.
    Full,
}

impl ExperimentScale {
    /// The accepted `--scale` spellings, for CLI diagnostics.
    pub const NAMES: [&'static str; 3] = ["tiny", "small", "full"];

    /// Lower-case name of this scale (inverse of [`ExperimentScale::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Tiny => "tiny",
            ExperimentScale::Small => "small",
            ExperimentScale::Full => "full",
        }
    }

    pub fn parse(s: &str) -> Option<ExperimentScale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(ExperimentScale::Tiny),
            "small" => Some(ExperimentScale::Small),
            "full" => Some(ExperimentScale::Full),
            _ => None,
        }
    }

    /// Scale a paper problem size.
    pub fn size(&self, paper_n: usize) -> usize {
        match self {
            ExperimentScale::Tiny => (paper_n / 64).max(512),
            ExperimentScale::Small => (paper_n / 8).max(1024),
            ExperimentScale::Full => paper_n,
        }
    }

    /// Scale a processor count (kept as in the paper, but capped for Tiny).
    pub fn procs(&self, paper_p: usize) -> usize {
        match self {
            ExperimentScale::Tiny => paper_p.min(8),
            _ => paper_p,
        }
    }
}

/// Everything one platform run yields.
#[derive(Debug, Clone)]
pub struct PlatformRun {
    pub platform: String,
    pub algorithm: Algorithm,
    pub n: usize,
    pub procs: usize,
    /// Measured-steps totals, in simulated cycles.
    pub total_cycles: u64,
    pub tree_cycles: u64,
    pub force_cycles: u64,
    /// Sequential baseline on the same platform (cycles).
    pub seq_cycles: u64,
    pub seq_tree_cycles: u64,
    pub speedup: f64,
    pub tree_speedup: f64,
    pub tree_fraction: f64,
    pub seconds: f64,
    pub barrier_wait_cycles: u64,
    pub locks_per_proc: Vec<u64>,
    pub page_faults: u64,
    pub remote_misses: u64,
}

/// Fixed workload seed so every experiment sees the same galaxy.
pub const WORKLOAD_SEED: u64 = 1998;

fn workload(n: usize) -> Vec<Body> {
    Model::Plummer.generate(n, WORKLOAD_SEED)
}

fn paper_config(alg: Algorithm) -> SimConfig {
    // The paper's protocol: warm up two steps (let the partition settle),
    // measure two.
    SimConfig::new(alg)
}

/// Memoized sequential baselines keyed by (platform, n): (total, tree) cycles.
type SeqKey = (String, usize);
static SEQ_CACHE: Mutex<Option<HashMap<SeqKey, (u64, u64)>>> = Mutex::new(None);

/// Sequential time on a platform: the application run on a single simulated
/// processor with the PARTREE algorithm, whose one-processor execution is a
/// lock-free private build plus a handful of attach operations — i.e. the
/// best sequential version (LOCAL on one processor would still pay per-insert
/// lock instructions and, on SVM platforms, per-acquire protocol actions).
pub fn seq_time_on_platform(cost: &CostModel, n: usize) -> (u64, u64) {
    let key = (cost.name.clone(), n);
    if let Some(hit) = SEQ_CACHE.lock().get_or_insert_with(HashMap::new).get(&key) {
        return *hit;
    }
    let machine = Machine::new(cost.clone(), 1);
    let cfg = paper_config(Algorithm::Partree);
    let stats = run_simulation(&machine, &cfg, &workload(n));
    stats.assert_valid();
    let result = (stats.total_time(), stats.tree_time());
    SEQ_CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(key, result);
    result
}

/// Run one (platform, algorithm, n, procs) configuration with the paper's
/// measurement protocol and compute speedups against the platform's
/// sequential baseline.
pub fn run_on_platform(cost: &CostModel, alg: Algorithm, n: usize, procs: usize) -> PlatformRun {
    let machine = Machine::new(cost.clone(), procs);
    let cfg = paper_config(alg);
    let stats = run_simulation(&machine, &cfg, &workload(n));
    stats.assert_valid();
    let (seq_cycles, seq_tree_cycles) = seq_time_on_platform(cost, n);
    let total_cycles = stats.total_time();
    let tree_cycles = stats.tree_time();
    let page_faults = stats
        .procs_records
        .iter()
        .map(|r| r.final_stats.page_faults)
        .sum();
    let remote_misses = stats
        .procs_records
        .iter()
        .map(|r| r.final_stats.remote_misses)
        .sum();
    PlatformRun {
        platform: cost.name.clone(),
        algorithm: alg,
        n,
        procs,
        total_cycles,
        tree_cycles,
        force_cycles: stats.force_time(),
        seq_cycles,
        seq_tree_cycles,
        speedup: seq_cycles as f64 / total_cycles.max(1) as f64,
        tree_speedup: seq_tree_cycles as f64 / tree_cycles.max(1) as f64,
        tree_fraction: stats.tree_fraction(),
        seconds: cost.cycles_to_seconds(total_cycles),
        barrier_wait_cycles: stats.barrier_wait_total(),
        locks_per_proc: stats.tree_locks_per_proc(),
        page_faults,
        remote_misses,
    }
}

/// Memoized platform runs keyed by (platform, algorithm, n, procs). Many
/// figures share configurations (e.g. Figures 8 and 9), and the sweep
/// scheduler prewarms this cache so the serial table-generation pass that
/// follows is pure lookup.
type RunKey = (String, Algorithm, usize, usize);
static RUN_CACHE: Mutex<Option<HashMap<RunKey, PlatformRun>>> = Mutex::new(None);

/// [`run_on_platform`], memoized within the process. Simulated runs are
/// deterministic, so concurrent computations of the same key (possible when
/// the sweep scheduler races the serial path) insert identical values.
pub fn run_cached(cost: &CostModel, alg: Algorithm, n: usize, procs: usize) -> PlatformRun {
    let key = (cost.name.clone(), alg, n, procs);
    if let Some(hit) = RUN_CACHE.lock().get_or_insert_with(HashMap::new).get(&key) {
        return hit.clone();
    }
    let run = run_on_platform(cost, alg, n, procs);
    RUN_CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(key, run.clone());
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmp::platform;

    #[test]
    fn scales() {
        assert_eq!(ExperimentScale::Full.size(8192), 8192);
        assert_eq!(ExperimentScale::Small.size(8192), 1024);
        assert_eq!(ExperimentScale::Tiny.size(8192), 512);
        assert_eq!(ExperimentScale::Tiny.procs(30), 8);
        assert_eq!(ExperimentScale::Full.procs(30), 30);
        assert_eq!(ExperimentScale::parse("FULL"), Some(ExperimentScale::Full));
        assert!(ExperimentScale::parse("huge").is_none());
        for name in ExperimentScale::NAMES {
            assert_eq!(ExperimentScale::parse(name).map(|s| s.name()), Some(name));
        }
    }

    #[test]
    fn seq_baseline_is_memoized_and_positive() {
        let cost = platform::origin2000(1);
        let (t1, tree1) = seq_time_on_platform(&cost, 600);
        let (t2, _) = seq_time_on_platform(&cost, 600);
        assert_eq!(t1, t2);
        assert!(t1 > 0);
        assert!(tree1 > 0);
        assert!(tree1 < t1);
    }

    #[test]
    fn platform_run_produces_sane_metrics() {
        let cost = platform::challenge(4);
        let run = run_on_platform(&cost, Algorithm::Space, 800, 4);
        assert!(run.speedup > 0.5, "speedup {}", run.speedup);
        assert!(run.tree_fraction > 0.0 && run.tree_fraction < 1.0);
        assert_eq!(run.locks_per_proc.len(), 4);
        assert!(run.seconds > 0.0);
    }
}
