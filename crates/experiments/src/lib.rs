//! Experiment harness regenerating every table and figure of Shan & Singh
//! (IPPS 1998). Each experiment module produces a [`Table`] whose rows match
//! the paper's reported series; the `repro` binary prints them and can dump
//! JSON records.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bench_serve;
pub mod cliargs;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod tables;

/// JSON parsing moved down into `bh-serve` (the job protocol needs it
/// below the experiments layer); re-exported here so the report tooling
/// and schema gates keep their historical import path.
pub use bh_serve::json;

pub use runner::{run_cached, run_on_platform, seq_time_on_platform, ExperimentScale, PlatformRun};
pub use sweep::{SweepJob, SweepScheduler};
pub use tables::Table;
