//! Plain-text table rendering and JSON export for experiment results.

/// A rendered experiment result: rows/series matching what the paper's
/// table or figure reports.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "Figure 6".
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// What the paper reports for this experiment, for eyeball comparison.
    pub paper_expectation: String,
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str], paper_expectation: &str) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            paper_expectation: paper_expectation.to_string(),
        }
    }

    pub fn row<S: ToString>(&mut self, cells: Vec<S>) {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Serialize the table as a JSON object (the workspace builds offline,
    /// so this is hand-rolled rather than serde-derived).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| json_string_array(r)).collect();
        format!(
            "{{\"id\": \"{}\", \"title\": \"{}\", \"headers\": {}, \"rows\": [{}], \"paper_expectation\": \"{}\"}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_string_array(&self.headers),
            rows.join(", "),
            json_escape(&self.paper_expectation),
        )
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        writeln!(f, "paper: {}", self.paper_expectation)
    }
}

/// Format a ratio as a speedup with 2 decimals.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_headers() {
        let mut t = Table::new("Figure 0", "demo", &["n", "speedup"], "n/a");
        t.row(vec!["8192".to_string(), "12.5".to_string()]);
        let s = t.to_string();
        assert!(s.contains("Figure 0"));
        assert!(s.contains("speedup"));
        assert!(s.contains("8192"));
        assert!(s.contains("12.5"));
    }

    #[test]
    fn json_has_fields_and_rows() {
        let mut t = Table::new("Table 1", "seq", &["a"], "x");
        t.row(vec![1.5f64]);
        let j = t.to_json();
        assert!(j.contains("\"id\": \"Table 1\""));
        assert!(j.contains("\"rows\": [[\"1.5\"]]"));
        assert!(j.contains("\"headers\": [\"a\"]"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let t = Table::new("T", "quote \" and newline\n", &[], "");
        assert!(t.to_json().contains("quote \\\" and newline\\n"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(12.3456), "12.35");
        assert_eq!(fmt_pct(0.5), "50.0%");
    }

    #[test]
    fn roundtrips_table_output() {
        use crate::json::Json;
        let mut t = Table::new("Table 9", "tricky \"title\"", &["col\na", "b"], "exp");
        t.row(vec!["1".to_string(), "häßlich \\ value".to_string()]);
        let doc = Json::parse(&t.to_json()).expect("table JSON parses");
        assert_eq!(doc.get("id").unwrap().as_str(), Some("Table 9"));
        assert_eq!(doc.get("title").unwrap().as_str(), Some("tricky \"title\""));
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        let row0 = rows[0].as_array().unwrap();
        assert_eq!(row0[1].as_str(), Some("häßlich \\ value"));
    }
}
