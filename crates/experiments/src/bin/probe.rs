//! `probe` — run a single (platform, algorithm, n, procs) configuration and
//! dump the full per-phase and per-processor diagnostics. Calibration and
//! debugging aid for the cost models.
//!
//! ```text
//! probe <platform|native> <algorithm> <n> <procs>
//!       [--scale tiny|small|full] [--trace <path>] [--attr]
//! ```
//!
//! `--scale` applies the same scaling `repro` applies to the paper's
//! configurations: `n` is divided per the scale (`tiny` = /64, `small` = /8)
//! and `procs` capped for `tiny` — so a paper-sized configuration can be
//! pasted verbatim and shrunk with one flag.
//!
//! With `--trace`, the run is instrumented with [`TraceEnv`] and a
//! Chrome/Perfetto trace (one track per processor, spans for all four
//! phases plus contended lock acquires) is written to `<path>`, and the
//! trace summary plus per-step percentile tables are printed after the
//! per-processor diagnostics. Native timestamps are wall-clock; simulated
//! ones are platform cycles.
//!
//! With `--attr` (simulated platforms only), the machine runs with
//! attribution enabled and the per-region communication breakdown is
//! printed: misses, faults, invalidations and lock waits charged to the
//! shared data structure they hit.

use bh_core::prelude::*;
use bh_experiments::{cliargs, ExperimentScale};
use ssmp::{platform, AttrTable, CostModel, Machine};

/// Apply one `PROBE_<FIELD>` calibration override to the cost model.
fn set_override(cost: &mut CostModel, key: &str, v: u64) {
    match key {
        "PROBE_NOTICE" => cost.t_notice = v,
        "PROBE_OCCUPANCY" => cost.t_fault_occupancy = v,
        "PROBE_FAULT" => cost.t_page_fault = v,
        "PROBE_CHECK" => cost.t_check = v,
        "PROBE_TWIN" => cost.t_twin = v,
        "PROBE_DIFF" => cost.t_diff = v,
        "PROBE_LOCK_TRANSFER" => cost.t_lock_transfer = v,
        "PROBE_LOCK" => cost.t_lock = v,
        other => unreachable!("unknown probe override {other}"),
    }
}

/// The accepted algorithm names, for the usage banner and parse errors.
fn algorithm_names() -> String {
    Algorithm::ALL
        .iter()
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join("|")
}

/// Print a specific diagnostic plus the usage banner, then exit non-zero.
fn die(msg: &str) -> ! {
    eprintln!("probe: {msg}");
    eprintln!(
        "usage: probe <platform|native> <algorithm> <n> <procs> \
         [--scale {}] [--trace <path>] [--attr] [--group-size <N>]\n\
         algorithms: {}",
        ExperimentScale::NAMES.join("|"),
        algorithm_names()
    );
    std::process::exit(2);
}

/// Run traced, print the summaries, write the Chrome trace to `path`, and
/// hand the environment back so the caller can keep inspecting it.
fn run_traced<E: Env>(
    env: E,
    cfg: &SimConfig,
    bodies: &[Body],
    path: &str,
    label: &str,
    unit: &str,
    ts_div: f64,
) -> (RunStats, TraceEnv<E>) {
    let traced = TraceEnv::new(env);
    let stats = run_simulation(&traced, cfg, bodies);
    std::fs::write(path, traced.chrome_trace_json(label, ts_div)).expect("write trace");
    eprintln!("[wrote {path} — open in https://ui.perfetto.dev]");
    println!("{}", traced.summary(unit));
    println!("per-step percentiles (all steps incl. warm-up):");
    println!("{}", traced.step_summary(unit));
    (stats, traced)
}

/// Print the per-region attribution breakdown of an attributed machine.
fn print_attribution(machine: &Machine) {
    let tables = machine
        .attribution()
        .expect("attribution was enabled on this machine");
    let mut sum = AttrTable::new();
    for t in &tables {
        sum.accumulate(t);
    }
    println!("per-region attribution (whole run, summed over processors):");
    println!(
        "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "region", "local", "remote", "faults", "inval", "locks", "lockwait"
    );
    for region in Region::ALL {
        let c = sum.region_total(region);
        if !c.is_zero() {
            println!(
                "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
                region.name(),
                c.local_misses,
                c.remote_misses,
                c.page_faults,
                c.invalidations,
                c.lock_acquires,
                c.lock_wait
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut scale: Option<ExperimentScale> = None;
    let mut attr = false;
    let mut group_size: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                i += 1;
                trace_path = Some(
                    cliargs::require_value("--trace", args.get(i).map(String::as_str), "a path")
                        .map(str::to_string)
                        .unwrap_or_else(|e| die(&e)),
                );
            }
            "--scale" => {
                i += 1;
                scale = Some(
                    cliargs::parse_scale("--scale", args.get(i).map(String::as_str))
                        .unwrap_or_else(|e| die(&e)),
                );
            }
            "--attr" => attr = true,
            "--group-size" => {
                i += 1;
                group_size = Some(
                    cliargs::parse_value(
                        "--group-size",
                        args.get(i).map(String::as_str),
                        "integer >= 0; 0 = per-body walk",
                    )
                    .unwrap_or_else(|e| die(&e)),
                );
            }
            flag if flag.starts_with("--") => die(&format!("unrecognized flag '{flag}'")),
            other if positional.len() < 4 => positional.push(other.to_string()),
            extra => die(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    if positional.len() != 4 {
        die(&format!(
            "expected 4 positional arguments (platform algorithm n procs), got {}",
            positional.len()
        ));
    }
    let alg = Algorithm::parse(&positional[1]).unwrap_or_else(|| {
        die(&format!(
            "unknown algorithm '{}' (valid: {})",
            positional[1],
            algorithm_names()
        ))
    });
    let mut n: usize =
        cliargs::parse_positional("n", &positional[2], "a body count").unwrap_or_else(|e| die(&e));
    let mut procs: usize = cliargs::parse_positional("procs", &positional[3], "a processor count")
        .unwrap_or_else(|e| die(&e));
    if let Some(s) = scale {
        n = s.size(n);
        procs = s.procs(procs);
    }
    let bodies = Model::Plummer.generate(n, 1998);
    let mut cfg = SimConfig::new(alg);
    if let Some(gs) = group_size {
        cfg.group_size = gs;
    }
    let label = format!("{} {alg}", positional[0]);

    let stats = if positional[0] == "native" {
        if attr {
            die("--attr needs a simulated platform (the native machine has no protocol to attribute)");
        }
        let env = NativeEnv::new(procs);
        match &trace_path {
            // Native timestamps are nanoseconds; /1000 puts them on the
            // trace viewer's microsecond axis.
            Some(path) => run_traced(env, &cfg, &bodies, path, &label, "ns", 1000.0).0,
            None => run_simulation(&env, &cfg, &bodies),
        }
    } else {
        let mut cost = platform::by_name(&positional[0], procs)
            .unwrap_or_else(|| die(&format!("unknown platform '{}'", positional[0])));
        // Calibration overrides: PROBE_<FIELD>=value.
        for key in [
            "PROBE_NOTICE",
            "PROBE_OCCUPANCY",
            "PROBE_FAULT",
            "PROBE_CHECK",
            "PROBE_TWIN",
            "PROBE_DIFF",
            "PROBE_LOCK_TRANSFER",
            "PROBE_LOCK",
        ] {
            if let Ok(v) = std::env::var(key) {
                set_override(&mut cost, key, v.parse().expect(key));
            }
        }
        let mut machine = Machine::new(cost, procs);
        if attr {
            machine = machine.with_attribution();
        }
        match &trace_path {
            // Simulated clocks tick in cycles; render one cycle per µs.
            Some(path) => {
                let (stats, traced) =
                    run_traced(machine, &cfg, &bodies, path, &label, "cycles", 1.0);
                if attr {
                    print_attribution(traced.inner());
                }
                stats
            }
            None => {
                let stats = run_simulation(&machine, &cfg, &bodies);
                if attr {
                    print_attribution(&machine);
                }
                stats
            }
        }
    };
    stats.assert_valid();

    println!(
        "platform={} alg={} n={} procs={}",
        positional[0], alg, n, procs
    );
    println!(
        "total={} tree={} ({:.1}%) force={}",
        stats.total_time(),
        stats.tree_time(),
        100.0 * stats.tree_fraction(),
        stats.force_time(),
    );
    if stats.force_groups() > 0 {
        println!(
            "force lists: groups={} entries={} interactions={} len={:.1} reuse={:.2}",
            stats.force_groups(),
            stats.force_list_entries(),
            stats.force_interactions(),
            stats.force_list_len(),
            stats.force_list_reuse(),
        );
    }
    println!("per-proc (measured steps):");
    for r in &stats.procs_records {
        let tree: u64 = r.steps.iter().map(|s| s.tree).sum();
        let part: u64 = r.steps.iter().map(|s| s.partition).sum();
        let force: u64 = r.steps.iter().map(|s| s.force).sum();
        let upd: u64 = r.steps.iter().map(|s| s.update).sum();
        let f = &r.final_stats;
        println!(
            "  P{:<2} tree={:>12} part={:>10} force={:>12} upd={:>10} | tlocks={:<5} tlockwait={:<11} tremote={:<7} tfaults={:<6} | locks={:<6} barrwait={:<12} faults={:<8} remote={:<9} local={}",
            r.proc, tree, part, force, upd, r.tree_locks, r.tree_lock_wait, r.tree_remote_misses, r.tree_page_faults, f.lock_acquires, f.barrier_wait, f.page_faults, f.remote_misses, f.local_misses
        );
    }
    println!("per-phase totals (measured steps, counters summed / time maxed):");
    for phase in Phase::ALL {
        let s = stats.phase_stats(phase);
        println!(
            "  {:<9} time={:>12} locks={:<6} lockwait={:<11} barrwait={:<12} remote={:<9} faults={}",
            phase.name(),
            s.time,
            s.lock_acquires,
            s.lock_wait,
            s.barrier_wait,
            s.remote_misses,
            s.page_faults
        );
    }
}
