//! `probe` — run a single (platform, algorithm, n, procs) configuration and
//! dump the full per-phase and per-processor diagnostics. Calibration and
//! debugging aid for the cost models.
//!
//! ```text
//! probe <platform> <algorithm> <n> <procs>
//! ```

use bh_core::prelude::*;
use ssmp::{platform, Machine};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 4 {
        eprintln!("usage: probe <platform|native> <algorithm> <n> <procs>");
        std::process::exit(2);
    }
    let alg = Algorithm::parse(&args[1]).expect("unknown algorithm");
    let n: usize = args[2].parse().expect("n");
    let procs: usize = args[3].parse().expect("procs");
    let bodies = Model::Plummer.generate(n, 1998);
    let cfg = SimConfig::new(alg);

    let stats = if args[0] == "native" {
        let env = NativeEnv::new(procs);
        run_simulation(&env, &cfg, &bodies)
    } else {
        let mut cost = platform::by_name(&args[0], procs).expect("unknown platform");
        // Calibration overrides: PROBE_<FIELD>=value.
        for (key, field) in [
            ("PROBE_NOTICE", &mut cost.t_notice as *mut u64),
            ("PROBE_OCCUPANCY", &mut cost.t_fault_occupancy as *mut u64),
            ("PROBE_FAULT", &mut cost.t_page_fault as *mut u64),
            ("PROBE_CHECK", &mut cost.t_check as *mut u64),
            ("PROBE_TWIN", &mut cost.t_twin as *mut u64),
            ("PROBE_DIFF", &mut cost.t_diff as *mut u64),
            ("PROBE_LOCK_TRANSFER", &mut cost.t_lock_transfer as *mut u64),
            ("PROBE_LOCK", &mut cost.t_lock as *mut u64),
        ] {
            if let Ok(v) = std::env::var(key) {
                unsafe { *field = v.parse().expect(key) };
            }
        }
        let machine = Machine::new(cost, procs);
        run_simulation(&machine, &cfg, &bodies)
    };
    stats.assert_valid();

    println!("platform={} alg={} n={} procs={}", args[0], alg, n, procs);
    println!(
        "total={} tree={} ({:.1}%) force={}",
        stats.total_time(),
        stats.tree_time(),
        100.0 * stats.tree_fraction(),
        stats.force_time(),
    );
    println!("per-proc (measured steps):");
    for r in &stats.procs_records {
        let tree: u64 = r.steps.iter().map(|s| s.tree).sum();
        let part: u64 = r.steps.iter().map(|s| s.partition).sum();
        let force: u64 = r.steps.iter().map(|s| s.force).sum();
        let upd: u64 = r.steps.iter().map(|s| s.update).sum();
        let f = &r.final_stats;
        println!(
            "  P{:<2} tree={:>12} part={:>10} force={:>12} upd={:>10} | tlocks={:<5} tlockwait={:<11} tremote={:<7} tfaults={:<6} | locks={:<6} barrwait={:<12} faults={:<8} remote={:<9} local={}",
            r.proc, tree, part, force, upd, r.tree_locks, r.tree_lock_wait, r.tree_remote_misses, r.tree_page_faults, f.lock_acquires, f.barrier_wait, f.page_faults, f.remote_misses, f.local_misses
        );
    }
}
