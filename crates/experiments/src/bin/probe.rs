//! `probe` — run a single (platform, algorithm, n, procs) configuration and
//! dump the full per-phase and per-processor diagnostics. Calibration and
//! debugging aid for the cost models.
//!
//! ```text
//! probe <platform|native> <algorithm> <n> <procs> [--trace <path>]
//! ```
//!
//! With `--trace`, the run is instrumented with [`TraceEnv`] and a
//! Chrome/Perfetto trace (one track per processor, spans for all four
//! phases plus contended lock acquires) is written to `<path>`, and the
//! trace summary table is printed after the per-processor diagnostics.
//! Native timestamps are wall-clock; simulated ones are platform cycles.

use bh_core::prelude::*;
use ssmp::{platform, CostModel, Machine};

/// Apply one `PROBE_<FIELD>` calibration override to the cost model.
fn set_override(cost: &mut CostModel, key: &str, v: u64) {
    match key {
        "PROBE_NOTICE" => cost.t_notice = v,
        "PROBE_OCCUPANCY" => cost.t_fault_occupancy = v,
        "PROBE_FAULT" => cost.t_page_fault = v,
        "PROBE_CHECK" => cost.t_check = v,
        "PROBE_TWIN" => cost.t_twin = v,
        "PROBE_DIFF" => cost.t_diff = v,
        "PROBE_LOCK_TRANSFER" => cost.t_lock_transfer = v,
        "PROBE_LOCK" => cost.t_lock = v,
        other => unreachable!("unknown probe override {other}"),
    }
}

fn usage() -> ! {
    eprintln!("usage: probe <platform|native> <algorithm> <n> <procs> [--trace <path>]");
    std::process::exit(2);
}

/// Run traced, print the summary, and write the Chrome trace to `path`.
fn run_traced<E: Env>(
    env: E,
    cfg: &SimConfig,
    bodies: &[Body],
    path: &str,
    label: &str,
    unit: &str,
    ts_div: f64,
) -> RunStats {
    let traced = TraceEnv::new(env);
    let stats = run_simulation(&traced, cfg, bodies);
    std::fs::write(path, traced.chrome_trace_json(label, ts_div)).expect("write trace");
    eprintln!("[wrote {path} — open in https://ui.perfetto.dev]");
    println!("{}", traced.summary(unit));
    stats
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    if let Some(at) = args.iter().position(|a| a == "--trace") {
        if at + 1 >= args.len() {
            usage();
        }
        trace_path = Some(args.remove(at + 1));
        args.remove(at);
    }
    if args.len() != 4 {
        usage();
    }
    let alg = Algorithm::parse(&args[1]).expect("unknown algorithm");
    let n: usize = args[2].parse().expect("n");
    let procs: usize = args[3].parse().expect("procs");
    let bodies = Model::Plummer.generate(n, 1998);
    let cfg = SimConfig::new(alg);
    let label = format!("{} {alg}", args[0]);

    let stats = if args[0] == "native" {
        let env = NativeEnv::new(procs);
        match &trace_path {
            // Native timestamps are nanoseconds; /1000 puts them on the
            // trace viewer's microsecond axis.
            Some(path) => run_traced(env, &cfg, &bodies, path, &label, "ns", 1000.0),
            None => run_simulation(&env, &cfg, &bodies),
        }
    } else {
        let mut cost = platform::by_name(&args[0], procs).expect("unknown platform");
        // Calibration overrides: PROBE_<FIELD>=value.
        for key in [
            "PROBE_NOTICE",
            "PROBE_OCCUPANCY",
            "PROBE_FAULT",
            "PROBE_CHECK",
            "PROBE_TWIN",
            "PROBE_DIFF",
            "PROBE_LOCK_TRANSFER",
            "PROBE_LOCK",
        ] {
            if let Ok(v) = std::env::var(key) {
                set_override(&mut cost, key, v.parse().expect(key));
            }
        }
        let machine = Machine::new(cost, procs);
        match &trace_path {
            // Simulated clocks tick in cycles; render one cycle per µs.
            Some(path) => run_traced(machine, &cfg, &bodies, path, &label, "cycles", 1.0),
            None => run_simulation(&machine, &cfg, &bodies),
        }
    };
    stats.assert_valid();

    println!("platform={} alg={} n={} procs={}", args[0], alg, n, procs);
    println!(
        "total={} tree={} ({:.1}%) force={}",
        stats.total_time(),
        stats.tree_time(),
        100.0 * stats.tree_fraction(),
        stats.force_time(),
    );
    println!("per-proc (measured steps):");
    for r in &stats.procs_records {
        let tree: u64 = r.steps.iter().map(|s| s.tree).sum();
        let part: u64 = r.steps.iter().map(|s| s.partition).sum();
        let force: u64 = r.steps.iter().map(|s| s.force).sum();
        let upd: u64 = r.steps.iter().map(|s| s.update).sum();
        let f = &r.final_stats;
        println!(
            "  P{:<2} tree={:>12} part={:>10} force={:>12} upd={:>10} | tlocks={:<5} tlockwait={:<11} tremote={:<7} tfaults={:<6} | locks={:<6} barrwait={:<12} faults={:<8} remote={:<9} local={}",
            r.proc, tree, part, force, upd, r.tree_locks, r.tree_lock_wait, r.tree_remote_misses, r.tree_page_faults, f.lock_acquires, f.barrier_wait, f.page_faults, f.remote_misses, f.local_misses
        );
    }
    println!("per-phase totals (measured steps, counters summed / time maxed):");
    for phase in Phase::ALL {
        let s = stats.phase_stats(phase);
        println!(
            "  {:<9} time={:>12} locks={:<6} lockwait={:<11} barrwait={:<12} remote={:<9} faults={}",
            phase.name(),
            s.time,
            s.lock_acquires,
            s.lock_wait,
            s.barrier_wait,
            s.remote_misses,
            s.page_faults
        );
    }
}
