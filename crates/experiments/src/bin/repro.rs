//! `repro` — regenerate the tables and figures of Shan & Singh (IPPS 1998).
//!
//! ```text
//! repro <experiment|all|matrix> [--scale tiny|small|full] [--jobs <N>]
//!       [--json <path>] [--trace <path>]
//! repro check-json <path>
//! repro check-trace <path>
//!
//! experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 table2
//!              fig12 fig13 fig14 sc442 fig15 treebuild
//! ```
//!
//! `--scale small` (default) runs the paper's problem sizes divided by 8;
//! `--scale full` runs the paper sizes (slow); `--scale tiny` is a smoke
//! test. Results are printed as text tables; `--json` additionally writes a
//! machine-readable record.
//!
//! `matrix` runs every *cached* experiment (everything except `treebuild`,
//! whose native wall timings are intentionally nondeterministic).
//!
//! `--jobs N` prewarms the run caches with the sweep scheduler: the
//! deduplicated (platform, algorithm, n, procs) job list is executed across
//! N scheduler threads, then the tables are generated serially from the
//! caches. The scheduler changes wall-clock time only, never which
//! configurations are computed. Single-processor experiments (`table1`) are
//! bitwise deterministic, so their output is byte-identical across any
//! `--jobs` setting; multi-processor simulated timings carry run-to-run
//! jitter (real thread interleaving feeds the contention model), for which
//! `check-same` verifies structural equality of two documents.
//!
//! The `treebuild` experiment (also part of `all`) instruments every
//! algorithm with `TraceEnv` on both a native machine and a simulated
//! Origin2000, emits `BENCH_<scale>.json` with per-algorithm tree-build
//! metrics, and — with `--trace <path>` — writes a Chrome/Perfetto trace
//! with one track per processor.
//!
//! `check-json` / `check-trace` validate previously emitted documents; the
//! pre-merge gate uses them as schema sanity checks.
//!
//! `bench-diff <baseline> <fresh>` compares two BENCH documents record by
//! record (matched on algorithm and scale) and exits non-zero when a native
//! timing regresses by more than `--max-regress` (default 0.25 = 25%); the
//! pre-merge gate diffs a freshly generated BENCH_small.json against the
//! committed one.
//!
//! `verify` runs the schedule-exploration verification matrix: every tree
//! algorithm on a tiny workload under the controlled scheduler stacked with
//! the dynamic race detector, across round-robin plus `--seeds` seeded
//! schedules per processor count (`--procs`, default 2). `--exhaustive`
//! adds a bounded-exhaustive plan; `--self-test` instead re-introduces a
//! known publication-order bug behind a mutation flag and requires the
//! explorer to find it. Non-zero exit on any non-certified cell, with a
//! counterexample report (finding, schedule id, trace tail) for each.

use bh_experiments::cliargs;
use bh_experiments::experiments;
use bh_experiments::json::Json;
use bh_experiments::report;
use bh_experiments::runner::ExperimentScale;
use bh_experiments::sweep;
use std::collections::{HashMap, HashSet};
use std::io::Write;

fn usage_text() -> String {
    format!(
        "usage: repro <experiment|all|matrix> [--scale {}] [--jobs <N>] [--json <path>] [--trace <path>] [--group-size <N>]\n\
         \x20      repro report [--scale <scale>] [--json <path>]\n\
         \x20      repro verify [--seeds <N>] [--procs <p,q,..>] [--exhaustive] [--self-test]\n\
         \x20      repro check-json <path>\n\
         \x20      repro check-trace <path>\n\
         \x20      repro check-same <a> <b>\n\
         \x20      repro bench-diff <baseline> <fresh> [--max-regress <fraction>]\n\
         \x20      repro bench-serve [--scale <scale>] [--connect unix:<path>|tcp:<addr>]\n\
         \x20            [--tenants <N>] [--jobs <N/tenant>] [--workers <N>] [--queue-cap <N>]\n\
         \x20            [--engines <N>] [--mode closed|open] [--rate <jobs/s>] [--window <N>]\n\
         \x20            [--burst <N>] [--expect-backpressure] [--shutdown] [--out <path>]\n\
         experiments: {}",
        ExperimentScale::NAMES.join("|"),
        experiments::EXPERIMENT_NAMES.join(" ")
    )
}

/// Print a specific diagnostic plus the usage banner, then exit non-zero.
fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        die("missing experiment name");
    }

    // Validation subcommands: exercise the JSON reader against emitted files.
    match args[0].as_str() {
        "check-json" => {
            let path = args
                .get(1)
                .unwrap_or_else(|| die("check-json needs a <path>"));
            check_json(path);
            return;
        }
        "check-trace" => {
            let path = args
                .get(1)
                .unwrap_or_else(|| die("check-trace needs a <path>"));
            check_trace(path);
            return;
        }
        "check-same" => {
            let a = args
                .get(1)
                .unwrap_or_else(|| die("check-same needs <a> <b>"));
            let b = args
                .get(2)
                .unwrap_or_else(|| die("check-same needs <a> <b>"));
            check_same(a, b);
            return;
        }
        "verify" => {
            verify(&args[1..]);
            return;
        }
        "bench-diff" => {
            let baseline = args
                .get(1)
                .unwrap_or_else(|| die("bench-diff needs <baseline> <fresh>"));
            let fresh = args
                .get(2)
                .unwrap_or_else(|| die("bench-diff needs <baseline> <fresh>"));
            let mut max_regress = 0.25;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--max-regress" => {
                        i += 1;
                        let v: f64 = cliargs::parse_value(
                            "--max-regress",
                            args.get(i).map(String::as_str),
                            "a fraction >= 0",
                        )
                        .unwrap_or_else(|e| die(&e));
                        if v < 0.0 {
                            die(&format!(
                                "invalid --max-regress '{}' (expected a fraction >= 0)",
                                args[i]
                            ));
                        }
                        max_regress = v;
                    }
                    extra => die(&format!("unexpected argument '{extra}'")),
                }
                i += 1;
            }
            bench_diff(baseline, fresh, max_regress);
            return;
        }
        "bench-serve" => {
            bench_serve_cmd(&args[1..]);
            return;
        }
        _ => {}
    }

    let mut which: Option<String> = None;
    let mut scale = ExperimentScale::Small;
    let mut jobs = 1usize;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut group_size: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = cliargs::parse_min(
                    "--jobs",
                    args.get(i).map(String::as_str),
                    1,
                    "an integer >= 1",
                )
                .unwrap_or_else(|e| die(&e));
            }
            "--scale" => {
                i += 1;
                scale = cliargs::parse_scale("--scale", args.get(i).map(String::as_str))
                    .unwrap_or_else(|e| die(&e));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    cliargs::require_value("--json", args.get(i).map(String::as_str), "a path")
                        .map(str::to_string)
                        .unwrap_or_else(|e| die(&e)),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    cliargs::require_value("--trace", args.get(i).map(String::as_str), "a path")
                        .map(str::to_string)
                        .unwrap_or_else(|e| die(&e)),
                );
            }
            "--group-size" => {
                i += 1;
                group_size = Some(
                    cliargs::parse_value(
                        "--group-size",
                        args.get(i).map(String::as_str),
                        "integer >= 0; 0 = per-body walk",
                    )
                    .unwrap_or_else(|e| die(&e)),
                );
            }
            flag if flag.starts_with("--") => die(&format!("unrecognized flag '{flag}'")),
            other if which.is_none() => which = Some(other.to_string()),
            extra => die(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| die("missing experiment name"));
    if group_size.is_some() && !matches!(which.as_str(), "all" | "treebuild" | "tb") {
        die("--group-size only affects the 'treebuild' experiment (or 'all')");
    }

    // The scaling/analysis report: communication-by-data-structure breakdown
    // (attribution-enabled runs), speedup/efficiency curves over a processor
    // sweep with crossover points, and repeat-aware per-step summaries.
    // Emits REPORT_<scale>.json alongside the text tables; `check-json`
    // validates it against the report schemas.
    if which == "report" {
        if trace_path.is_some() {
            die("--trace is only produced by the 'treebuild' experiment (or 'all')");
        }
        let t0 = std::time::Instant::now();
        let r = bh_experiments::report::scaling_report(scale);
        for t in &r.tables {
            println!("{t}");
        }
        let report_path = format!("REPORT_{}.json", scale.name());
        std::fs::write(&report_path, &r.json).expect("write report json");
        eprintln!(
            "[wrote {report_path} ({} table(s)) in {:.1}s]",
            r.tables.len(),
            t0.elapsed().as_secs_f64()
        );
        if let Some(path) = json_path {
            let objects: Vec<String> = r
                .tables
                .iter()
                .map(|t| format!("  {}", t.to_json()))
                .collect();
            let mut f = std::fs::File::create(&path).expect("create json output");
            writeln!(f, "[\n{}\n]", objects.join(",\n")).expect("write json");
            eprintln!("[wrote {path}]");
        }
        return;
    }

    // Prewarm the run caches with the sweep scheduler; the serial table
    // generation below then only performs lookups. Progress goes to stderr
    // so the emitted documents stay byte-identical to a --jobs 1 run.
    if jobs > 1 {
        let sched = if which == "all" || which == "matrix" {
            Some(sweep::all_jobs(scale))
        } else {
            sweep::jobs_for(&which, scale)
        };
        if let Some(sched) = sched {
            let t = std::time::Instant::now();
            let count = sched.run(jobs);
            eprintln!(
                "[sweep: {count} job(s) across {jobs} scheduler thread(s) in {:.1}s]",
                t.elapsed().as_secs_f64()
            );
        }
    }

    let t0 = std::time::Instant::now();
    let mut tables = Vec::new();
    let mut report = None;
    if which == "all" || which == "matrix" {
        tables = experiments::all_experiments(scale);
    }
    if which == "all" || which == "treebuild" || which == "tb" {
        let r = experiments::treebuild_with(scale, group_size);
        tables.push(r.table.clone());
        report = Some(r);
    } else if which != "matrix" {
        match experiments::by_name(&which, scale) {
            Some(t) => tables.push(t),
            None => die(&format!(
                "unknown experiment '{which}' (valid: all, matrix, report, {})",
                experiments::EXPERIMENT_NAMES.join(", ")
            )),
        }
    }
    for t in &tables {
        println!("{t}");
    }
    eprintln!(
        "[{} experiment(s) in {:.1}s]",
        tables.len(),
        t0.elapsed().as_secs_f64()
    );

    if let Some(r) = &report {
        let bench_path = format!("BENCH_{}.json", scale.name());
        std::fs::write(&bench_path, &r.bench_json).expect("write bench json");
        eprintln!("[wrote {bench_path}]");
        if let Some(path) = &trace_path {
            std::fs::write(path, &r.trace_json).expect("write trace json");
            eprintln!("[wrote {path} — open in https://ui.perfetto.dev]");
        }
    } else if trace_path.is_some() {
        die("--trace is only produced by the 'treebuild' experiment (or 'all')");
    }

    if let Some(path) = json_path {
        let objects: Vec<String> = tables
            .iter()
            .map(|t| format!("  {}", t.to_json()))
            .collect();
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(f, "[\n{}\n]", objects.join(",\n")).expect("write json");
        eprintln!("[wrote {path}]");
    }
}

/// `repro verify` — run the schedule-exploration verification matrix: every
/// algorithm under the controlled scheduler + race detector, across a set of
/// schedules per (algorithm, procs, strategy) cell. Prints one row per cell
/// and a full counterexample report (schedule id, finding, trace tail) for
/// any defect; exits non-zero unless every cell certifies.
fn verify(args: &[String]) {
    use bh_core::prelude::*;
    use bh_core::sched::{mutation, selftest};

    let mut seeds = 10usize;
    let mut procs: Vec<usize> = vec![2];
    let mut exhaustive = false;
    let mut self_test = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds =
                    cliargs::parse_value("--seeds", args.get(i).map(String::as_str), "an integer")
                        .unwrap_or_else(|e| die(&e));
            }
            "--procs" => {
                i += 1;
                let v = cliargs::require_value(
                    "--procs",
                    args.get(i).map(String::as_str),
                    "a comma-separated list like 2,4",
                )
                .unwrap_or_else(|e| die(&e));
                procs = v
                    .split(',')
                    .map(|p| {
                        p.parse::<usize>()
                            .ok()
                            .filter(|p| (1..=8).contains(p))
                            .unwrap_or_else(|| {
                                die(&format!("invalid --procs entry '{p}' (expected 1..=8)"))
                            })
                    })
                    .collect();
            }
            "--exhaustive" => exhaustive = true,
            "--self-test" => self_test = true,
            extra => die(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }

    if self_test {
        // Prove the stack detects a known bug: re-introduce the
        // publication-order mutation and require a data-race counterexample.
        println!("verify --self-test: publication-order mutation kernel");
        let clean = selftest::explore_publication_kernel();
        mutation::set_early_forward_flush(true);
        let mutant = selftest::explore_publication_kernel();
        mutation::set_early_forward_flush(false);
        println!(
            "  baseline: {} schedule(s), {} defect(s), complete={}",
            clean.schedules, clean.defects, clean.complete
        );
        println!(
            "  mutant:   {} schedule(s), {} defect(s)",
            mutant.schedules, mutant.defects
        );
        if let Some(ce) = mutant.counterexamples.first() {
            print!("{ce}");
        }
        if !(clean.certified() && clean.complete) {
            eprintln!("verify: FAILED — baseline kernel did not certify");
            std::process::exit(1);
        }
        if mutant.defects == 0 {
            eprintln!("verify: FAILED — mutation survived undetected: the explorer has regressed");
            std::process::exit(1);
        }
        println!("verify --self-test: OK (mutation detected, baseline certified)");
        return;
    }

    let mut spec = MatrixSpec::fast(seeds);
    spec.procs = procs;
    if exhaustive {
        spec.plans.push(ExplorePlan::Exhaustive {
            preemption_bound: 1,
            max_schedules: 400,
        });
    }

    let t0 = std::time::Instant::now();
    let cells = bh_core::sched::verify_matrix(&spec);
    println!(
        "{:<8} {:>5}  {:<16} {:>9} {:>7} {:>9} {:>10}  result",
        "algo", "procs", "plan", "schedules", "defects", "decisions", "max-ops"
    );
    let mut failed = 0usize;
    for cell in &cells {
        let e = &cell.exploration;
        let result = if e.certified() { "ok" } else { "FAIL" };
        println!(
            "{:<8} {:>5}  {:<16} {:>9} {:>7} {:>9} {:>10}  {}",
            format!("{:?}", cell.algorithm),
            cell.procs,
            cell.plan,
            e.schedules,
            e.defects,
            e.max_decisions,
            e.max_ops,
            result
        );
        if !e.certified() {
            failed += 1;
            for ce in &e.counterexamples {
                print!("{ce}");
            }
            if !e.lock_cycles.is_empty() {
                println!("  lock-order cycles: {:?}", e.lock_cycles);
            }
        }
    }
    let schedules: usize = cells.iter().map(|c| c.exploration.schedules).sum();
    eprintln!(
        "[{} cell(s), {} schedule(s) in {:.1}s]",
        cells.len(),
        schedules,
        t0.elapsed().as_secs_f64()
    );
    if failed > 0 {
        eprintln!("verify: FAILED — {failed} cell(s) did not certify");
        std::process::exit(1);
    }
    println!("verify: OK — all {} cell(s) certified", cells.len());
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Numeric fields every treebuild BENCH record must carry.
const TREEBUILD_FIELDS: [&str; 19] = [
    "n",
    "procs",
    "tree_cycles",
    "total_cycles",
    "tree_lock_acquires",
    "tree_lock_wait_cycles",
    "barrier_wait_cycles",
    "remote_misses",
    "page_faults",
    "lock_ids",
    "tree_imbalance",
    "flatten_cycles",
    "sort_cycles",
    "force_cycles",
    "list_len",
    "list_reuse",
    "native_tree_ns",
    "native_total_ns",
    "native_force_ns",
];

/// Required fields of the `serve_*` records `repro bench-serve` emits:
/// (experiment name, string fields, numeric fields).
const SERVE_SCHEMAS: [(&str, &[&str], &[&str]); 4] = [
    (
        "serve_latency",
        &["tenant", "mode"],
        &[
            "jobs",
            "ok",
            "rejected",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "throughput_jps",
        ],
    ),
    (
        "serve_queue",
        &[],
        &[
            "depth_p50",
            "depth_p99",
            "depth_max",
            "capacity",
            "rejected_total",
        ],
    ),
    (
        "serve_cache",
        &[],
        &["hits", "misses", "evictions", "hit_rate"],
    ),
    ("serve_tenant", &["tenant"], &["served", "rejected"]),
];

/// Validate an experiment-table, BENCH or REPORT document: well-formed
/// JSON, a non-empty array of objects; treebuild metric records must carry
/// the full numeric schema (including the load-imbalance and flatten
/// metrics); `serve_*` records from `bench-serve` must match
/// [`SERVE_SCHEMAS`]; `report_*` records are validated against
/// [`bh_experiments::report::REPORT_SCHEMAS`], and the `report_comm`
/// breakdown is re-checked for the tiling property from the document alone:
/// per-region rows must sum exactly to their configuration's "total" row.
fn check_json(path: &str) {
    let doc = load(path);
    let items = doc
        .as_array()
        .unwrap_or_else(|| die(&format!("{path}: top level is not an array")));
    if items.is_empty() {
        die(&format!("{path}: empty document"));
    }
    // (platform, algorithm) -> (sum of region rows, total row), per metric.
    let mut comm_sums: HashMap<(String, String), [f64; 2]> = HashMap::new();
    let mut comm_totals: HashMap<(String, String), [f64; 2]> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        // Table dumps carry "id"; BENCH metric records carry "experiment".
        if item.get("experiment").is_none() && item.get("id").is_none() {
            die(&format!(
                "{path}: record {i} has neither an \"experiment\" nor an \"id\" field"
            ));
        }
        let experiment = item.get("experiment").and_then(Json::as_str);
        if experiment == Some("treebuild") {
            if item.get("algorithm").and_then(Json::as_str).is_none() {
                die(&format!("{path}: treebuild record {i} lacks \"algorithm\""));
            }
            for field in TREEBUILD_FIELDS {
                if item.get(field).and_then(Json::as_f64).is_none() {
                    die(&format!(
                        "{path}: treebuild record {i} lacks numeric \"{field}\""
                    ));
                }
            }
        }
        if let Some((name, strs, nums)) =
            experiment.and_then(|e| SERVE_SCHEMAS.iter().find(|(name, _, _)| *name == e))
        {
            for field in *strs {
                if item.get(field).and_then(Json::as_str).is_none() {
                    die(&format!(
                        "{path}: {name} record {i} lacks string \"{field}\""
                    ));
                }
            }
            for field in *nums {
                if item.get(field).and_then(Json::as_f64).is_none() {
                    die(&format!(
                        "{path}: {name} record {i} lacks numeric \"{field}\""
                    ));
                }
            }
        }
        if experiment.is_some_and(|e| e.starts_with("report_")) {
            if let Err(e) = report::validate_report_record(item) {
                die(&format!("{path}: record {i}: {e}"));
            }
        }
        if experiment == Some("report_comm") {
            let key = (
                item.get("platform")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
                item.get("algorithm")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
            let metrics = [
                item.get("remote_misses").and_then(Json::as_f64).unwrap(),
                item.get("lock_wait_cycles").and_then(Json::as_f64).unwrap(),
            ];
            if item.get("region").and_then(Json::as_str) == Some("total") {
                comm_totals.insert(key, metrics);
            } else {
                let e = comm_sums.entry(key).or_default();
                e[0] += metrics[0];
                e[1] += metrics[1];
            }
        }
    }
    for (key, total) in &comm_totals {
        let sum = comm_sums.get(key).copied().unwrap_or_default();
        if sum != *total {
            die(&format!(
                "{path}: report_comm rows for {}/{} do not tile the total \
                 (regions sum to {:?}, total says {:?})",
                key.0, key.1, sum, total
            ));
        }
    }
    println!("{path}: OK ({} record(s))", items.len());
}

/// Verify two experiment-table documents describe the same report: equal
/// table ids, titles, headers, row counts and row labels (first column).
/// This is the cross-`--jobs` matrix gate: numeric cells of multi-processor
/// simulated runs jitter run to run, but the *structure* — which
/// experiments, configurations and series were computed — must be invariant
/// under the sweep scheduler.
fn check_same(path_a: &str, path_b: &str) {
    let a = load(path_a);
    let b = load(path_b);
    let tables_a = a
        .as_array()
        .unwrap_or_else(|| die(&format!("{path_a}: top level is not an array")));
    let tables_b = b
        .as_array()
        .unwrap_or_else(|| die(&format!("{path_b}: top level is not an array")));
    if tables_a.len() != tables_b.len() {
        die(&format!(
            "{path_a} has {} table(s) but {path_b} has {}",
            tables_a.len(),
            tables_b.len()
        ));
    }
    let str_field = |t: &Json, field: &str, path: &str, i: usize| -> String {
        t.get(field)
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("{path}: table {i} lacks \"{field}\"")))
            .to_string()
    };
    let rows_of = |t: &Json, path: &str, i: usize| -> Vec<Vec<String>> {
        t.get("rows")
            .and_then(Json::as_array)
            .unwrap_or_else(|| die(&format!("{path}: table {i} lacks \"rows\"")))
            .iter()
            .map(|r| {
                r.as_array()
                    .unwrap_or_else(|| die(&format!("{path}: table {i} has a non-array row")))
                    .iter()
                    .map(|c| c.as_str().unwrap_or("").to_string())
                    .collect()
            })
            .collect()
    };
    for (i, (ta, tb)) in tables_a.iter().zip(tables_b).enumerate() {
        for field in ["id", "title"] {
            let (va, vb) = (
                str_field(ta, field, path_a, i),
                str_field(tb, field, path_b, i),
            );
            if va != vb {
                die(&format!("table {i}: {field} differs: \"{va}\" vs \"{vb}\""));
            }
        }
        let id = str_field(ta, "id", path_a, i);
        if ta.get("headers") != tb.get("headers") {
            die(&format!("{id}: headers differ"));
        }
        let (ra, rb) = (rows_of(ta, path_a, i), rows_of(tb, path_b, i));
        if ra.len() != rb.len() {
            die(&format!("{id}: {} row(s) vs {}", ra.len(), rb.len()));
        }
        for (j, (rowa, rowb)) in ra.iter().zip(&rb).enumerate() {
            if rowa.len() != rowb.len() {
                die(&format!("{id} row {j}: column counts differ"));
            }
            if rowa.first() != rowb.first() {
                die(&format!(
                    "{id} row {j}: label differs: {:?} vs {:?}",
                    rowa.first(),
                    rowb.first()
                ));
            }
        }
    }
    println!(
        "{path_a} and {path_b}: same report structure ({} table(s))",
        tables_a.len()
    );
}

/// Key identifying a treebuild record across two BENCH documents.
fn bench_key(r: &Json) -> Option<(String, String, String)> {
    Some((
        r.get("experiment").and_then(Json::as_str)?.to_string(),
        r.get("scale").and_then(Json::as_str)?.to_string(),
        r.get("algorithm").and_then(Json::as_str)?.to_string(),
    ))
}

/// Per-metric comparison spec for `bench-diff`: metric name and whether a
/// regression beyond the threshold fails the gate. The native wall timings
/// gate (they measure this machine, and run-to-run noise is why the
/// threshold is a tolerance rather than equality). The simulated metrics
/// are compared and printed but informational: multi-processor simulated
/// timings carry real run-to-run jitter (host thread interleaving feeds
/// the contention model), so gating them would flake.
const DIFF_METRICS: [(&str, bool); 8] = [
    ("tree_cycles", false),
    ("flatten_cycles", false),
    ("sort_cycles", false),
    ("force_cycles", false),
    ("barrier_wait_cycles", false),
    ("native_tree_ns", true),
    ("native_total_ns", true),
    ("native_force_ns", true),
];

/// Compare two BENCH documents metric by metric (records matched on
/// algorithm and scale) and exit 1 when a fresh *gated* metric is more than
/// `max_regress` (fraction) above the baseline for any algorithm. See
/// [`DIFF_METRICS`] for which metrics gate and which are informational.
fn bench_diff(baseline_path: &str, fresh_path: &str, max_regress: f64) {
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let base_items = baseline
        .as_array()
        .unwrap_or_else(|| die(&format!("{baseline_path}: top level is not an array")));
    let fresh_items = fresh
        .as_array()
        .unwrap_or_else(|| die(&format!("{fresh_path}: top level is not an array")));

    let mut fresh_by_key: HashMap<(String, String, String), &Json> = HashMap::new();
    for r in fresh_items {
        if let Some(k) = bench_key(r) {
            fresh_by_key.insert(k, r);
        }
    }

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for b in base_items {
        let Some(key) = bench_key(b) else { continue };
        let Some(f) = fresh_by_key.get(&key) else {
            eprintln!(
                "bench-diff: {}/{}/{} present in baseline but missing from {fresh_path}",
                key.0, key.1, key.2
            );
            regressions += 1;
            continue;
        };
        for (metric, gated) in DIFF_METRICS {
            let old = b.get(metric).and_then(Json::as_f64);
            let new = f.get(metric).and_then(Json::as_f64);
            let (Some(old), Some(new)) = (old, new) else {
                continue;
            };
            if old <= 0.0 {
                continue;
            }
            let ratio = new / old;
            let marker = if ratio > 1.0 + max_regress {
                if gated {
                    regressions += 1;
                    "  <-- REGRESSION"
                } else {
                    "  (info: over threshold, not gated)"
                }
            } else if gated {
                ""
            } else {
                "  (info)"
            };
            println!(
                "{:8} {:20} {:>14.0} -> {:>14.0}  ({:+6.1}%){}",
                key.2,
                metric,
                old,
                new,
                (ratio - 1.0) * 100.0,
                marker
            );
            if gated {
                compared += 1;
            }
        }
    }
    if compared == 0 {
        die(&format!(
            "bench-diff: no comparable records between {baseline_path} and {fresh_path}"
        ));
    }
    if regressions > 0 {
        eprintln!(
            "bench-diff: {regressions} metric(s) regressed by more than {:.0}%",
            max_regress * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench-diff: OK ({compared} metric(s) within {:.0}% of {baseline_path})",
        max_regress * 100.0
    );
}

/// `repro bench-serve`: drive a job server with a multi-tenant load mix
/// and write `serve_*` records. Self-hosts on a temp unix socket unless
/// `--connect` points at a running `serve` binary. Non-zero exit on any
/// failed job, digest mismatch, or (with `--expect-backpressure`) a burst
/// that never saw `queue_full`.
fn bench_serve_cmd(args: &[String]) {
    use bh_experiments::bench_serve::{run_bench, BenchServeOpts};
    let mut opts = BenchServeOpts::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i).map(String::as_str);
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = cliargs::parse_scale("--scale", value(i)).unwrap_or_else(|e| die(&e));
            }
            "--connect" => {
                i += 1;
                let s = cliargs::require_value("--connect", value(i), "unix:<path> or tcp:<addr>")
                    .unwrap_or_else(|e| die(&e));
                opts.connect =
                    Some(bh_serve::transport::Endpoint::parse(s).unwrap_or_else(|e| die(&e)));
            }
            "--tenants" => {
                i += 1;
                opts.tenants = cliargs::parse_min("--tenants", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--jobs" => {
                i += 1;
                opts.jobs = cliargs::parse_min("--jobs", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--workers" => {
                i += 1;
                opts.workers = cliargs::parse_min("--workers", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--queue-cap" => {
                i += 1;
                opts.queue_cap = cliargs::parse_min("--queue-cap", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--engines" => {
                i += 1;
                opts.engines = cliargs::parse_min("--engines", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--mode" => {
                i += 1;
                match cliargs::require_value("--mode", value(i), "closed or open")
                    .unwrap_or_else(|e| die(&e))
                {
                    "closed" => opts.open_loop = false,
                    "open" => opts.open_loop = true,
                    other => die(&format!(
                        "invalid --mode '{other}' (expected closed or open)"
                    )),
                }
            }
            "--rate" => {
                i += 1;
                let v: f64 = cliargs::parse_value("--rate", value(i), "jobs per second > 0")
                    .unwrap_or_else(|e| die(&e));
                if v <= 0.0 {
                    die(&format!(
                        "invalid --rate '{}' (expected jobs per second > 0)",
                        args[i]
                    ));
                }
                opts.rate = v;
            }
            "--window" => {
                i += 1;
                opts.window = cliargs::parse_min("--window", value(i), 1, "an integer >= 1")
                    .unwrap_or_else(|e| die(&e));
            }
            "--burst" => {
                i += 1;
                opts.burst = cliargs::parse_value("--burst", value(i), "an integer >= 0")
                    .unwrap_or_else(|e| die(&e));
            }
            "--out" => {
                i += 1;
                let s =
                    cliargs::require_value("--out", value(i), "a path").unwrap_or_else(|e| die(&e));
                opts.out_path = Some(s.into());
            }
            "--expect-backpressure" => opts.expect_backpressure = true,
            "--shutdown" => opts.shutdown = true,
            extra => die(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    match run_bench(&opts) {
        Ok(path) => eprintln!("[wrote {path}]"),
        Err(msg) => {
            eprintln!("repro: bench-serve: {msg}");
            std::process::exit(1);
        }
    }
}

/// Validate a Chrome trace-event document: well-formed JSON, nonzero
/// complete-event spans, every declared process has one thread track per
/// processor (the `num_procs` metadata arg), and all four phases appear.
fn check_trace(path: &str) {
    let doc = load(path);
    let events = doc
        .as_array()
        .unwrap_or_else(|| die(&format!("{path}: top level is not an array")));

    let mut declared_procs: HashMap<i64, f64> = HashMap::new();
    let mut tids_by_pid: HashMap<i64, HashSet<i64>> = HashMap::new();
    let mut span_count = 0usize;
    let mut phases_seen: HashSet<String> = HashSet::new();
    for e in events {
        let pid = e.get("pid").and_then(Json::as_f64).map(|p| p as i64);
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                let pid = pid.unwrap_or_else(|| die(&format!("{path}: metadata without pid")));
                if e.get("name").and_then(Json::as_str) == Some("process_name") {
                    let n = e
                        .get("args")
                        .and_then(|a| a.get("num_procs"))
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| die(&format!("{path}: process {pid} lacks num_procs")));
                    declared_procs.insert(pid, n);
                }
                if e.get("name").and_then(Json::as_str) == Some("thread_name") {
                    let tid = e.get("tid").and_then(Json::as_f64).map(|t| t as i64);
                    tids_by_pid.entry(pid).or_default().extend(tid);
                }
            }
            Some("X") => {
                span_count += 1;
                if let Some(name) = e.get("name").and_then(Json::as_str) {
                    if !name.starts_with("lock ") {
                        phases_seen.insert(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }

    if span_count == 0 {
        die(&format!("{path}: no complete-event spans"));
    }
    if declared_procs.is_empty() {
        die(&format!("{path}: no process_name metadata"));
    }
    for (pid, n) in &declared_procs {
        let tracks = tids_by_pid.get(pid).map_or(0, HashSet::len);
        if tracks != *n as usize {
            die(&format!(
                "{path}: process {pid} declares {n} processors but has {tracks} thread track(s)"
            ));
        }
    }
    for phase in ["tree", "partition", "force", "update"] {
        if !phases_seen.contains(phase) {
            die(&format!("{path}: no '{phase}' phase spans"));
        }
    }
    println!(
        "{path}: OK ({span_count} span(s), {} process track(s))",
        declared_procs.len()
    );
}
