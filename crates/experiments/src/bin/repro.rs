//! `repro` — regenerate the tables and figures of Shan & Singh (IPPS 1998).
//!
//! ```text
//! repro <experiment|all> [--scale tiny|small|full] [--json <path>]
//!
//! experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 table2
//!              fig12 fig13 fig14 sc442 fig15
//! ```
//!
//! `--scale small` (default) runs the paper's problem sizes divided by 8;
//! `--scale full` runs the paper sizes (slow); `--scale tiny` is a smoke
//! test. Results are printed as text tables; `--json` additionally writes a
//! machine-readable record.

use bh_experiments::experiments;
use bh_experiments::runner::ExperimentScale;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--scale tiny|small|full] [--json <path>]\n\
         experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 table2 fig12 fig13 fig14 sc442 fig15"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which: Option<String> = None;
    let mut scale = ExperimentScale::Small;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| ExperimentScale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            other if which.is_none() => which = Some(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| usage());

    let t0 = std::time::Instant::now();
    let tables = if which == "all" {
        experiments::all_experiments(scale)
    } else {
        match experiments::by_name(&which, scale) {
            Some(t) => vec![t],
            None => usage(),
        }
    };
    for t in &tables {
        println!("{t}");
    }
    eprintln!(
        "[{} experiment(s) in {:.1}s]",
        tables.len(),
        t0.elapsed().as_secs_f64()
    );

    if let Some(path) = json_path {
        let objects: Vec<String> = tables
            .iter()
            .map(|t| format!("  {}", t.to_json()))
            .collect();
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(f, "[\n{}\n]", objects.join(",\n")).expect("write json");
        eprintln!("[wrote {path}]");
    }
}
