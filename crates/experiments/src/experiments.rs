//! One function per table/figure of the paper's evaluation (§4).
//!
//! Every function regenerates the rows/series the paper reports, at a
//! configurable problem scale. Runs are memoized within a process so that
//! figures sharing configurations (e.g. Figures 8 and 9) reuse them.

use crate::runner::{run_on_platform, seq_time_on_platform, ExperimentScale, PlatformRun};
use crate::tables::{fmt_pct, fmt_speedup, Table};
use bh_core::prelude::*;
use bh_core::sync::Mutex;
use ssmp::{platform, CostModel};
use std::collections::HashMap;

type RunKey = (String, Algorithm, usize, usize);
static RUN_CACHE: Mutex<Option<HashMap<RunKey, PlatformRun>>> = Mutex::new(None);

fn run_cached(cost: &CostModel, alg: Algorithm, n: usize, procs: usize) -> PlatformRun {
    let key = (cost.name.clone(), alg, n, procs);
    if let Some(hit) = RUN_CACHE.lock().get_or_insert_with(HashMap::new).get(&key) {
        return hit.clone();
    }
    let run = run_on_platform(cost, alg, n, procs);
    RUN_CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(key, run.clone());
    run
}

const ALGS: [Algorithm; 5] = [
    Algorithm::Orig,
    Algorithm::Local,
    Algorithm::Update,
    Algorithm::Partree,
    Algorithm::Space,
];

fn alg_headers(first: &str) -> Vec<String> {
    let mut h = vec![first.to_string()];
    h.extend(ALGS.iter().map(|a| a.name().to_string()));
    h
}

fn speedup_table(
    id: &str,
    title: &str,
    cost: &CostModel,
    sizes: &[usize],
    procs: usize,
    expectation: &str,
) -> Table {
    let mut t = Table::new(id, title, &[], expectation);
    t.headers = alg_headers("particles");
    for &n in sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(cost, alg, n, procs).speedup));
        }
        t.rows.push(row);
    }
    t
}

fn tree_pct_table(
    id: &str,
    title: &str,
    cost: &CostModel,
    n: usize,
    procs: &[usize],
    expectation: &str,
) -> Table {
    let mut t = Table::new(id, title, &[], expectation);
    t.headers = alg_headers("procs");
    for &p in procs {
        let mut row = vec![p.to_string()];
        for alg in ALGS {
            row.push(fmt_pct(run_cached(cost, alg, n, p).tree_fraction));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Table 1: best sequential time on the four platforms
// --------------------------------------------------------------------------

pub fn table1(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let platforms = [
        platform::origin2000(1),
        platform::challenge(1),
        platform::typhoon0_hlrc(1),
        platform::paragon_hlrc(1),
    ];
    let mut t = Table::new(
        "Table 1",
        "Best sequential time (seconds, 2 steps) per platform",
        &[],
        "Origin fastest, Challenge ~2.5x slower, Typhoon-0 and Paragon much slower; time grows ~NlogN",
    );
    t.headers = vec!["platform".to_string()];
    t.headers.extend(sizes.iter().map(|n| n.to_string()));
    for cost in &platforms {
        let mut row = vec![cost.name.clone()];
        for &n in &sizes {
            let (cycles, _) = seq_time_on_platform(cost, n);
            row.push(format!("{:.2}", cost.cycles_to_seconds(cycles)));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Figures 6-7: SGI Challenge
// --------------------------------------------------------------------------

pub fn fig6(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    speedup_table(
        "Figure 6",
        &format!("Speedups on SGI Challenge, {procs} processors"),
        &platform::challenge(procs),
        &sizes,
        procs,
        "all five algorithms between ~12 and ~15 on 16 procs; LOCAL best, ORIG worst by a little",
    )
}

pub fn fig7(scale: ExperimentScale) -> Table {
    let n = scale.size(131072);
    let procs: Vec<usize> = [4, 8, 16].iter().map(|&p| scale.procs(p)).collect();
    tree_pct_table(
        "Figure 7",
        &format!("Tree-building cost on SGI Challenge, {n} particles (% of total time)"),
        &platform::challenge(16),
        n,
        &procs,
        "small for the good algorithms (LOCAL/UPDATE/PARTREE/SPACE), larger for ORIG, growing with processors",
    )
}

// --------------------------------------------------------------------------
// Figures 8-11, Table 2: SGI Origin 2000
// --------------------------------------------------------------------------

pub fn fig8(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(30);
    speedup_table(
        "Figure 8",
        &format!("Speedups on SGI Origin 2000, {procs} processors"),
        &platform::origin2000(procs),
        &sizes,
        procs,
        "LOCAL/UPDATE/PARTREE close together and best, scaling with data size; SPACE slightly behind; big gap to ORIG",
    )
}

pub fn fig9(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(30);
    let cost = platform::origin2000(procs);
    let mut t = Table::new(
        "Figure 9",
        &format!("Tree-building phase speedups on Origin 2000, {procs} processors"),
        &[],
        "same relative ordering as Figure 8 but much lower absolute speedups",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, procs).tree_speedup));
        }
        t.rows.push(row);
    }
    t
}

pub fn fig10(scale: ExperimentScale) -> Table {
    let n = scale.size(524288);
    let procs: Vec<usize> = [16, 24, 30].iter().map(|&p| scale.procs(p)).collect();
    let mut t = Table::new(
        "Figure 10",
        &format!("Speedups on Origin 2000 vs processor count, {n} particles"),
        &[],
        "LOCAL/UPDATE/PARTREE scale well with processors (LOCAL best), SPACE a little worse, ORIG far behind",
    );
    t.headers = alg_headers("procs");
    for &p in &procs {
        let cost = platform::origin2000(p);
        let mut row = vec![p.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, p).speedup));
        }
        t.rows.push(row);
    }
    t
}

pub fn fig11(scale: ExperimentScale) -> Table {
    let n = scale.size(524288);
    let procs: Vec<usize> = [1, 8, 16, 24, 30].iter().map(|&p| scale.procs(p)).collect();
    let mut procs_dedup = procs.clone();
    procs_dedup.dedup();
    tree_pct_table(
        "Figure 11",
        &format!("Tree-building cost on Origin 2000, {n} particles (% of total time)"),
        &platform::origin2000(30),
        n,
        &procs_dedup,
        "ORIG's tree-build share grows toward ~60% at 30 procs; the others stay small",
    )
}

pub fn table2(scale: ExperimentScale) -> Table {
    let procs = scale.procs(16);
    let cost = platform::origin2000(procs);
    let sizes: Vec<usize> = [65536, 524288].iter().map(|&n| scale.size(n)).collect();
    let mut t = Table::new(
        "Table 2",
        &format!("Time (seconds) spent in BARRIER operations on Origin 2000, {procs} processors"),
        &[],
        "ORIG's barrier time ~15x LOCAL's; UPDATE distant second; others small",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            let run = run_cached(&cost, alg, n, procs);
            // Average barrier wait per processor, in seconds.
            let avg = run.barrier_wait_cycles / procs as u64;
            row.push(format!("{:.3}", cost.cycles_to_seconds(avg)));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Figure 12: Intel Paragon (HLRC SVM)
// --------------------------------------------------------------------------

pub fn fig12(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::paragon_hlrc(procs);
    let mut t = Table::new(
        "Figure 12",
        &format!("Paragon (HLRC SVM), {procs} processors: speedup and tree-build share"),
        &[],
        "SPACE much better than PARTREE (only those two are runnable; the lock-heavy algorithms slow down); PARTREE's tree share ~50%, SPACE's <20%",
    );
    t.headers = vec![
        "particles".into(),
        "PARTREE speedup".into(),
        "SPACE speedup".into(),
        "PARTREE tree%".into(),
        "SPACE tree%".into(),
    ];
    for &n in &sizes {
        let pt = run_cached(&cost, Algorithm::Partree, n, procs);
        let sp = run_cached(&cost, Algorithm::Space, n, procs);
        t.row(vec![
            n.to_string(),
            fmt_speedup(pt.speedup),
            fmt_speedup(sp.speedup),
            fmt_pct(pt.tree_fraction),
            fmt_pct(sp.tree_fraction),
        ]);
    }
    t
}

// --------------------------------------------------------------------------
// Figures 13-14: Typhoon-zero under HLRC
// --------------------------------------------------------------------------

pub fn fig13(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::typhoon0_hlrc(procs);
    let mut t = speedup_table(
        "Figure 13",
        &format!("Speedups on Typhoon-zero (HLRC SVM), {procs} processors"),
        &cost,
        &sizes,
        procs,
        "SPACE vastly outperforms everything; PARTREE second; ORIG/LOCAL/UPDATE deliver slowdowns (<1)",
    );
    // Companion series: tree-build share per algorithm at the largest size.
    let n = *sizes.last().unwrap();
    let mut row = vec![format!("tree% @{n}")];
    for alg in ALGS {
        row.push(fmt_pct(run_cached(&cost, alg, n, procs).tree_fraction));
    }
    t.rows.push(row);
    t
}

pub fn fig14(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::typhoon0_hlrc(procs);
    let mut t = Table::new(
        "Figure 14",
        &format!("Tree-building phase speedups on Typhoon-zero HLRC, {procs} processors"),
        &[],
        "poor: SPACE reaches ~1.5, every other algorithm is a slowdown (<1)",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, procs).tree_speedup));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// §4.4.2: Typhoon-zero under fine-grained sequential consistency
// --------------------------------------------------------------------------

pub fn sc442(scale: ExperimentScale) -> Table {
    let n = scale.size(16384);
    let procs = scale.procs(16);
    let cost = platform::typhoon0_sc(procs);
    let mut t = Table::new(
        "Section 4.4.2",
        &format!("Speedups on Typhoon-zero (fine-grain SC), {n} particles, {procs} processors"),
        &[],
        "differences shrink: SPACE best (~7 of 16), LOCAL/UPDATE/PARTREE ~4, ORIG a little worse",
    );
    t.headers = alg_headers("particles");
    let mut row = vec![n.to_string()];
    for alg in ALGS {
        row.push(fmt_speedup(run_cached(&cost, alg, n, procs).speedup));
    }
    t.rows.push(row);
    t
}

// --------------------------------------------------------------------------
// Figure 15: dynamic lock counts per processor
// --------------------------------------------------------------------------

pub fn fig15(scale: ExperimentScale) -> Table {
    let n = scale.size(65536);
    let procs = scale.procs(16);
    let mut t = Table::new(
        "Figure 15",
        &format!(
            "Locks executed per processor in the tree-building phase (2 steps, {n} particles, {procs} processors)"
        ),
        &[],
        "lock counts fall ORIG ≈ LOCAL ≈ UPDATE (≈1 per body) >> PARTREE >> SPACE (=0)",
    );
    t.headers = vec!["platform/alg".to_string()];
    t.headers.extend((0..procs).map(|p| format!("P{p}")));
    for cost in [platform::typhoon0_hlrc(procs), platform::origin2000(procs)] {
        for alg in ALGS {
            let run = run_cached(&cost, alg, n, procs);
            let mut row = vec![format!("{} {}", cost.name, alg.name())];
            row.extend(run.locks_per_proc.iter().map(|l| l.to_string()));
            t.rows.push(row);
        }
    }
    t
}

/// Every experiment in paper order.
pub fn all_experiments(scale: ExperimentScale) -> Vec<Table> {
    vec![
        table1(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        table2(scale),
        fig12(scale),
        fig13(scale),
        fig14(scale),
        sc442(scale),
        fig15(scale),
    ]
}

/// The experiment registry for the CLI.
pub fn by_name(name: &str, scale: ExperimentScale) -> Option<Table> {
    match name.to_ascii_lowercase().as_str() {
        "table1" | "t1" => Some(table1(scale)),
        "fig6" | "f6" => Some(fig6(scale)),
        "fig7" | "f7" => Some(fig7(scale)),
        "fig8" | "f8" => Some(fig8(scale)),
        "fig9" | "f9" => Some(fig9(scale)),
        "fig10" | "f10" => Some(fig10(scale)),
        "fig11" | "f11" => Some(fig11(scale)),
        "table2" | "t2" => Some(table2(scale)),
        "fig12" | "f12" => Some(fig12(scale)),
        "fig13" | "f13" => Some(fig13(scale)),
        "fig14" | "f14" => Some(fig14(scale)),
        "sc442" | "sc" => Some(sc442(scale)),
        "fig15" | "f15" => Some(fig15(scale)),
        _ => None,
    }
}
