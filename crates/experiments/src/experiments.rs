//! One function per table/figure of the paper's evaluation (§4).
//!
//! Every function regenerates the rows/series the paper reports, at a
//! configurable problem scale. Runs are memoized within a process so that
//! figures sharing configurations (e.g. Figures 8 and 9) reuse them.

use crate::runner::{run_cached, seq_time_on_platform, ExperimentScale, WORKLOAD_SEED};
use crate::tables::{fmt_pct, fmt_speedup, Table};
use bh_core::prelude::*;
use ssmp::{platform, CostModel, Machine};

pub(crate) const ALGS: [Algorithm; 6] = [
    Algorithm::Orig,
    Algorithm::Local,
    Algorithm::Update,
    Algorithm::Partree,
    Algorithm::Space,
    Algorithm::Morton,
];

fn alg_headers(first: &str) -> Vec<String> {
    let mut h = vec![first.to_string()];
    h.extend(ALGS.iter().map(|a| a.name().to_string()));
    h
}

fn speedup_table(
    id: &str,
    title: &str,
    cost: &CostModel,
    sizes: &[usize],
    procs: usize,
    expectation: &str,
) -> Table {
    let mut t = Table::new(id, title, &[], expectation);
    t.headers = alg_headers("particles");
    for &n in sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(cost, alg, n, procs).speedup));
        }
        t.rows.push(row);
    }
    t
}

fn tree_pct_table(
    id: &str,
    title: &str,
    cost: &CostModel,
    n: usize,
    procs: &[usize],
    expectation: &str,
) -> Table {
    let mut t = Table::new(id, title, &[], expectation);
    t.headers = alg_headers("procs");
    for &p in procs {
        let mut row = vec![p.to_string()];
        for alg in ALGS {
            row.push(fmt_pct(run_cached(cost, alg, n, p).tree_fraction));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Table 1: best sequential time on the four platforms
// --------------------------------------------------------------------------

pub fn table1(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let platforms = [
        platform::origin2000(1),
        platform::challenge(1),
        platform::typhoon0_hlrc(1),
        platform::paragon_hlrc(1),
    ];
    let mut t = Table::new(
        "Table 1",
        "Best sequential time (seconds, 2 steps) per platform",
        &[],
        "Origin fastest, Challenge ~2.5x slower, Typhoon-0 and Paragon much slower; time grows ~NlogN",
    );
    t.headers = vec!["platform".to_string()];
    t.headers.extend(sizes.iter().map(|n| n.to_string()));
    for cost in &platforms {
        let mut row = vec![cost.name.clone()];
        for &n in &sizes {
            let (cycles, _) = seq_time_on_platform(cost, n);
            row.push(format!("{:.2}", cost.cycles_to_seconds(cycles)));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Figures 6-7: SGI Challenge
// --------------------------------------------------------------------------

pub fn fig6(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    speedup_table(
        "Figure 6",
        &format!("Speedups on SGI Challenge, {procs} processors"),
        &platform::challenge(procs),
        &sizes,
        procs,
        "all five algorithms between ~12 and ~15 on 16 procs; LOCAL best, ORIG worst by a little",
    )
}

pub fn fig7(scale: ExperimentScale) -> Table {
    let n = scale.size(131072);
    let procs: Vec<usize> = [4, 8, 16].iter().map(|&p| scale.procs(p)).collect();
    tree_pct_table(
        "Figure 7",
        &format!("Tree-building cost on SGI Challenge, {n} particles (% of total time)"),
        &platform::challenge(16),
        n,
        &procs,
        "small for the good algorithms (LOCAL/UPDATE/PARTREE/SPACE), larger for ORIG, growing with processors",
    )
}

// --------------------------------------------------------------------------
// Figures 8-11, Table 2: SGI Origin 2000
// --------------------------------------------------------------------------

pub fn fig8(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(30);
    speedup_table(
        "Figure 8",
        &format!("Speedups on SGI Origin 2000, {procs} processors"),
        &platform::origin2000(procs),
        &sizes,
        procs,
        "LOCAL/UPDATE/PARTREE close together and best, scaling with data size; SPACE slightly behind; big gap to ORIG",
    )
}

pub fn fig9(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536, 131072, 524288]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(30);
    let cost = platform::origin2000(procs);
    let mut t = Table::new(
        "Figure 9",
        &format!("Tree-building phase speedups on Origin 2000, {procs} processors"),
        &[],
        "same relative ordering as Figure 8 but much lower absolute speedups",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, procs).tree_speedup));
        }
        t.rows.push(row);
    }
    t
}

pub fn fig10(scale: ExperimentScale) -> Table {
    let n = scale.size(524288);
    let procs: Vec<usize> = [16, 24, 30].iter().map(|&p| scale.procs(p)).collect();
    let mut t = Table::new(
        "Figure 10",
        &format!("Speedups on Origin 2000 vs processor count, {n} particles"),
        &[],
        "LOCAL/UPDATE/PARTREE scale well with processors (LOCAL best), SPACE a little worse, ORIG far behind",
    );
    t.headers = alg_headers("procs");
    for &p in &procs {
        let cost = platform::origin2000(p);
        let mut row = vec![p.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, p).speedup));
        }
        t.rows.push(row);
    }
    t
}

pub fn fig11(scale: ExperimentScale) -> Table {
    let n = scale.size(524288);
    let procs: Vec<usize> = [1, 8, 16, 24, 30].iter().map(|&p| scale.procs(p)).collect();
    let mut procs_dedup = procs.clone();
    procs_dedup.dedup();
    tree_pct_table(
        "Figure 11",
        &format!("Tree-building cost on Origin 2000, {n} particles (% of total time)"),
        &platform::origin2000(30),
        n,
        &procs_dedup,
        "ORIG's tree-build share grows toward ~60% at 30 procs; the others stay small",
    )
}

pub fn table2(scale: ExperimentScale) -> Table {
    let procs = scale.procs(16);
    let cost = platform::origin2000(procs);
    let sizes: Vec<usize> = [65536, 524288].iter().map(|&n| scale.size(n)).collect();
    let mut t = Table::new(
        "Table 2",
        &format!("Time (seconds) spent in BARRIER operations on Origin 2000, {procs} processors"),
        &[],
        "ORIG's barrier time ~15x LOCAL's; UPDATE distant second; others small",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            let run = run_cached(&cost, alg, n, procs);
            // Average barrier wait per processor, in seconds.
            let avg = run.barrier_wait_cycles / procs as u64;
            row.push(format!("{:.3}", cost.cycles_to_seconds(avg)));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// Figure 12: Intel Paragon (HLRC SVM)
// --------------------------------------------------------------------------

pub fn fig12(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::paragon_hlrc(procs);
    let mut t = Table::new(
        "Figure 12",
        &format!("Paragon (HLRC SVM), {procs} processors: speedup and tree-build share"),
        &[],
        "SPACE much better than PARTREE (only those two are runnable; the lock-heavy algorithms slow down); PARTREE's tree share ~50%, SPACE's <20%",
    );
    t.headers = vec![
        "particles".into(),
        "PARTREE speedup".into(),
        "SPACE speedup".into(),
        "PARTREE tree%".into(),
        "SPACE tree%".into(),
    ];
    for &n in &sizes {
        let pt = run_cached(&cost, Algorithm::Partree, n, procs);
        let sp = run_cached(&cost, Algorithm::Space, n, procs);
        t.row(vec![
            n.to_string(),
            fmt_speedup(pt.speedup),
            fmt_speedup(sp.speedup),
            fmt_pct(pt.tree_fraction),
            fmt_pct(sp.tree_fraction),
        ]);
    }
    t
}

// --------------------------------------------------------------------------
// Figures 13-14: Typhoon-zero under HLRC
// --------------------------------------------------------------------------

pub fn fig13(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::typhoon0_hlrc(procs);
    let mut t = speedup_table(
        "Figure 13",
        &format!("Speedups on Typhoon-zero (HLRC SVM), {procs} processors"),
        &cost,
        &sizes,
        procs,
        "SPACE vastly outperforms everything; PARTREE second; ORIG/LOCAL/UPDATE deliver slowdowns (<1)",
    );
    // Companion series: tree-build share per algorithm at the largest size.
    let n = *sizes.last().unwrap();
    let mut row = vec![format!("tree% @{n}")];
    for alg in ALGS {
        row.push(fmt_pct(run_cached(&cost, alg, n, procs).tree_fraction));
    }
    t.rows.push(row);
    t
}

pub fn fig14(scale: ExperimentScale) -> Table {
    let sizes: Vec<usize> = [8192, 16384, 32768, 65536]
        .iter()
        .map(|&n| scale.size(n))
        .collect();
    let procs = scale.procs(16);
    let cost = platform::typhoon0_hlrc(procs);
    let mut t = Table::new(
        "Figure 14",
        &format!("Tree-building phase speedups on Typhoon-zero HLRC, {procs} processors"),
        &[],
        "poor: SPACE reaches ~1.5, every other algorithm is a slowdown (<1)",
    );
    t.headers = alg_headers("particles");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for alg in ALGS {
            row.push(fmt_speedup(run_cached(&cost, alg, n, procs).tree_speedup));
        }
        t.rows.push(row);
    }
    t
}

// --------------------------------------------------------------------------
// §4.4.2: Typhoon-zero under fine-grained sequential consistency
// --------------------------------------------------------------------------

pub fn sc442(scale: ExperimentScale) -> Table {
    let n = scale.size(16384);
    let procs = scale.procs(16);
    let cost = platform::typhoon0_sc(procs);
    let mut t = Table::new(
        "Section 4.4.2",
        &format!("Speedups on Typhoon-zero (fine-grain SC), {n} particles, {procs} processors"),
        &[],
        "differences shrink: SPACE best (~7 of 16), LOCAL/UPDATE/PARTREE ~4, ORIG a little worse",
    );
    t.headers = alg_headers("particles");
    let mut row = vec![n.to_string()];
    for alg in ALGS {
        row.push(fmt_speedup(run_cached(&cost, alg, n, procs).speedup));
    }
    t.rows.push(row);
    t
}

// --------------------------------------------------------------------------
// Figure 15: dynamic lock counts per processor
// --------------------------------------------------------------------------

pub fn fig15(scale: ExperimentScale) -> Table {
    let n = scale.size(65536);
    let procs = scale.procs(16);
    let mut t = Table::new(
        "Figure 15",
        &format!(
            "Locks executed per processor in the tree-building phase (2 steps, {n} particles, {procs} processors)"
        ),
        &[],
        "lock counts fall ORIG ≈ LOCAL ≈ UPDATE (≈1 per body) >> PARTREE >> SPACE (=0)",
    );
    t.headers = vec!["platform/alg".to_string()];
    t.headers.extend((0..procs).map(|p| format!("P{p}")));
    for cost in [platform::typhoon0_hlrc(procs), platform::origin2000(procs)] {
        for alg in ALGS {
            let run = run_cached(&cost, alg, n, procs);
            let mut row = vec![format!("{} {}", cost.name, alg.name())];
            row.extend(run.locks_per_proc.iter().map(|l| l.to_string()));
            t.rows.push(row);
        }
    }
    t
}

// --------------------------------------------------------------------------
// Treebuild observability: traced per-phase breakdown, Chrome trace export,
// lock-contention histogram, and machine-readable BENCH metrics
// --------------------------------------------------------------------------

/// Output of the traced `treebuild` experiment: a Table-2-style per-phase
/// breakdown, a Chrome/Perfetto trace document covering every run (one
/// process track per platform × algorithm, one thread track per simulated
/// processor), and machine-readable per-algorithm metrics for the
/// `BENCH_<scale>.json` performance trajectory.
#[derive(Debug, Clone)]
pub struct TreebuildReport {
    pub table: Table,
    /// Complete Chrome trace-event JSON document.
    pub trace_json: String,
    /// Complete JSON array document of per-algorithm metric records.
    pub bench_json: String,
}

/// One (platform, algorithm) traced run distilled for the report.
struct TracedRun {
    phase: [CtxStatsRow; 4],
    hist_locks: usize,
    hist_total_acquires: u64,
    hist_total_wait: u64,
    /// Share of total lock wait (or acquires, if wait is zero) absorbed by
    /// the single hottest lock id — the paper's "hot shared cells" signal.
    hot_share: f64,
    total_time: u64,
    tree_time: u64,
    /// Max/avg per-processor tree-phase work time (barrier wait excluded).
    tree_imbalance: f64,
    /// Max per-processor time in the flat-snapshot pass of the tree phase.
    flatten_cycles: u64,
    /// Max per-processor time in the parallel key sort (MORTON only).
    sort_cycles: u64,
    /// Mean interaction-list length per group in the batched force kernel.
    list_len: f64,
    /// Interactions evaluated per emitted list entry (the kernel's reuse
    /// factor; ≈ group_size when most groups share their whole list).
    list_reuse: f64,
}

#[derive(Clone, Copy, Default)]
struct CtxStatsRow {
    time: u64,
    locks: u64,
    lock_wait: u64,
    barrier_wait: u64,
    remote: u64,
    faults: u64,
}

fn traced_run<E: Env>(
    env: &bh_core::trace::TraceEnv<E>,
    alg: Algorithm,
    n: usize,
    group_size: Option<usize>,
) -> TracedRun {
    let bodies = Model::Plummer.generate(n, WORKLOAD_SEED);
    let mut cfg = SimConfig::new(alg);
    if let Some(gs) = group_size {
        cfg.group_size = gs;
    }
    let stats = run_simulation(env, &cfg, &bodies);
    stats.assert_valid();
    let mut phase = [CtxStatsRow::default(); 4];
    for p in Phase::ALL {
        let a = stats.phase_stats(p);
        phase[p.index()] = CtxStatsRow {
            time: a.time,
            locks: a.lock_acquires,
            lock_wait: a.lock_wait,
            barrier_wait: a.barrier_wait,
            remote: a.remote_misses,
            faults: a.page_faults,
        };
    }
    let hist = env.lock_histogram();
    let total_acquires: u64 = hist.iter().map(|s| s.acquires).sum();
    let total_wait: u64 = hist.iter().map(|s| s.wait_total).sum();
    let hot_share = match hist.first() {
        None => 0.0,
        Some(top) if total_wait > 0 => top.wait_total as f64 / total_wait as f64,
        Some(top) => top.acquires as f64 / total_acquires.max(1) as f64,
    };
    TracedRun {
        phase,
        hist_locks: hist.len(),
        hist_total_acquires: total_acquires,
        hist_total_wait: total_wait,
        hot_share,
        total_time: stats.total_time(),
        tree_time: stats.tree_time(),
        tree_imbalance: stats.tree_imbalance(),
        flatten_cycles: stats.flatten_cycles(),
        sort_cycles: stats.sort_cycles(),
        list_len: stats.force_list_len(),
        list_reuse: stats.force_list_reuse(),
    }
}

fn treebuild_row(table: &mut Table, platform: &str, alg: Algorithm, r: &TracedRun) {
    let p = &r.phase;
    table.row(vec![
        platform.to_string(),
        alg.name().to_string(),
        p[0].time.to_string(),
        p[1].time.to_string(),
        p[2].time.to_string(),
        p[3].time.to_string(),
        p[0].locks.to_string(),
        p[0].lock_wait.to_string(),
        r.hist_locks.to_string(),
        fmt_pct(r.hot_share),
        p.iter().map(|x| x.barrier_wait).sum::<u64>().to_string(),
        p.iter().map(|x| x.remote).sum::<u64>().to_string(),
        p.iter().map(|x| x.faults).sum::<u64>().to_string(),
    ]);
}

/// Run the full application under [`bh_core::trace::TraceEnv`] for all six
/// algorithms on the native host and on a simulated Origin 2000, producing
/// the per-phase breakdown, the combined Chrome trace and BENCH metrics.
/// Native rows are in wall nanoseconds, origin rows in simulated cycles.
pub fn treebuild(scale: ExperimentScale) -> TreebuildReport {
    treebuild_with(scale, None)
}

/// Like [`treebuild`] but with an explicit force-kernel group size
/// (`repro treebuild --group-size <N>`); `None` keeps the config default.
pub fn treebuild_with(scale: ExperimentScale, group_size: Option<usize>) -> TreebuildReport {
    treebuild_sized(scale, scale.size(16384), scale.procs(16), group_size)
}

fn treebuild_sized(
    scale: ExperimentScale,
    n: usize,
    procs: usize,
    group_size: Option<usize>,
) -> TreebuildReport {
    let cost = platform::origin2000(procs);
    let mut table = Table::new(
        "Treebuild",
        &format!(
            "Traced per-phase breakdown, {n} particles, {procs} processors \
             (native rows in ns, {} rows in cycles; measured steps only, \
             lock histogram over all steps)",
            cost.name
        ),
        &[
            "platform",
            "alg",
            "tree",
            "partition",
            "force",
            "update",
            "tree locks",
            "tree lockwait",
            "lock ids",
            "hot lock",
            "barrier wait",
            "remote",
            "faults",
        ],
        "lock-based algorithms spend tree time in locks (ORIG concentrated on few hot cells); SPACE takes none",
    );
    let mut events: Vec<String> = Vec::new();
    let mut bench: Vec<String> = Vec::new();
    for (pid, alg) in ALGS.iter().enumerate() {
        let alg = *alg;
        // Native wall times are noisy under host load; keep the fastest of
        // three runs (minimum estimator) so the regression gate compares
        // signal rather than scheduler luck.
        let (native, nat) = (0..3)
            .map(|_| {
                let env = bh_core::trace::TraceEnv::new(NativeEnv::new(procs));
                let run = traced_run(&env, alg, n, group_size);
                (env, run)
            })
            .min_by_key(|(_, run)| run.total_time)
            .expect("three native attempts");
        treebuild_row(&mut table, "native", alg, &nat);
        events.extend(native.chrome_trace_events(
            2 * pid as u32,
            &format!("native {} ({procs}p, ns)", alg.name()),
            1000.0,
        ));

        let sim = bh_core::trace::TraceEnv::new(Machine::new(cost.clone(), procs));
        let org = traced_run(&sim, alg, n, group_size);
        treebuild_row(&mut table, &cost.name, alg, &org);
        events.extend(sim.chrome_trace_events(
            2 * pid as u32 + 1,
            &format!("{} {} ({procs}p, cycles)", cost.name, alg.name()),
            1.0,
        ));

        bench.push(format!(
            "  {{\"experiment\": \"treebuild\", \"scale\": \"{}\", \"algorithm\": \"{}\", \
             \"platform\": \"{}\", \"n\": {n}, \"procs\": {procs}, \
             \"tree_cycles\": {}, \"total_cycles\": {}, \
             \"tree_lock_acquires\": {}, \"tree_lock_wait_cycles\": {}, \
             \"barrier_wait_cycles\": {}, \"remote_misses\": {}, \"page_faults\": {}, \
             \"lock_ids\": {}, \"lock_acquires_all_steps\": {}, \"lock_wait_all_steps\": {}, \
             \"tree_imbalance\": {:.4}, \"flatten_cycles\": {}, \"sort_cycles\": {}, \
             \"force_cycles\": {}, \"list_len\": {:.2}, \"list_reuse\": {:.4}, \
             \"native_tree_ns\": {}, \"native_total_ns\": {}, \"native_force_ns\": {}}}",
            scale.name(),
            alg.name(),
            cost.name,
            org.tree_time,
            org.total_time,
            org.phase[0].locks,
            org.phase[0].lock_wait,
            org.phase.iter().map(|x| x.barrier_wait).sum::<u64>(),
            org.phase.iter().map(|x| x.remote).sum::<u64>(),
            org.phase.iter().map(|x| x.faults).sum::<u64>(),
            org.hist_locks,
            org.hist_total_acquires,
            org.hist_total_wait,
            org.tree_imbalance,
            org.flatten_cycles,
            org.sort_cycles,
            org.phase[2].time,
            org.list_len,
            org.list_reuse,
            nat.tree_time,
            nat.total_time,
            nat.phase[2].time,
        ));
    }
    TreebuildReport {
        table,
        trace_json: format!("[\n{}\n]\n", events.join(",\n")),
        bench_json: format!("[\n{}\n]\n", bench.join(",\n")),
    }
}

/// Every experiment in paper order.
pub fn all_experiments(scale: ExperimentScale) -> Vec<Table> {
    vec![
        table1(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        table2(scale),
        fig12(scale),
        fig13(scale),
        fig14(scale),
        sc442(scale),
        fig15(scale),
    ]
}

/// The experiment registry for the CLI.
pub fn by_name(name: &str, scale: ExperimentScale) -> Option<Table> {
    match name.to_ascii_lowercase().as_str() {
        "table1" | "t1" => Some(table1(scale)),
        "fig6" | "f6" => Some(fig6(scale)),
        "fig7" | "f7" => Some(fig7(scale)),
        "fig8" | "f8" => Some(fig8(scale)),
        "fig9" | "f9" => Some(fig9(scale)),
        "fig10" | "f10" => Some(fig10(scale)),
        "fig11" | "f11" => Some(fig11(scale)),
        "table2" | "t2" => Some(table2(scale)),
        "fig12" | "f12" => Some(fig12(scale)),
        "fig13" | "f13" => Some(fig13(scale)),
        "fig14" | "f14" => Some(fig14(scale)),
        "sc442" | "sc" => Some(sc442(scale)),
        "fig15" | "f15" => Some(fig15(scale)),
        // `repro` intercepts "treebuild" to also export the trace and BENCH
        // documents; this arm keeps the registry complete for library users.
        "treebuild" | "tb" => Some(treebuild(scale).table),
        _ => None,
    }
}

/// Every experiment name accepted by [`by_name`], for CLI diagnostics.
pub const EXPERIMENT_NAMES: [&str; 14] = [
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "fig12",
    "fig13",
    "fig14",
    "sc442",
    "fig15",
    "treebuild",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn registry_rejects_unknown_names() {
        // (Resolving a known name runs the experiment, so only the negative
        // path is cheap to test here; treebuild_report_is_complete_and_valid
        // covers a real run.)
        assert!(by_name("nope", ExperimentScale::Tiny).is_none());
        let mut names = EXPERIMENT_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXPERIMENT_NAMES.len(), "duplicate names");
    }

    #[test]
    fn treebuild_report_is_complete_and_valid() {
        let report = treebuild_sized(ExperimentScale::Tiny, 128, 2, None);
        // 6 algorithms x 2 platforms.
        assert_eq!(report.table.rows.len(), 12);

        let trace = Json::parse(&report.trace_json).expect("trace must be valid JSON");
        let events = trace.as_array().expect("trace is an array");
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert!(!spans.is_empty(), "trace has no spans");
        // 12 process tracks, each declaring 2 threads.
        let procs_meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .collect();
        assert_eq!(procs_meta.len(), 12);
        for m in procs_meta {
            assert_eq!(
                m.get("args")
                    .and_then(|a| a.get("num_procs"))
                    .and_then(Json::as_f64),
                Some(2.0)
            );
        }
        // All four phases appear as span names.
        for phase in ["tree", "partition", "force", "update"] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.get("name").and_then(Json::as_str) == Some(phase)),
                "no {phase} span in trace"
            );
        }

        let bench = Json::parse(&report.bench_json).expect("bench must be valid JSON");
        let records = bench.as_array().expect("bench is an array");
        assert_eq!(records.len(), 6);
        for r in records {
            assert!(r.get("tree_cycles").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(r.get("native_tree_ns").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(r.get("tree_imbalance").and_then(Json::as_f64).unwrap() >= 1.0);
            // Batched force kernel metrics: the default config runs it, so
            // every record reports force time and nontrivial list reuse.
            assert!(r.get("force_cycles").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(r.get("native_force_ns").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(r.get("list_len").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(
                r.get("list_reuse").and_then(Json::as_f64).unwrap() > 1.0,
                "grouped lists must be applied to more than one body each"
            );
            let flatten = r.get("flatten_cycles").and_then(Json::as_f64).unwrap();
            let sort = r.get("sort_cycles").and_then(Json::as_f64).unwrap();
            if r.get("algorithm").and_then(Json::as_str) == Some("MORTON") {
                // MORTON builds the snapshot directly: no flatten pass, a
                // nonzero key sort, and no lock traffic at all.
                assert_eq!(flatten, 0.0, "MORTON must not flatten");
                assert!(sort > 0.0, "MORTON must report its sort");
                assert_eq!(
                    r.get("tree_lock_acquires").and_then(Json::as_f64).unwrap(),
                    0.0,
                    "MORTON takes no tree locks"
                );
            } else {
                assert!(flatten > 0.0, "linked-tree algorithms flatten");
                assert_eq!(sort, 0.0, "only MORTON sorts");
            }
        }
        // The histogram separates ORIG (hot shared cells) from SPACE
        // (lock-free): compare the per-record lock id counts.
        let lock_ids = |alg: &str| {
            records
                .iter()
                .find(|r| r.get("algorithm").and_then(Json::as_str) == Some(alg))
                .and_then(|r| r.get("lock_ids"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert!(lock_ids("ORIG") > 0.0, "ORIG must take locks");
        assert_eq!(lock_ids("SPACE"), 0.0, "SPACE is lock-free");
        assert_eq!(lock_ids("MORTON"), 0.0, "MORTON is lock-free");
    }
}
