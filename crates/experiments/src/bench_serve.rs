//! `repro bench-serve`: the load generator and report for the job server.
//!
//! Drives a [`bh_serve`] server — self-hosted on a temporary unix socket,
//! or an external one via `--connect` — with a configurable multi-tenant
//! mix, then reports per-tenant p50/p95/p99 latency, throughput,
//! queue-depth percentiles, cache hit-rate and backpressure counts, and
//! writes the same numbers as `serve_*` records into `BENCH_<scale>.json`
//! (validated by `repro check-json`).
//!
//! Physics gate: at one simulated processor runs are bitwise
//! deterministic, so for `procs == 1` every served digest is checked
//! against a direct [`SimEngine`](bh_core::engine::SimEngine) run of the
//! same spec in this process; any mismatch fails the bench. The burst
//! phase pipelines requests down one connection without reading responses,
//! which overruns the bounded admission queue and must surface explicit
//! `queue_full` rejections (`--expect-backpressure` turns their absence
//! into a failure).

use crate::runner::ExperimentScale;
use crate::tables::json_escape;
use bh_core::prelude::*;
use bh_serve::cache::AnyEngine;
use bh_serve::client::{burst, run_load, Client, TenantLoadResult, TenantPlan};
use bh_serve::job::{digest_bodies, JobSpec};
use bh_serve::json::Json;
use bh_serve::server::{Server, ServerConfig};
use bh_serve::transport::{spawn, Endpoint};
use std::collections::HashMap;
use std::time::Duration;

/// Everything `repro bench-serve` parses from its flags.
#[derive(Debug, Clone)]
pub struct BenchServeOpts {
    pub scale: ExperimentScale,
    /// External server endpoint; `None` self-hosts on a temp unix socket.
    pub connect: Option<Endpoint>,
    pub tenants: usize,
    /// Jobs per tenant in the steady phase.
    pub jobs: usize,
    /// Self-hosted server knobs (ignored with `--connect`).
    pub workers: usize,
    pub queue_cap: usize,
    pub engines: usize,
    /// `true` = open loop (paced arrivals), `false` = closed loop.
    pub open_loop: bool,
    /// Open loop: target arrival rate per tenant, jobs/second.
    pub rate: f64,
    /// Closed loop: requests kept outstanding per tenant.
    pub window: usize,
    /// Pipelined burst size (0 disables the burst phase).
    pub burst: usize,
    /// Fail unless the burst provoked at least one `queue_full`.
    pub expect_backpressure: bool,
    /// Send `{"op":"shutdown"}` when done (self-hosted mode always does).
    pub shutdown: bool,
    /// Where to write the records; `None` means `BENCH_<scale>.json` in the
    /// current directory.
    pub out_path: Option<std::path::PathBuf>,
}

impl Default for BenchServeOpts {
    fn default() -> BenchServeOpts {
        BenchServeOpts {
            scale: ExperimentScale::Small,
            connect: None,
            tenants: 2,
            jobs: 100,
            workers: 2,
            queue_cap: 8,
            engines: 4,
            open_loop: false,
            rate: 50.0,
            window: 4,
            burst: 32,
            expect_backpressure: false,
            shutdown: false,
            out_path: None,
        }
    }
}

/// The job shape every tenant submits: one native processor (so digests
/// are verifiable), scenario rotating through the generators (same engine
/// shape — scenarios share allocations, so the cache stays hot).
fn spec_for(scale: ExperimentScale, seq: usize) -> JobSpec {
    let mut spec = JobSpec::defaults(scale.size(8192));
    spec.scenario = Model::ALL[seq % Model::ALL.len()];
    spec.warmup = 0;
    spec.steps = 1;
    spec
}

fn render_job(id: &str, tenant: &str, spec: &JobSpec) -> String {
    format!(
        "{{\"op\":\"job\",\"id\":\"{}\",\"tenant\":\"{}\",\"scenario\":\"{}\",\"algorithm\":\"{}\",\"platform\":\"{}\",\"n\":{},\"procs\":{},\"steps\":{},\"warmup\":{},\"k\":{},\"group_size\":{},\"seed\":{}}}",
        json_escape(id),
        json_escape(tenant),
        spec.scenario.name(),
        spec.algorithm.name(),
        spec.platform.name(),
        spec.n,
        spec.procs,
        spec.steps,
        spec.warmup,
        spec.k,
        spec.group_size,
        spec.seed,
    )
}

/// Expected digest per distinct spec, via direct engine runs (the ground
/// truth the served results must match bitwise at one processor).
fn expected_digests(scale: ExperimentScale) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    for seq in 0..Model::ALL.len() {
        let spec = spec_for(scale, seq);
        let mut engine = AnyEngine::fresh(&spec.shape());
        let (_, finals) = engine.run(&spec.config(), &spec.bodies());
        out.insert(spec.scenario.name().to_string(), digest_bodies(&finals));
    }
    out
}

struct StatsView {
    depth_p50: u64,
    depth_p99: u64,
    depth_hwm: u64,
    capacity: u64,
    rejected_full: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    tenants: Vec<(String, u64, u64)>, // (name, served, rejected)
}

fn fetch_stats(client: &mut Client) -> Result<StatsView, String> {
    let line = client
        .request(r#"{"op":"stats"}"#)
        .map_err(|e| format!("stats request failed: {e}"))?;
    let doc = Json::parse(&line).map_err(|e| format!("stats response: {e}"))?;
    let num = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("stats response lacks numeric '{key}': {line}"))
    };
    let mut tenants = Vec::new();
    if let Some(rows) = doc.get("tenants").and_then(Json::as_array) {
        for row in rows {
            let name = row
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            let served = row.get("served").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let rejected = row.get("rejected").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            tenants.push((name, served, rejected));
        }
    }
    Ok(StatsView {
        depth_p50: num("depth_p50")?,
        depth_p99: num("depth_p99")?,
        depth_hwm: num("depth_hwm")?,
        capacity: num("queue_capacity")?,
        rejected_full: num("rejected_full")?,
        cache_hits: num("cache_hits")?,
        cache_misses: num("cache_misses")?,
        cache_evictions: num("cache_evictions")?,
        tenants,
    })
}

/// Check every successful response's digest against the ground truth.
/// Returns (verified, mismatches).
fn verify_digests(
    results: &[TenantLoadResult],
    expected: &HashMap<String, u64>,
    id_scenarios: &HashMap<String, String>,
) -> (u64, u64) {
    let (mut verified, mut mismatches) = (0, 0);
    for r in results {
        for line in &r.responses {
            let Ok(doc) = Json::parse(line) else { continue };
            if doc.get("ok") != Some(&Json::Bool(true)) {
                continue;
            }
            let Some(id) = doc.get("id").and_then(Json::as_str) else {
                continue;
            };
            let Some(scenario) = id_scenarios.get(id) else {
                continue;
            };
            let served = doc
                .get("digest")
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            match (served, expected.get(scenario)) {
                (Some(d), Some(&e)) if d == e => verified += 1,
                _ => mismatches += 1,
            }
        }
    }
    (verified, mismatches)
}

/// Run the bench; returns the `BENCH_<scale>.json` path on success, or a
/// diagnostic on any gate failure (failed jobs, digest mismatch, expected
/// backpressure not observed).
pub fn run_bench(opts: &BenchServeOpts) -> Result<String, String> {
    // Self-host unless pointed at an external server.
    let (endpoint, listener) = match &opts.connect {
        Some(ep) => (ep.clone(), None),
        None => {
            let path =
                std::env::temp_dir().join(format!("bh-serve-bench-{}.sock", std::process::id()));
            let endpoint = Endpoint::Unix(path);
            let server = Server::start(ServerConfig {
                workers: opts.workers.max(1),
                queue_capacity: opts.queue_cap.max(1),
                engine_capacity: opts.engines.max(1),
                ..ServerConfig::default()
            });
            let handle = spawn(server, endpoint.clone());
            (endpoint, Some(handle))
        }
    };
    let mut control = Client::connect_with_retry(&endpoint, 100)
        .map_err(|e| format!("cannot connect to {endpoint:?}: {e}"))?;
    control
        .request(r#"{"op":"ping"}"#)
        .map_err(|e| format!("ping failed: {e}"))?;

    // Ground truth digests before generating load (direct engine runs).
    let expected = expected_digests(opts.scale);

    // Steady phase: `tenants` concurrent connections, `jobs` jobs each.
    let mut plans = Vec::new();
    let mut id_scenarios: HashMap<String, String> = HashMap::new();
    for t in 0..opts.tenants.max(1) {
        let name = format!("tenant{t}");
        let mut requests = Vec::with_capacity(opts.jobs);
        for j in 0..opts.jobs {
            let spec = spec_for(opts.scale, t + j);
            let id = format!("{name}-j{j}");
            id_scenarios.insert(id.clone(), spec.scenario.name().to_string());
            requests.push(render_job(&id, &name, &spec));
        }
        plans.push(TenantPlan {
            name,
            requests,
            window: opts.window.max(1),
            gap: opts
                .open_loop
                .then(|| Duration::from_secs_f64(1.0 / opts.rate.max(0.001))),
        });
    }
    let results = run_load(&endpoint, plans).map_err(|e| format!("load generation: {e}"))?;

    // Burst phase: pipeline without reading to overrun the queue.
    let mut burst_rejected = 0u64;
    let mut burst_ok = 0u64;
    if opts.burst > 0 {
        let requests: Vec<String> = (0..opts.burst)
            .map(|j| {
                let spec = spec_for(opts.scale, j);
                let id = format!("burst-j{j}");
                id_scenarios.insert(id.clone(), spec.scenario.name().to_string());
                render_job(&id, "burst", &spec)
            })
            .collect();
        for line in burst(&endpoint, &requests).map_err(|e| format!("burst: {e}"))? {
            match Json::parse(&line) {
                Ok(doc) if doc.get("ok") == Some(&Json::Bool(true)) => burst_ok += 1,
                Ok(doc) if doc.get("error").and_then(Json::as_str) == Some("queue_full") => {
                    burst_rejected += 1
                }
                _ => return Err(format!("burst job failed: {line}")),
            }
        }
    }

    let stats = fetch_stats(&mut control)?;
    if opts.shutdown || listener.is_some() {
        control
            .request(r#"{"op":"shutdown"}"#)
            .map_err(|e| format!("shutdown: {e}"))?;
    }
    if let Some(handle) = listener {
        handle
            .join()
            .map_err(|_| "listener thread panicked".to_string())?
            .map_err(|e| format!("listener: {e}"))?;
    }

    // ---- gates -----------------------------------------------------------
    let failed: u64 = results.iter().map(|r| r.failed).sum();
    if failed > 0 {
        return Err(format!("{failed} job(s) failed (expected zero)"));
    }
    let (verified, mismatches) = verify_digests(&results, &expected, &id_scenarios);
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} served digest(s) diverged from direct engine runs"
        ));
    }
    let total_rejected = burst_rejected + results.iter().map(|r| r.rejected).sum::<u64>();
    if opts.expect_backpressure && total_rejected == 0 {
        return Err("no queue_full rejections observed; backpressure never engaged".to_string());
    }

    // ---- report ----------------------------------------------------------
    let mode = if opts.open_loop { "open" } else { "closed" };
    let mut records = Vec::new();
    println!(
        "bench-serve: {} tenant(s) x {} job(s), mode={mode}, scale={}",
        results.len(),
        opts.jobs,
        opts.scale.name()
    );
    let mut all_latencies: Vec<u64> = Vec::new();
    for r in &results {
        let p50 = percentile_u64(&r.latencies_us, 50.0) as f64 / 1000.0;
        let p95 = percentile_u64(&r.latencies_us, 95.0) as f64 / 1000.0;
        let p99 = percentile_u64(&r.latencies_us, 99.0) as f64 / 1000.0;
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        let throughput = r.ok as f64 / secs;
        all_latencies.extend_from_slice(&r.latencies_us);
        println!(
            "  {:<10} ok={:<4} rejected={:<3} p50={:.2}ms p95={:.2}ms p99={:.2}ms {:.1} jobs/s",
            r.name, r.ok, r.rejected, p50, p95, p99, throughput
        );
        records.push(format!(
            "{{\"experiment\": \"serve_latency\", \"tenant\": \"{}\", \"mode\": \"{mode}\", \"jobs\": {}, \"ok\": {}, \"rejected\": {}, \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \"throughput_jps\": {throughput:.3}}}",
            json_escape(&r.name),
            r.latencies_us.len(),
            r.ok,
            r.rejected,
        ));
    }
    let agg_p50 = percentile_u64(&all_latencies, 50.0) as f64 / 1000.0;
    let agg_p99 = percentile_u64(&all_latencies, 99.0) as f64 / 1000.0;
    let hit_rate = {
        let total = stats.cache_hits + stats.cache_misses;
        if total == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / total as f64
        }
    };
    println!(
        "  aggregate  p50={agg_p50:.2}ms p99={agg_p99:.2}ms; queue depth p50={} p99={} hwm={}/{}; rejected={}; cache {}h/{}m/{}e (hit rate {:.0}%); digests verified={verified}",
        stats.depth_p50,
        stats.depth_p99,
        stats.depth_hwm,
        stats.capacity,
        stats.rejected_full,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        hit_rate * 100.0,
    );
    if opts.burst > 0 {
        println!(
            "  burst      {} pipelined: ok={burst_ok} queue_full={burst_rejected}",
            opts.burst
        );
    }
    records.push(format!(
        "{{\"experiment\": \"serve_queue\", \"depth_p50\": {}, \"depth_p99\": {}, \"depth_max\": {}, \"capacity\": {}, \"rejected_total\": {}}}",
        stats.depth_p50, stats.depth_p99, stats.depth_hwm, stats.capacity, stats.rejected_full
    ));
    records.push(format!(
        "{{\"experiment\": \"serve_cache\", \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {hit_rate:.4}}}",
        stats.cache_hits, stats.cache_misses, stats.cache_evictions
    ));
    for (name, served, rejected) in &stats.tenants {
        records.push(format!(
            "{{\"experiment\": \"serve_tenant\", \"tenant\": \"{}\", \"served\": {served}, \"rejected\": {rejected}}}",
            json_escape(name)
        ));
    }

    let path = opts
        .out_path
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.scale.name()).into());
    let body = format!("[\n  {}\n]\n", records.join(",\n  "));
    std::fs::write(&path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_jobs_parse_back_through_the_protocol() {
        let spec = spec_for(ExperimentScale::Tiny, 1);
        let line = render_job("j1", "acme", &spec);
        match bh_serve::protocol::parse_request(&line).unwrap() {
            bh_serve::protocol::Request::Job {
                id,
                tenant,
                spec: parsed,
            } => {
                assert_eq!(id, "j1");
                assert_eq!(tenant, "acme");
                assert_eq!(parsed, spec);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn tenant_mix_rotates_scenarios_but_shares_engine_shape() {
        let a = spec_for(ExperimentScale::Tiny, 0);
        let b = spec_for(ExperimentScale::Tiny, 1);
        assert_ne!(a.scenario, b.scenario);
        assert_eq!(a.shape(), b.shape());
    }

    /// End-to-end self-hosted bench at tiny scale: the full acceptance
    /// surface (zero failures, digest verification, backpressure under
    /// burst, cache hit-rate) in one in-process run.
    #[test]
    fn self_hosted_bench_meets_the_gates() {
        let out = std::env::temp_dir().join(format!("bh-bench-test-{}.json", std::process::id()));
        let opts = BenchServeOpts {
            scale: ExperimentScale::Tiny,
            tenants: 2,
            jobs: 12,
            workers: 2,
            queue_cap: 4,
            engines: 2,
            burst: 24,
            expect_backpressure: true,
            out_path: Some(out.clone()),
            ..Default::default()
        };
        let result = run_bench(&opts);
        let bench = std::fs::read_to_string(&out);
        let _ = std::fs::remove_file(&out);
        result.expect("bench gates");
        let doc = Json::parse(&bench.unwrap()).unwrap();
        let items = doc.as_array().unwrap();
        let cache = items
            .iter()
            .find(|r| r.get("experiment").and_then(Json::as_str) == Some("serve_cache"))
            .expect("serve_cache record");
        // Same-shape workload: the cache must be doing real work.
        assert!(cache.get("hit_rate").unwrap().as_f64().unwrap() > 0.5);
    }
}
