//! Batched sweep scheduling: the experiment suite as an explicit job list.
//!
//! Each table/figure function in [`crate::experiments`] runs its platform
//! configurations serially and memoizes them in the run caches of
//! [`crate::runner`]. The sweep scheduler makes the implied job list
//! explicit: it enumerates every (platform, algorithm, n, procs)
//! configuration a set of experiments will need, dedups them (figures share
//! many configurations), and submits them — as tenant `"sweep"` — to an
//! in-process [`bh_serve::server::Server`] to *prewarm* the caches. Batch
//! sweeps and socket-served jobs thereby share one admission/worker path;
//! the sweep is just another client of the service layer. The serial
//! table-generation pass that follows is then pure cache lookup: the
//! scheduler changes wall-clock time, never the set of configurations
//! computed or which value a given key gets (each key is computed at most
//! once thanks to dedup).
//!
//! Determinism: single-processor runs (all sequential baselines, hence all
//! of Table 1) are bitwise deterministic, so their output is byte-identical
//! across any `--jobs` setting *and* across processes. Multi-processor
//! simulated runs carry run-to-run jitter — the contention cost model is
//! fed by real thread interleaving (lock-queue depth, ownership-transfer
//! order) — with or without the sweep; only the document *structure* is
//! invariant for those.
//!
//! Sequential baselines are listed as explicit jobs and sorted ahead of the
//! parallel runs that divide by them; if a parallel job nevertheless starts
//! first it simply computes the (identical, deterministic) baseline itself.

use crate::experiments::ALGS;
use crate::runner::{run_cached, seq_time_on_platform, ExperimentScale};
use bh_core::prelude::*;
use bh_serve::server::{Server, ServerConfig};
use ssmp::{platform, CostModel};
use std::collections::HashSet;

/// One unit of sweep work: a full simulated application run.
pub enum SweepJob {
    /// Sequential baseline on a platform (PARTREE on one processor).
    Seq { cost: CostModel, n: usize },
    /// One (platform, algorithm, n, procs) measurement.
    Par {
        cost: CostModel,
        alg: Algorithm,
        n: usize,
        procs: usize,
    },
}

impl SweepJob {
    /// Cache-identity of the job. Platform cost models are identified by
    /// name (constructing one for a different processor count yields the
    /// same model), so the key matches the run caches in `runner`.
    fn key(&self) -> String {
        match self {
            SweepJob::Seq { cost, n } => format!("seq/{}/{n}", cost.name),
            SweepJob::Par {
                cost,
                alg,
                n,
                procs,
            } => format!("par/{}/{}/{n}/{procs}", cost.name, alg.name()),
        }
    }

    /// Rough relative cost, for longest-job-first ordering: the dominant
    /// term is force evaluation, ~n log n per measured step.
    fn weight(&self) -> u64 {
        let n = match self {
            SweepJob::Seq { n, .. } | SweepJob::Par { n, .. } => *n,
        } as u64;
        n * n.max(2).ilog2() as u64
    }

    /// Execute the job, populating the memoization caches as a side effect.
    fn run(&self) {
        match self {
            SweepJob::Seq { cost, n } => {
                seq_time_on_platform(cost, *n);
            }
            SweepJob::Par {
                cost,
                alg,
                n,
                procs,
            } => {
                run_cached(cost, *alg, *n, *procs);
            }
        }
    }
}

/// A deduplicated batch of sweep jobs.
#[derive(Default)]
pub struct SweepScheduler {
    jobs: Vec<SweepJob>,
    seen: HashSet<String>,
}

impl SweepScheduler {
    pub fn new() -> SweepScheduler {
        SweepScheduler::default()
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueue a job unless an identical one is already queued.
    pub fn push(&mut self, job: SweepJob) {
        if self.seen.insert(job.key()) {
            self.jobs.push(job);
        }
    }

    /// Enqueue one measurement plus the sequential baseline it divides by.
    pub fn add_run(&mut self, cost: &CostModel, alg: Algorithm, n: usize, procs: usize) {
        self.push(SweepJob::Seq {
            cost: cost.clone(),
            n,
        });
        self.push(SweepJob::Par {
            cost: cost.clone(),
            alg,
            n,
            procs,
        });
    }

    pub fn add_seq(&mut self, cost: &CostModel, n: usize) {
        self.push(SweepJob::Seq {
            cost: cost.clone(),
            n,
        });
    }

    /// Run every queued job across up to `workers` executor threads of an
    /// in-process job server, and return the number of jobs executed.
    /// Baselines run ahead of the measurements that need them, longest
    /// jobs first within each class; with a single tenant the server's
    /// deficit round-robin degenerates to FIFO, so that submission order
    /// is also the dispatch order.
    pub fn run(mut self, workers: usize) -> usize {
        self.jobs.sort_by_key(|j| {
            let seq_first = match j {
                SweepJob::Seq { .. } => 0u8,
                SweepJob::Par { .. } => 1,
            };
            (seq_first, std::cmp::Reverse(j.weight()))
        });
        let total = self.jobs.len();
        if total == 0 {
            return 0;
        }
        let server = Server::start(ServerConfig {
            workers: workers.max(1).min(total),
            // The whole batch is admitted up front: capacity = batch size,
            // so a sweep never sees queue_full.
            queue_capacity: total,
            // Sweep tasks carry their own engines and memoization; the
            // engine cache is idle on this path.
            engine_capacity: 1,
            ..ServerConfig::default()
        });
        for job in self.jobs {
            let weight = job.weight();
            server
                .submit_task("sweep", weight, move || job.run())
                .expect("sweep queue sized to the batch");
        }
        server.wait_idle();
        server.shutdown();
        total
    }
}

/// The job list of the full cached-experiment matrix (everything
/// [`crate::experiments::all_experiments`] will look up), mirroring each
/// figure's enumeration exactly. The `treebuild` experiment is not cached
/// (its native timings are intentionally re-measured), so it has no jobs
/// here.
pub fn all_jobs(scale: ExperimentScale) -> SweepScheduler {
    let mut s = SweepScheduler::new();
    for name in MATRIX_EXPERIMENTS {
        add_jobs_for(&mut s, name, scale);
    }
    s
}

/// The cached experiments making up the deterministic report matrix, in
/// paper order.
pub const MATRIX_EXPERIMENTS: [&str; 13] = [
    "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "fig12", "fig13",
    "fig14", "sc442", "fig15",
];

/// Job list for one named experiment (same names as
/// [`crate::experiments::by_name`]); `None` for unknown names and for
/// `treebuild`, which bypasses the caches.
pub fn jobs_for(name: &str, scale: ExperimentScale) -> Option<SweepScheduler> {
    let mut s = SweepScheduler::new();
    let name = name.to_ascii_lowercase();
    let known = matches!(
        name.as_str(),
        "table1"
            | "t1"
            | "fig6"
            | "f6"
            | "fig7"
            | "f7"
            | "fig8"
            | "f8"
            | "fig9"
            | "f9"
            | "fig10"
            | "f10"
            | "fig11"
            | "f11"
            | "table2"
            | "t2"
            | "fig12"
            | "f12"
            | "fig13"
            | "f13"
            | "fig14"
            | "f14"
            | "sc442"
            | "sc"
            | "fig15"
            | "f15"
    );
    if !known {
        return None;
    }
    add_jobs_for(&mut s, &name, scale);
    Some(s)
}

fn sizes(scale: ExperimentScale, paper: &[usize]) -> Vec<usize> {
    paper.iter().map(|&n| scale.size(n)).collect()
}

fn add_jobs_for(s: &mut SweepScheduler, name: &str, scale: ExperimentScale) {
    match name {
        "table1" | "t1" => {
            for cost in [
                platform::origin2000(1),
                platform::challenge(1),
                platform::typhoon0_hlrc(1),
                platform::paragon_hlrc(1),
            ] {
                for n in sizes(scale, &[8192, 16384, 32768, 65536, 131072, 524288]) {
                    s.add_seq(&cost, n);
                }
            }
        }
        "fig6" | "f6" => {
            let procs = scale.procs(16);
            let cost = platform::challenge(procs);
            for n in sizes(scale, &[8192, 16384, 32768, 65536, 131072]) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        "fig7" | "f7" => {
            let n = scale.size(131072);
            let cost = platform::challenge(16);
            for p in [4, 8, 16].map(|p| scale.procs(p)) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, p);
                }
            }
        }
        "fig8" | "f8" | "fig9" | "f9" => {
            let procs = scale.procs(30);
            let cost = platform::origin2000(procs);
            for n in sizes(scale, &[8192, 16384, 32768, 65536, 131072, 524288]) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        "fig10" | "f10" => {
            let n = scale.size(524288);
            for p in [16, 24, 30].map(|p| scale.procs(p)) {
                let cost = platform::origin2000(p);
                for alg in ALGS {
                    s.add_run(&cost, alg, n, p);
                }
            }
        }
        "fig11" | "f11" => {
            let n = scale.size(524288);
            let cost = platform::origin2000(30);
            for p in [1, 8, 16, 24, 30].map(|p| scale.procs(p)) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, p);
                }
            }
        }
        "table2" | "t2" => {
            let procs = scale.procs(16);
            let cost = platform::origin2000(procs);
            for n in sizes(scale, &[65536, 524288]) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        "fig12" | "f12" => {
            let procs = scale.procs(16);
            let cost = platform::paragon_hlrc(procs);
            for n in sizes(scale, &[8192, 16384, 32768, 65536]) {
                for alg in [Algorithm::Partree, Algorithm::Space] {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        "fig13" | "f13" | "fig14" | "f14" => {
            let procs = scale.procs(16);
            let cost = platform::typhoon0_hlrc(procs);
            for n in sizes(scale, &[8192, 16384, 32768, 65536]) {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        "sc442" | "sc" => {
            let procs = scale.procs(16);
            let cost = platform::typhoon0_sc(procs);
            for alg in ALGS {
                s.add_run(&cost, alg, scale.size(16384), procs);
            }
        }
        "fig15" | "f15" => {
            let n = scale.size(65536);
            let procs = scale.procs(16);
            for cost in [platform::typhoon0_hlrc(procs), platform::origin2000(procs)] {
                for alg in ALGS {
                    s.add_run(&cost, alg, n, procs);
                }
            }
        }
        _ => unreachable!("unknown experiment {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_deduplicated() {
        let mut s = SweepScheduler::new();
        let cost = platform::challenge(4);
        s.add_run(&cost, Algorithm::Space, 512, 4);
        s.add_run(&cost, Algorithm::Space, 512, 4);
        // 1 seq + 1 par.
        assert_eq!(s.len(), 2);
        s.add_run(&cost, Algorithm::Partree, 512, 4);
        // Shared seq baseline: only the par job is new.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn full_matrix_is_enumerated_and_shared_configs_collapse() {
        let s = all_jobs(ExperimentScale::Tiny);
        assert!(!s.is_empty());
        // Figures 8 and 9 (and 13/14) share all their runs; the dedup set
        // must therefore be much smaller than the naive enumeration.
        let naive = 24 + 2 * (25 + 15) + 2 * (30 + 15) + 15 + 25 + 10 + 2 * 20 + 5 + 10;
        assert!(
            s.len() < naive,
            "dedup had no effect: {} jobs of {naive} naive",
            s.len()
        );
        for name in MATRIX_EXPERIMENTS {
            let js = jobs_for(name, ExperimentScale::Tiny).expect("known name");
            assert!(!js.is_empty(), "{name} enumerated no jobs");
        }
        assert!(jobs_for("treebuild", ExperimentScale::Tiny).is_none());
        assert!(jobs_for("nope", ExperimentScale::Tiny).is_none());
    }

    #[test]
    fn concurrent_sweep_prewarms_deterministic_baselines() {
        // Prewarm a tiny slice of the matrix on 2 scheduler threads, then
        // verify a cached single-processor baseline (which is bitwise
        // deterministic) equals a direct recomputation.
        let cost = platform::challenge(2);
        let mut s = SweepScheduler::new();
        s.add_seq(&cost, 320);
        for alg in [Algorithm::Partree, Algorithm::Space] {
            s.add_run(&cost, alg, 256, 2);
        }
        // 2 distinct seq baselines + 2 par runs (the shared 256 baseline
        // dedups).
        let executed = s.run(2);
        assert_eq!(executed, 4);
        let (total, tree) = seq_time_on_platform(&cost, 256);
        let machine = ssmp::Machine::new(cost.clone(), 1);
        let bodies = Model::Plummer.generate(256, crate::runner::WORKLOAD_SEED);
        let direct = run_simulation(&machine, &SimConfig::new(Algorithm::Partree), &bodies);
        assert_eq!(total, direct.total_time());
        assert_eq!(tree, direct.tree_time());
        // The parallel runs landed in the cache too (hits return clones).
        let hit = run_cached(&cost, Algorithm::Space, 256, 2);
        assert_eq!(hit.seq_cycles, total);
    }
}
