//! Shared command-line flag parsing for the `repro`, `probe` and
//! `bench-serve` front ends.
//!
//! The binaries hand-roll their argument loops (no clap offline), which
//! historically meant each numeric flag reinvented its own error message —
//! some of them dropping the offending value from the diagnostic. These
//! helpers centralize the contract: every failure names the *flag*, echoes
//! the *value* verbatim, and states what was expected, so a typo like
//! `--group-size 1e6` is diagnosable from the error alone. They return
//! `Result` (rather than exiting) so the error paths are unit-testable;
//! the binaries wrap them in their `die()`.

use crate::runner::ExperimentScale;
use std::str::FromStr;

/// Fetch the value following `flag`, or a "needs a value" error.
pub fn require_value<'a>(
    flag: &str,
    value: Option<&'a str>,
    expected: &str,
) -> Result<&'a str, String> {
    value.ok_or_else(|| format!("{flag} needs a value (expected {expected})"))
}

/// Parse `value` for `flag`, echoing the offending value on failure.
pub fn parse_value<T: FromStr>(
    flag: &str,
    value: Option<&str>,
    expected: &str,
) -> Result<T, String> {
    let value = require_value(flag, value, expected)?;
    value
        .parse::<T>()
        .map_err(|_| format!("invalid {flag} '{value}' (expected {expected})"))
}

/// Parse a numeric flag with an inclusive lower bound (most count-like
/// flags want "integer >= 1").
pub fn parse_min(
    flag: &str,
    value: Option<&str>,
    min: usize,
    expected: &str,
) -> Result<usize, String> {
    let n: usize = parse_value(flag, value, expected)?;
    if n < min {
        let shown = value.unwrap_or_default();
        return Err(format!("invalid {flag} '{shown}' (expected {expected})"));
    }
    Ok(n)
}

/// Parse an `--scale` value, listing the valid names on failure.
pub fn parse_scale(flag: &str, value: Option<&str>) -> Result<ExperimentScale, String> {
    let expected = ExperimentScale::NAMES.join("|");
    let value = require_value(flag, value, &expected)?;
    ExperimentScale::parse(value)
        .ok_or_else(|| format!("unknown scale '{value}' (valid: {expected})"))
}

/// Parse a positional (non-flag) argument with the same echo guarantee.
pub fn parse_positional<T: FromStr>(name: &str, value: &str, expected: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("invalid {name} '{value}' (expected {expected})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_values_name_the_flag_and_expectation() {
        let err = parse_value::<usize>("--jobs", None, "integer >= 1").unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("integer >= 1"), "{err}");
    }

    #[test]
    fn bad_values_are_echoed_verbatim() {
        let err = parse_value::<usize>("--group-size", Some("1e6"), "integer >= 0").unwrap_err();
        assert!(err.contains("--group-size"), "{err}");
        assert!(err.contains("'1e6'"), "{err}");
        let err = parse_value::<f64>("--max-regress", Some("lots"), "fraction >= 0").unwrap_err();
        assert!(err.contains("'lots'"), "{err}");
        // Negative numbers fail usize parsing and still echo.
        let err = parse_value::<usize>("--jobs", Some("-3"), "integer >= 1").unwrap_err();
        assert!(err.contains("'-3'"), "{err}");
    }

    #[test]
    fn good_values_parse() {
        assert_eq!(parse_value::<usize>("--jobs", Some("4"), "n").unwrap(), 4);
        assert_eq!(
            parse_value::<f64>("--max-regress", Some("0.25"), "f").unwrap(),
            0.25
        );
        assert_eq!(
            require_value("--json", Some("x.json"), "path").unwrap(),
            "x.json"
        );
    }

    #[test]
    fn minimum_bounds_are_enforced_with_echo() {
        assert_eq!(
            parse_min("--jobs", Some("2"), 1, "integer >= 1").unwrap(),
            2
        );
        let err = parse_min("--jobs", Some("0"), 1, "integer >= 1").unwrap_err();
        assert!(err.contains("'0'"), "{err}");
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn scale_errors_list_valid_names() {
        assert!(matches!(
            parse_scale("--scale", Some("tiny")),
            Ok(ExperimentScale::Tiny)
        ));
        let err = parse_scale("--scale", Some("huge")).unwrap_err();
        assert!(err.contains("'huge'"), "{err}");
        for name in ExperimentScale::NAMES {
            assert!(err.contains(name), "{err} missing {name}");
        }
        let err = parse_scale("--scale", None).unwrap_err();
        assert!(err.contains("--scale"), "{err}");
    }

    #[test]
    fn positional_errors_echo_too() {
        let err = parse_positional::<usize>("n", "many", "body count").unwrap_err();
        assert!(err.contains("n 'many'"), "{err}");
        assert_eq!(
            parse_positional::<usize>("n", "512", "body count").unwrap(),
            512
        );
    }
}
