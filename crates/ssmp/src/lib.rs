//! # ssmp — a shared-address-space multiprocessor simulator
//!
//! Substrate for reproducing Shan & Singh (IPPS 1998): runs the `bh-core`
//! algorithms unmodified on cost models of the paper's four platforms —
//! SGI Challenge (bus MESI), SGI Origin 2000 (directory CC-NUMA), Intel
//! Paragon (page-grained HLRC shared virtual memory in software), and
//! Wisconsin Typhoon-zero (both HLRC and a fine-grained sequentially
//! consistent software protocol).
//!
//! ```
//! use bh_core::prelude::*;
//! use ssmp::{platform, Machine};
//!
//! let bodies = Model::Plummer.generate(512, 1);
//! let machine = Machine::new(platform::origin2000(4), 4);
//! let mut cfg = SimConfig::new(Algorithm::Space);
//! cfg.warmup_steps = 1;
//! cfg.measured_steps = 1;
//! let stats = run_simulation(&machine, &cfg, &bodies);
//! stats.assert_valid();
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod attr;
pub mod cache;
pub mod config;
pub mod machine;
pub mod platform;

pub use attr::{slot_name, AttrCell, AttrTable, ATTR_SLOTS, SETUP_SLOT};
pub use config::{CostModel, Protocol};
pub use machine::{Machine, SimCtx};
