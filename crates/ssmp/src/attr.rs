//! Attributed telemetry: per-(region × pipeline-stage) counters.
//!
//! When attribution is enabled on a [`crate::Machine`], every simulated
//! cache miss, page fault, invalidation and lock wait is charged — in
//! addition to the per-context aggregate counters — to an [`AttrCell`]
//! keyed by the [`Region`] the access hit and the pipeline stage the
//! processor was executing. The increments are placed at exactly the same
//! program points as the aggregate increments, so the per-region counters
//! *tile* the aggregates: summing any counter over all regions and slots
//! reproduces the corresponding [`bh_core::env::CtxStats`] field exactly.
//!
//! Attribution never touches the virtual clock, so enabling it cannot
//! change any simulated timing; disabling it reduces the hooks to a
//! never-taken `Option` check on the slow paths only.

use bh_core::env::{Phase, Region};

/// Number of pipeline-stage slots: the four phases plus one slot for
/// activity outside any phase (setup, inter-step glue).
pub const ATTR_SLOTS: usize = 5;

/// The slot charged while the processor is outside any [`Phase`].
pub const SETUP_SLOT: usize = ATTR_SLOTS - 1;

/// Stable lower-case name of a pipeline-stage slot.
pub fn slot_name(slot: usize) -> &'static str {
    match slot {
        0..=3 => Phase::ALL[slot].name(),
        _ => "setup",
    }
}

/// Counters for one (region × stage) cell. Fields that mirror an aggregate
/// [`bh_core::env::CtxStats`] field tile it exactly; `invalidations` is
/// attribution-only (invalidation messages that killed a resident line in
/// this processor's private cache — the coherence traffic the aggregate
/// stats fold into miss latencies).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttrCell {
    /// Misses served from local memory (tiles `local_misses`).
    pub local_misses: u64,
    /// Misses served remotely (tiles `remote_misses`).
    pub remote_misses: u64,
    /// Software page faults (tiles `page_faults`).
    pub page_faults: u64,
    /// Invalidations received that dropped a resident line.
    pub invalidations: u64,
    /// Lock acquisitions on locks guarding this region (tiles
    /// `lock_acquires`).
    pub lock_acquires: u64,
    /// Cycles waited on locks guarding this region (tiles `lock_wait`).
    pub lock_wait: u64,
}

impl AttrCell {
    /// Field-wise accumulation.
    pub fn accumulate(&mut self, o: &AttrCell) {
        self.local_misses += o.local_misses;
        self.remote_misses += o.remote_misses;
        self.page_faults += o.page_faults;
        self.invalidations += o.invalidations;
        self.lock_acquires += o.lock_acquires;
        self.lock_wait += o.lock_wait;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == AttrCell::default()
    }
}

/// One processor's attribution table: an [`AttrCell`] per
/// (region, pipeline-stage slot) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrTable {
    cells: Box<[AttrCell]>,
}

impl AttrTable {
    pub fn new() -> AttrTable {
        AttrTable {
            cells: vec![AttrCell::default(); Region::COUNT * ATTR_SLOTS].into_boxed_slice(),
        }
    }

    #[inline]
    fn idx(region: Region, slot: usize) -> usize {
        debug_assert!(slot < ATTR_SLOTS);
        region.index() * ATTR_SLOTS + slot
    }

    #[inline]
    pub fn cell(&self, region: Region, slot: usize) -> &AttrCell {
        &self.cells[Self::idx(region, slot)]
    }

    #[inline]
    pub fn cell_mut(&mut self, region: Region, slot: usize) -> &mut AttrCell {
        &mut self.cells[Self::idx(region, slot)]
    }

    /// Sum over all stage slots for one region.
    pub fn region_total(&self, region: Region) -> AttrCell {
        let mut t = AttrCell::default();
        for slot in 0..ATTR_SLOTS {
            t.accumulate(self.cell(region, slot));
        }
        t
    }

    /// Sum over all regions for one stage slot.
    pub fn slot_total(&self, slot: usize) -> AttrCell {
        let mut t = AttrCell::default();
        for region in Region::ALL {
            t.accumulate(self.cell(region, slot));
        }
        t
    }

    /// Grand total over every cell. By the tiling property this equals the
    /// processor's aggregate counters for the mirrored fields.
    pub fn total(&self) -> AttrCell {
        let mut t = AttrCell::default();
        for c in self.cells.iter() {
            t.accumulate(c);
        }
        t
    }

    /// Field-wise accumulation of another table (e.g. summing processors).
    pub fn accumulate(&mut self, o: &AttrTable) {
        for (c, oc) in self.cells.iter_mut().zip(o.cells.iter()) {
            c.accumulate(oc);
        }
    }
}

impl Default for AttrTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cover_phases_plus_setup() {
        assert_eq!(ATTR_SLOTS, Phase::ALL.len() + 1);
        for p in Phase::ALL {
            assert_eq!(slot_name(p.index()), p.name());
        }
        assert_eq!(slot_name(SETUP_SLOT), "setup");
    }

    #[test]
    fn table_indexing_and_totals() {
        let mut t = AttrTable::new();
        t.cell_mut(Region::TreeCells, 0).remote_misses = 3;
        t.cell_mut(Region::TreeCells, SETUP_SLOT).remote_misses = 2;
        t.cell_mut(Region::Bodies, 2).local_misses = 7;
        assert_eq!(t.region_total(Region::TreeCells).remote_misses, 5);
        assert_eq!(t.slot_total(0).remote_misses, 3);
        assert_eq!(t.total().remote_misses, 5);
        assert_eq!(t.total().local_misses, 7);
        assert!(t.cell(Region::FlatTree, 1).is_zero());
        let mut sum = AttrTable::new();
        sum.accumulate(&t);
        sum.accumulate(&t);
        assert_eq!(sum.total().remote_misses, 10);
    }
}
