//! Per-processor fast-path state: a private cache (eager protocols) or page
//! table (HLRC). Both are bounded maps with FIFO eviction — crude but cheap,
//! and eviction behaviour only needs to be plausible, not exact.

use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimal multiplicative hasher for `u64` grain numbers — the simulator's
/// fast path does one map lookup per memory access, so SipHash would be a
/// measurable tax on every simulated instruction.
#[derive(Default)]
pub struct GrainHasher(u64);

impl Hasher for GrainHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (v ^ (v >> 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

/// HashMap keyed by grain numbers with the fast hasher.
pub type GrainMap<V> = std::collections::HashMap<u64, V, BuildHasherDefault<GrainHasher>>;
type HashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<GrainHasher>>;

/// State of a privately cached grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Held {
    Shared,
    Exclusive,
}

/// Bounded private cache for eager (line-grained) protocols.
pub struct PrivateCache {
    map: HashMap<u64, Held>,
    fifo: VecDeque<u64>,
    capacity: usize,
}

impl PrivateCache {
    pub fn new(capacity: usize) -> Self {
        PrivateCache {
            map: HashMap::with_capacity_and_hasher(capacity.min(1 << 20), Default::default()),
            fifo: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(16),
        }
    }

    #[inline]
    pub fn get(&self, grain: u64) -> Option<Held> {
        self.map.get(&grain).copied()
    }

    /// Insert/upgrade a grain; returns any evicted grain.
    pub fn put(&mut self, grain: u64, held: Held) -> Option<u64> {
        if self.map.insert(grain, held).is_none() {
            self.fifo.push_back(grain);
            if self.fifo.len() > self.capacity {
                // Evict FIFO entries until we find one still resident.
                while let Some(victim) = self.fifo.pop_front() {
                    if victim != grain && self.map.remove(&victim).is_some() {
                        return Some(victim);
                    }
                    if self.fifo.is_empty() {
                        break;
                    }
                }
            }
        }
        None
    }

    /// Drop a grain; returns whether a resident line was actually killed
    /// (attribution counts real coherence kills, not redundant messages).
    #[inline]
    pub fn invalidate(&mut self, grain: u64) -> bool {
        self.map.remove(&grain).is_some()
    }

    /// Downgrade exclusive → shared (another processor read the line).
    #[inline]
    pub fn downgrade(&mut self, grain: u64) {
        if let Some(h) = self.map.get_mut(&grain) {
            *h = Held::Shared;
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-page entry of the HLRC page table.
#[derive(Debug, Clone, Copy)]
pub struct PageEntry {
    /// Version of the page contents this processor last fetched/validated.
    pub version: u64,
    /// The acquire-epoch at which this entry was last checked against the
    /// global version. Entries from older epochs must be revalidated (this
    /// is the lazy invalidation of LRC).
    pub checked_epoch: u64,
    /// Whether this processor has a twin and is writing the page in the
    /// current interval.
    pub writing: bool,
}

/// HLRC page table for one processor.
pub struct PageTable {
    map: HashMap<u64, PageEntry>,
    /// Pages written in the current interval (flushed at release).
    pub dirty: Vec<u64>,
}

impl PageTable {
    pub fn new() -> Self {
        PageTable {
            map: HashMap::default(),
            dirty: Vec::new(),
        }
    }

    #[inline]
    pub fn get(&self, page: u64) -> Option<PageEntry> {
        self.map.get(&page).copied()
    }

    #[inline]
    pub fn set(&mut self, page: u64, e: PageEntry) {
        self.map.insert(page, e);
    }

    #[inline]
    pub fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        self.map.get_mut(&page)
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_and_miss() {
        let mut c = PrivateCache::new(100);
        assert_eq!(c.get(5), None);
        c.put(5, Held::Shared);
        assert_eq!(c.get(5), Some(Held::Shared));
        c.put(5, Held::Exclusive);
        assert_eq!(c.get(5), Some(Held::Exclusive));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = PrivateCache::new(100);
        c.put(1, Held::Exclusive);
        c.downgrade(1);
        assert_eq!(c.get(1), Some(Held::Shared));
        c.invalidate(1);
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = PrivateCache::new(16);
        for g in 0..100u64 {
            c.put(g, Held::Shared);
        }
        assert!(c.len() <= 17, "cache grew to {}", c.len());
        // Recent entries survive FIFO eviction.
        assert_eq!(c.get(99), Some(Held::Shared));
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn page_table_roundtrip() {
        let mut pt = PageTable::new();
        assert!(pt.get(7).is_none());
        pt.set(
            7,
            PageEntry {
                version: 3,
                checked_epoch: 1,
                writing: false,
            },
        );
        let e = pt.get(7).unwrap();
        assert_eq!(e.version, 3);
        pt.entry_mut(7).unwrap().writing = true;
        assert!(pt.get(7).unwrap().writing);
    }
}
