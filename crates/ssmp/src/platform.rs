//! The four platforms of the paper, as cost-model presets (§3).
//!
//! Latencies are expressed in cycles of each machine's processor clock and
//! derived from the figures the paper quotes (secondary-miss penalty, local
//! and remote access times, message latencies) plus published protocol
//! costs for HLRC-style SVM systems. The `procs` argument only names the
//! configuration; the machine size is fixed when a `Machine` is built.

use crate::config::{CostModel, Protocol};

/// SGI Challenge: 150 MHz R4400, POWERpath-2 bus, centralized memory,
/// 4-state write-invalidate snooping. Secondary cache miss ≈ 1100 ns ≈ 165
/// cycles; every miss goes to the shared bus, so there is no local/remote
/// distinction. Hardware locks are cheap.
pub fn challenge(_procs: usize) -> CostModel {
    CostModel {
        name: "SGI-Challenge".into(),
        protocol: Protocol::BusMesi,
        grain: 128,
        cpu_mhz: 150,
        cache_grains: 4 * 1024 * 1024 / 128, // 4 MB L2
        t_hit: 1,
        t_local_miss: 165,
        t_remote_miss: 165, // bus: uniform
        t_invalidate: 20,
        t_lock: 30,
        t_lock_transfer: 60,
        t_barrier: 400,
        t_page_fault: 0,
        t_twin: 0,
        t_diff: 0,
        t_check: 0,
        t_notice: 0,
        t_fault_occupancy: 0,
        t_rmw_occupancy: 150,
    }
}

/// SGI Origin 2000: 200 MHz R10000, hypercube interconnect, distributed
/// directory protocol, 128 B lines. Local miss ≤ 313 ns ≈ 62 cycles, remote
/// ≤ 730 ns ≈ 146 cycles.
pub fn origin2000(_procs: usize) -> CostModel {
    CostModel {
        name: "SGI-Origin2000".into(),
        protocol: Protocol::Directory,
        grain: 128,
        cpu_mhz: 200,
        cache_grains: 4 * 1024 * 1024 / 128, // 4 MB L2 per processor
        t_hit: 1,
        t_local_miss: 62,
        t_remote_miss: 146,
        t_invalidate: 40,
        t_lock: 40,
        t_lock_transfer: 150,
        t_barrier: 1_000,
        t_page_fault: 0,
        t_twin: 0,
        t_diff: 0,
        t_check: 0,
        t_notice: 0,
        t_fault_occupancy: 0,
        t_rmw_occupancy: 400,
    }
}

/// Intel Paragon running HLRC shared virtual memory at 4 KB pages: 50 MHz
/// i860 compute processor plus a dedicated communication coprocessor; one-way
/// 4-byte message ≈ 50 µs ≈ 2500 cycles; a 4 KB page transfer at 200 MB/s/link
/// adds ≈ 20 µs; the fault + request + map software path brings a remote page
/// fault to ≈ 150 µs ≈ 7500 cycles. All protocol activity (diffs, write
/// notices, lock transfers) rides on these messages, which is what makes
/// synchronization so expensive.
pub fn paragon_hlrc(_procs: usize) -> CostModel {
    CostModel {
        name: "Paragon-HLRC".into(),
        protocol: Protocol::Hlrc,
        grain: 4096,
        cpu_mhz: 50,
        cache_grains: 16 * 1024, // resident page table (64 MB / 4 KB)
        t_hit: 1,
        t_local_miss: 40,
        t_remote_miss: 40, // non-fault misses: ordinary cache service
        t_invalidate: 0,
        t_lock: 10_000, // ≈ 200 µs software lock path (request + interrupt + grant)
        t_lock_transfer: 18_000, // lock acquisition rides on the page protocol: ~3 messages + lock-page operations
        t_barrier: 10_000,
        t_page_fault: 7_500,
        t_twin: 900,              // copy 4 KB locally
        t_diff: 1_800,            // make + send diff
        t_check: 35,              // per-page revalidation at first touch after acquire
        t_notice: 1_200,          // per write-notice processed at an acquire (software)
        t_fault_occupancy: 4_000, // handler occupancy at the page's home
        t_rmw_occupancy: 0,       // RMW rides on the page protocol
    }
}

/// Typhoon-zero running the same HLRC protocol: 66 MHz HyperSPARC with a
/// dedicated protocol processor and Myrinet. Messages are far cheaper than
/// the Paragon's (≈ 20 µs round trip for small messages through the SBus),
/// but the page-based software protocol still concentrates all coherence
/// work at synchronization points.
pub fn typhoon0_hlrc(_procs: usize) -> CostModel {
    CostModel {
        name: "Typhoon0-HLRC".into(),
        protocol: Protocol::Hlrc,
        grain: 4096,
        cpu_mhz: 66,
        cache_grains: 16 * 1024,
        t_hit: 1,
        t_local_miss: 35,
        t_remote_miss: 35,
        t_invalidate: 0,
        t_lock: 5_000,          // ≈ 75 µs software lock path
        t_lock_transfer: 9_000, // ≈ 135 µs: 3-hop transfer + lock-page operations
        t_barrier: 6_000,
        t_page_fault: 4_600, // ≈ 70 µs page fault service
        t_twin: 1_000,
        t_diff: 1_600,
        t_check: 30,
        t_notice: 600,
        t_fault_occupancy: 2_600,
        t_rmw_occupancy: 0, // RMW rides on the page protocol
    }
}

/// Typhoon-zero under the fine-grained sequentially consistent protocol it
/// was designed for: hardware access control at 64 B blocks, protocol
/// handlers in software on the second processor. Misses are much more
/// expensive than hardware coherence (software handler + Myrinet message,
/// several microseconds), but synchronization carries no protocol baggage.
pub fn typhoon0_sc(_procs: usize) -> CostModel {
    CostModel {
        name: "Typhoon0-SC".into(),
        protocol: Protocol::FineGrainSc,
        grain: 64,
        cpu_mhz: 66,
        cache_grains: 1024 * 1024 / 64, // 1 MB
        t_hit: 1,
        t_local_miss: 30,
        t_remote_miss: 700, // ≈ 10 µs software-mediated remote miss
        t_invalidate: 250,
        t_lock: 60,
        t_lock_transfer: 700,
        t_barrier: 3_000,
        t_page_fault: 0,
        t_twin: 0,
        t_diff: 0,
        t_check: 0,
        t_notice: 0,
        t_fault_occupancy: 0,
        t_rmw_occupancy: 700, // software handler per remote atomic
    }
}

/// All five platform configurations in paper order.
pub fn all_platforms(procs: usize) -> Vec<CostModel> {
    vec![
        challenge(procs),
        origin2000(procs),
        paragon_hlrc(procs),
        typhoon0_hlrc(procs),
        typhoon0_sc(procs),
    ]
}

/// Look up a platform by (case-insensitive) name.
pub fn by_name(name: &str, procs: usize) -> Option<CostModel> {
    match name.to_ascii_lowercase().as_str() {
        "challenge" | "sgi-challenge" => Some(challenge(procs)),
        "origin" | "origin2000" | "sgi-origin2000" => Some(origin2000(procs)),
        "paragon" | "paragon-hlrc" => Some(paragon_hlrc(procs)),
        "typhoon0" | "typhoon0-hlrc" | "t0-hlrc" => Some(typhoon0_hlrc(procs)),
        "typhoon0-sc" | "t0-sc" => Some(typhoon0_sc(procs)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_protocols() {
        assert_eq!(challenge(16).protocol, Protocol::BusMesi);
        assert_eq!(origin2000(30).protocol, Protocol::Directory);
        assert_eq!(paragon_hlrc(16).protocol, Protocol::Hlrc);
        assert_eq!(typhoon0_hlrc(16).protocol, Protocol::Hlrc);
        assert_eq!(typhoon0_sc(16).protocol, Protocol::FineGrainSc);
    }

    #[test]
    fn svm_platforms_use_pages() {
        assert_eq!(paragon_hlrc(16).grain, 4096);
        assert_eq!(typhoon0_hlrc(16).grain, 4096);
        assert!(challenge(16).grain <= 128);
    }

    #[test]
    fn remote_misses_cost_more_on_numa() {
        let o = origin2000(16);
        assert!(o.t_remote_miss > o.t_local_miss);
        let c = challenge(16);
        assert_eq!(c.t_remote_miss, c.t_local_miss);
    }

    #[test]
    fn svm_sync_is_expensive() {
        // The paper's central observation, encoded as a sanity check: a lock
        // transfer on the SVM platforms costs orders of magnitude more than
        // on the hardware-coherent ones.
        let hw = origin2000(16).t_lock_transfer;
        let svm = paragon_hlrc(16).t_lock_transfer;
        assert!(svm > 10 * hw);
    }

    #[test]
    fn name_lookup() {
        for (name, expect) in [
            ("challenge", "SGI-Challenge"),
            ("ORIGIN", "SGI-Origin2000"),
            ("paragon", "Paragon-HLRC"),
            ("typhoon0", "Typhoon0-HLRC"),
            ("typhoon0-sc", "Typhoon0-SC"),
        ] {
            assert_eq!(by_name(name, 8).unwrap().name, expect);
        }
        assert!(by_name("vax", 8).is_none());
    }
}
