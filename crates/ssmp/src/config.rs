//! Cost models for simulated shared-address-space platforms.
//!
//! All latencies are in processor clock cycles of the modeled machine. They
//! are derived from the platform descriptions in §3 of the paper (and the
//! machines' published specifications); absolute values are approximate by
//! design — the simulator reproduces the *shape* of the paper's results, not
//! absolute seconds.

/// Consistency/coherence protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Eager write-invalidate at cache-line granularity over a shared bus:
    /// every miss costs the same (centralized memory). SGI Challenge.
    BusMesi,
    /// Eager write-invalidate, directory-based CC-NUMA: local and remote
    /// misses differ. SGI Origin 2000.
    Directory,
    /// Home-based lazy release consistency at page granularity in software:
    /// protocol activity happens at synchronization; multiple writers with
    /// twins/diffs; acquirers invalidate written pages lazily.
    /// Intel Paragon SVM, Typhoon-zero HLRC.
    Hlrc,
    /// Sequentially consistent software protocol at fine (cache-line)
    /// granularity with hardware access control: protocol activity at each
    /// memory operation, cheap synchronization. Typhoon-zero SC.
    FineGrainSc,
}

impl Protocol {
    /// Lazy protocols defer coherence to synchronization points.
    pub fn is_lazy(self) -> bool {
        matches!(self, Protocol::Hlrc)
    }

    /// Protocols whose synchronization is mediated by software handlers
    /// (lock hand-offs serialize through a protocol processor), as opposed
    /// to hardware cache-coherent lock primitives.
    pub fn software_sync(self) -> bool {
        matches!(self, Protocol::Hlrc | Protocol::FineGrainSc)
    }
}

/// Full platform cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub name: String,
    pub protocol: Protocol,
    /// Coherence granularity in bytes (cache line for eager protocols, page
    /// for HLRC).
    pub grain: u32,
    /// Processor clock in MHz (to report seconds).
    pub cpu_mhz: u64,
    /// Private cache capacity in grains (lines or resident pages).
    pub cache_grains: usize,

    // --- per-access costs ---
    /// Cache/page-table hit.
    pub t_hit: u64,
    /// Miss served from local memory (or the bus, for BusMesi).
    pub t_local_miss: u64,
    /// Miss served remotely (ignored by BusMesi).
    pub t_remote_miss: u64,
    /// Extra cost at the writer per remote sharer invalidated (eager).
    pub t_invalidate: u64,

    // --- synchronization ---
    /// Base cost of acquiring an uncontended lock.
    pub t_lock: u64,
    /// Extra cost when a lock is transferred between processors.
    pub t_lock_transfer: u64,
    /// Base cost of a barrier episode.
    pub t_barrier: u64,

    // --- software/SVM costs ---
    /// Full page-fault service (fault + request + transfer + map), HLRC.
    pub t_page_fault: u64,
    /// Twin creation on first write to a page in an interval, HLRC.
    pub t_twin: u64,
    /// Diff creation/flush per dirty page at release, HLRC.
    pub t_diff: u64,
    /// Per-page write-notice / revalidation check after an acquire, HLRC.
    pub t_check: u64,
    /// Per write-notice processing cost at an acquire: every page interval
    /// flushed anywhere in the system since this processor's last acquire
    /// must be received and recorded. This is the term that grows with
    /// global synchronization traffic and makes fine-grained locking
    /// intractable on SVM platforms.
    pub t_notice: u64,
    /// Home-side service occupancy per page fault: concurrent faults on the
    /// same page serialize at its home (protocol handler occupancy), so a
    /// hot page becomes a global serial bottleneck.
    pub t_fault_occupancy: u64,
    /// Directory/memory occupancy per atomic read-modify-write on a line:
    /// RMW storms on one hot line (e.g. a shared allocation counter)
    /// serialize at its home. Eager protocols only.
    pub t_rmw_occupancy: u64,
}

impl CostModel {
    /// Convert simulated cycles to seconds on the modeled machine.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.cpu_mhz as f64 * 1e6)
    }

    /// Number of `grain`-sized units an access [addr, addr+bytes) touches.
    pub fn grains_of(&self, addr: u64, bytes: u32) -> std::ops::RangeInclusive<u64> {
        let g = self.grain as u64;
        (addr / g)..=((addr + bytes.max(1) as u64 - 1) / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn grain_ranges() {
        let m = platform::origin2000(4);
        let g = m.grain as u64;
        assert_eq!(m.grains_of(0, 4).count(), 1);
        assert_eq!(m.grains_of(g - 1, 2).count(), 2);
        assert_eq!(m.grains_of(g, g as u32).count(), 1);
        assert_eq!(m.grains_of(0, (3 * g) as u32).count(), 3);
    }

    #[test]
    fn seconds_conversion() {
        let m = platform::challenge(4);
        let s = m.cycles_to_seconds(m.cpu_mhz * 1_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_flag() {
        assert!(Protocol::Hlrc.is_lazy());
        assert!(!Protocol::Directory.is_lazy());
        assert!(!Protocol::BusMesi.is_lazy());
        assert!(!Protocol::FineGrainSc.is_lazy());
    }
}
