//! The simulated multiprocessor.
//!
//! A [`Machine`] executes the *same* algorithm code as the native
//! environment — worker threads run for real, locks really exclude, barriers
//! really rendezvous — while every shared-memory access is routed through a
//! coherence-protocol cost model that advances a per-processor virtual
//! clock (in cycles of the modeled machine).
//!
//! ## Simulation model
//!
//! * **Direct execution, virtual time.** Reads/writes consult sharded global
//!   protocol state and charge latencies locally; no global per-access
//!   interleaving is enforced.
//! * **Locks synchronize virtual time.** A lock acquire cannot complete (in
//!   virtual time) before the previous holder's virtual release, and under
//!   HLRC the holder's release includes its diff flushes and any page faults
//!   it suffered inside the critical section — this models the critical-
//!   section dilation and serialization that the paper identifies as the
//!   SVM killer.
//! * **Eager protocols** (bus MESI, directory, fine-grain SC) keep per-line
//!   sharer sets and deliver invalidations/downgrades to private caches via
//!   per-processor queues drained on each access.
//! * **HLRC** keeps per-page version counters; a release bumps the versions
//!   of pages the releaser dirtied (twin/diff costs); an acquire opens a new
//!   epoch, forcing lazy revalidation of every cached page on first use —
//!   pages that actually changed pay a full software page fault.

use crate::attr::{AttrTable, SETUP_SLOT};
use crate::cache::GrainMap;
use crate::cache::{Held, PageEntry, PageTable, PrivateCache};
use crate::config::CostModel;
use bh_core::env::{CtxStats, Env, Phase, Placement, Region, VAddr};
use bh_core::shared::RegionMap;
use bh_core::sync::{Mutex, RawLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const SHARDS: usize = 256;
const LOCK_TABLE: usize = 4096;
/// Base of the global allocation region.
const GLOBAL_BASE: u64 = 0x1_0000;
/// Each processor's local region starts at `(p+1) << LOCAL_SHIFT`.
const LOCAL_SHIFT: u32 = 40;

#[derive(Default)]
struct LineState {
    sharers: u64,
    exclusive: i16, // -1 = none
    /// Virtual time at which the line's home finishes servicing the most
    /// recent atomic operation (RMW occupancy).
    service_end: u64,
}

#[derive(Default)]
struct Shard {
    lines: GrainMap<LineState>,
    /// HLRC: per-page protocol metadata.
    pages: GrainMap<PageMeta>,
}

/// HLRC per-page global state: the contents version (bumped at each release
/// that dirtied the page) and the virtual time at which the page's home
/// finishes servicing the most recent fault (fault-service occupancy).
#[derive(Default, Clone, Copy)]
struct PageMeta {
    version: u64,
    service_end: u64,
}

struct LockVt {
    last_release: u64,
    last_owner: i16,
    /// Virtual time at which the current holder acquired the lock.
    acquire_clock: u64,
    /// EWMA of recent critical-section lengths (virtual cycles).
    cs_last: u64,
}

struct LockSlot {
    real: RawLock,
    vt: Mutex<LockVt>,
    /// Real-time queue depth: processors currently blocked on `real`.
    waiters: std::sync::atomic::AtomicU32,
}

enum QMsg {
    Invalidate(u64),
    Downgrade(u64),
}

struct InvalQueue {
    flag: AtomicBool,
    msgs: Mutex<Vec<QMsg>>,
}

/// The simulated machine. Implements [`bh_core::env::Env`].
pub struct Machine {
    cost: CostModel,
    procs: usize,
    shards: Box<[Mutex<Shard>]>,
    locks: Box<[LockSlot]>,
    rendezvous: Barrier,
    barrier_clocks: Box<[AtomicU64]>,
    queues: Box<[InvalQueue]>,
    next_global: AtomicU64,
    next_local: Box<[AtomicU64]>,
    /// HLRC: total write notices (dirty-page flushes) issued system-wide.
    notices: AtomicU64,
    /// Attributed telemetry enabled? Set before the machine is shared (see
    /// [`Machine::with_attribution`]); when false the hooks reduce to a
    /// never-taken `Option` check on the slow paths.
    attribution: bool,
    /// Region registry. Tagging happens single-threaded during world/tree
    /// setup; each context snapshots the `Arc` at [`Env::make_ctx`], so the
    /// hot path reads the map without taking this mutex (copy-on-write).
    regions: Mutex<Arc<RegionMap>>,
    /// Per-processor mirrors of each context's attribution table, refreshed
    /// on every [`Env::stats`] call. Contexts are owned by the worker
    /// closures and unreachable after a run; the application snapshots
    /// stats at every phase boundary and at run end, so the mirror is
    /// complete once the run returns.
    attr_mirror: Box<[Mutex<AttrTable>]>,
}

/// Per-processor context (cache/page table, clock, statistics).
pub struct SimCtx {
    proc: usize,
    clock: u64,
    epoch: u64,
    /// Global notice count at this processor's last acquire.
    notices_seen: u64,
    cache: PrivateCache,
    pages: PageTable,
    // statistics
    local_misses: u64,
    remote_misses: u64,
    page_faults: u64,
    lock_acquires: u64,
    lock_wait: u64,
    barrier_wait: u64,
    /// Attribution state; `None` when attribution is disabled.
    attr: Option<Box<SimAttr>>,
}

/// Attribution state of one context (allocated only when enabled).
struct SimAttr {
    /// Snapshot of the machine's region registry at context creation.
    regions: Arc<RegionMap>,
    /// Current pipeline-stage slot ([`SETUP_SLOT`] outside any phase).
    slot: usize,
    table: AttrTable,
}

impl SimAttr {
    /// Charge one attributed event at `addr` via `f`. Never touches the
    /// clock: attribution cannot change simulated timings.
    #[inline]
    fn charge(&mut self, addr: VAddr, f: impl FnOnce(&mut crate::attr::AttrCell)) {
        f(self.table.cell_mut(self.regions.lookup(addr), self.slot))
    }
}

impl Machine {
    pub fn new(cost: CostModel, procs: usize) -> Machine {
        assert!(
            (1..=64).contains(&procs),
            "1..=64 simulated processors supported"
        );
        Machine {
            cost,
            procs,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            locks: (0..LOCK_TABLE)
                .map(|_| LockSlot {
                    real: RawLock::new(),
                    vt: Mutex::new(LockVt {
                        last_release: 0,
                        last_owner: -1,
                        acquire_clock: 0,
                        cs_last: 0,
                    }),
                    waiters: std::sync::atomic::AtomicU32::new(0),
                })
                .collect(),
            rendezvous: Barrier::new(procs),
            barrier_clocks: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            queues: (0..procs)
                .map(|_| InvalQueue {
                    flag: AtomicBool::new(false),
                    msgs: Mutex::new(Vec::new()),
                })
                .collect(),
            next_global: AtomicU64::new(GLOBAL_BASE),
            next_local: (0..procs)
                .map(|p| AtomicU64::new((p as u64 + 1) << LOCAL_SHIFT))
                .collect(),
            notices: AtomicU64::new(0),
            attribution: false,
            regions: Mutex::new(Arc::new(RegionMap::new())),
            attr_mirror: (0..procs).map(|_| Mutex::new(AttrTable::new())).collect(),
        }
    }

    /// Enable attributed telemetry: every simulated miss, fault,
    /// invalidation and lock wait is additionally charged to a
    /// (region × pipeline stage) cell. Must be called before the machine is
    /// shared with workers. Attribution never touches the virtual clock, so
    /// all simulated timings and counters are bitwise identical to a
    /// machine without it.
    pub fn with_attribution(mut self) -> Machine {
        self.attribution = true;
        self
    }

    /// Whether attributed telemetry is enabled.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution
    }

    /// Per-processor attribution tables as of each processor's most recent
    /// [`Env::stats`] snapshot (the application snapshots at every phase
    /// boundary and at run end). `None` when attribution is disabled.
    pub fn attribution(&self) -> Option<Vec<AttrTable>> {
        self.attribution
            .then(|| self.attr_mirror.iter().map(|m| m.lock().clone()).collect())
    }

    /// Current snapshot of the region registry.
    pub fn region_map(&self) -> Arc<RegionMap> {
        self.regions.lock().clone()
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Home processor of a grain (by its base address).
    #[inline]
    fn home_of(&self, addr: u64) -> usize {
        let region = addr >> LOCAL_SHIFT;
        if region == 0 {
            // Global region: pages homed round-robin.
            ((addr / self.cost.grain.max(4096) as u64) % self.procs as u64) as usize
        } else {
            ((region - 1) as usize).min(self.procs - 1)
        }
    }

    #[inline]
    fn shard_of(&self, grain: u64) -> &Mutex<Shard> {
        &self.shards[(grain as usize) & (SHARDS - 1)]
    }

    /// Deliver an invalidation/downgrade to `target`'s queue.
    fn post(&self, target: usize, msg: QMsg) {
        let q = &self.queues[target];
        q.msgs.lock().push(msg);
        q.flag.store(true, Ordering::Release);
    }

    /// Drain this processor's invalidation queue into its private cache.
    #[inline]
    fn drain(&self, ctx: &mut SimCtx) {
        if self.queues[ctx.proc].flag.swap(false, Ordering::AcqRel) {
            let msgs = std::mem::take(&mut *self.queues[ctx.proc].msgs.lock());
            let grain_bytes = self.cost.grain as u64;
            for m in msgs {
                match m {
                    QMsg::Invalidate(g) => {
                        if ctx.cache.invalidate(g) {
                            if let Some(a) = ctx.attr.as_deref_mut() {
                                a.charge(g * grain_bytes, |c| c.invalidations += 1);
                            }
                        }
                    }
                    QMsg::Downgrade(g) => ctx.cache.downgrade(g),
                }
            }
        }
    }

    // ---------------- eager protocols (bus / directory / fine-grain SC) ----

    fn eager_access(&self, ctx: &mut SimCtx, addr: VAddr, bytes: u32, write: bool) {
        self.drain(ctx);
        let grains = self.cost.grains_of(addr, bytes);
        let grain_bytes = self.cost.grain as u64;
        for grain in grains {
            let held = ctx.cache.get(grain);
            match (held, write) {
                (Some(_), false) | (Some(Held::Exclusive), true) => {
                    ctx.clock += self.cost.t_hit;
                    continue;
                }
                _ => {}
            }
            // Slow path.
            let me = ctx.proc;
            let my_bit = 1u64 << me;
            let home_local = self.home_of(grain * grain_bytes) == me;
            let mut shard = self.shard_of(grain).lock();
            let line = shard.lines.entry(grain).or_insert_with(|| LineState {
                sharers: 0,
                exclusive: -1,
                service_end: 0,
            });
            let mut cost;
            if write {
                // Fetch/upgrade + invalidate other copies.
                let had_shared = held == Some(Held::Shared);
                cost = if had_shared {
                    self.cost.t_local_miss / 2 // upgrade, no data transfer
                } else if line.exclusive >= 0 && line.exclusive as usize != me {
                    self.cost.t_remote_miss
                } else if home_local {
                    self.cost.t_local_miss
                } else {
                    self.cost.t_remote_miss
                };
                if line.exclusive >= 0 && line.exclusive as usize != me {
                    self.post(line.exclusive as usize, QMsg::Invalidate(grain));
                    cost += self.cost.t_invalidate;
                }
                let excl_mask = if line.exclusive >= 0 {
                    1u64 << line.exclusive as u64
                } else {
                    0
                };
                let others = line.sharers & !my_bit & !excl_mask;
                let n_others = others.count_ones() as u64;
                cost += self.cost.t_invalidate * n_others;
                let mut o = others;
                while o != 0 {
                    let q = o.trailing_zeros() as usize;
                    self.post(q, QMsg::Invalidate(grain));
                    o &= o - 1;
                }
                line.exclusive = me as i16;
                line.sharers = my_bit;
                drop(shard);
                ctx.cache.put(grain, Held::Exclusive);
            } else {
                if line.exclusive >= 0 && line.exclusive as usize != me {
                    // Dirty in another cache: remote intervention.
                    cost = self.cost.t_remote_miss;
                    self.post(line.exclusive as usize, QMsg::Downgrade(grain));
                    line.exclusive = -1;
                } else {
                    cost = if home_local {
                        self.cost.t_local_miss
                    } else {
                        self.cost.t_remote_miss
                    };
                }
                line.sharers |= my_bit;
                drop(shard);
                ctx.cache.put(grain, Held::Shared);
            }
            // Attribution uses the first accessed byte within the grain —
            // an access targets one element, which lives in one region.
            let rep = addr.max(grain * grain_bytes);
            if cost >= self.cost.t_remote_miss && !home_local {
                ctx.remote_misses += 1;
                if let Some(a) = ctx.attr.as_deref_mut() {
                    a.charge(rep, |c| c.remote_misses += 1);
                }
            } else {
                ctx.local_misses += 1;
                if let Some(a) = ctx.attr.as_deref_mut() {
                    a.charge(rep, |c| c.local_misses += 1);
                }
            }
            ctx.clock += cost;
        }
    }

    // ---------------- HLRC (lazy, page-grained) ----------------------------

    fn lazy_access(&self, ctx: &mut SimCtx, addr: VAddr, bytes: u32, write: bool) {
        let grain_bytes = self.cost.grain as u64;
        for page in self.cost.grains_of(addr, bytes) {
            let entry = ctx.pages.get(page);
            let valid = matches!(entry, Some(e) if e.checked_epoch == ctx.epoch);
            if !valid {
                // Revalidate against the home's version (lazy invalidation).
                let gv = {
                    let shard = self.shard_of(page).lock();
                    shard.pages.get(&page).map(|m| m.version).unwrap_or(0)
                };
                match entry {
                    Some(e) if e.version == gv => {
                        // Unchanged since we fetched it: cheap check.
                        ctx.clock += self.cost.t_check;
                        ctx.pages.set(
                            page,
                            PageEntry {
                                version: gv,
                                checked_epoch: ctx.epoch,
                                writing: e.writing,
                            },
                        );
                    }
                    Some(e) => {
                        // Page was modified by someone else: software fault,
                        // serialized at the page's home (handler occupancy).
                        self.fault(ctx, page);
                        if let Some(a) = ctx.attr.as_deref_mut() {
                            a.charge(addr.max(page * grain_bytes), |c| c.page_faults += 1);
                        }
                        ctx.pages.set(
                            page,
                            PageEntry {
                                version: gv,
                                checked_epoch: ctx.epoch,
                                writing: e.writing,
                            },
                        );
                    }
                    None => {
                        // Cold map-in. Locally homed fresh pages are cheap;
                        // anything else is a fault.
                        let home_local = self.home_of(page * grain_bytes) == ctx.proc;
                        let rep = addr.max(page * grain_bytes);
                        if gv == 0 && home_local {
                            ctx.clock += self.cost.t_local_miss;
                            ctx.local_misses += 1;
                            if let Some(a) = ctx.attr.as_deref_mut() {
                                a.charge(rep, |c| c.local_misses += 1);
                            }
                        } else {
                            self.fault(ctx, page);
                            if let Some(a) = ctx.attr.as_deref_mut() {
                                a.charge(rep, |c| c.page_faults += 1);
                            }
                        }
                        ctx.pages.set(
                            page,
                            PageEntry {
                                version: gv,
                                checked_epoch: ctx.epoch,
                                writing: false,
                            },
                        );
                    }
                }
            } else {
                ctx.clock += self.cost.t_hit;
            }
            if write {
                let e = ctx.pages.entry_mut(page).expect("page just validated");
                if !e.writing {
                    e.writing = true;
                    ctx.pages.dirty.push(page);
                    ctx.clock += self.cost.t_twin;
                }
            }
        }
    }

    /// HLRC release: flush diffs of dirty pages to their homes and bump the
    /// global page versions. The cost lands on the releaser *before* the
    /// lock's virtual release time is recorded — critical-section dilation.
    fn lazy_release(&self, ctx: &mut SimCtx) {
        let dirty = std::mem::take(&mut ctx.pages.dirty);
        let flushed = dirty.len() as u64;
        for page in dirty {
            ctx.clock += self.cost.t_diff;
            {
                let mut shard = self.shard_of(page).lock();
                shard.pages.entry(page).or_default().version += 1;
            }
            if let Some(e) = ctx.pages.entry_mut(page) {
                e.writing = false;
                // Our own flush defines the new version; account for it so we
                // do not fault on our own write.
                e.version += 1;
            }
        }
        if flushed > 0 {
            self.notices.fetch_add(flushed, Ordering::AcqRel);
        }
    }

    /// Protocol action at an acquire: open a new epoch (forces lazy
    /// revalidation of every cached page) and process the write notices of
    /// every interval flushed system-wide since this processor's last
    /// acquire.
    #[inline]
    fn acquire_epoch(&self, ctx: &mut SimCtx) {
        if self.cost.protocol.is_lazy() {
            ctx.epoch += 1;
            let now = self.notices.load(Ordering::Acquire);
            let delta = now - ctx.notices_seen;
            ctx.notices_seen = now;
            ctx.clock += delta * self.cost.t_notice;
        }
    }

    /// Charge a full HLRC page fault, serializing concurrent faults on the
    /// same page at its home. The queueing delay is the home handler's
    /// backlog, bounded by `procs × t_fault_occupancy` (everyone faulting at
    /// once) so that processors far apart in virtual time cannot drag each
    /// other's clocks forward through a shared page.
    fn fault(&self, ctx: &mut SimCtx, page: u64) {
        let occ = self.cost.t_fault_occupancy;
        let backlog = {
            let mut shard = self.shard_of(page).lock();
            let meta = shard.pages.entry(page).or_default();
            let backlog = meta
                .service_end
                .saturating_sub(ctx.clock)
                .min(self.procs as u64 * occ);
            meta.service_end = ctx.clock + backlog + occ;
            backlog
        };
        ctx.clock += backlog + self.cost.t_page_fault;
        ctx.page_faults += 1;
    }
}

impl Env for Machine {
    type Ctx = SimCtx;

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn make_ctx(&self, proc: usize) -> SimCtx {
        assert!(proc < self.procs);
        SimCtx {
            proc,
            clock: 0,
            epoch: 1,
            notices_seen: 0,
            cache: PrivateCache::new(self.cost.cache_grains),
            pages: PageTable::new(),
            local_misses: 0,
            remote_misses: 0,
            page_faults: 0,
            lock_acquires: 0,
            lock_wait: 0,
            barrier_wait: 0,
            attr: self.attribution.then(|| {
                Box::new(SimAttr {
                    regions: self.regions.lock().clone(),
                    slot: SETUP_SLOT,
                    table: AttrTable::new(),
                })
            }),
        }
    }

    fn alloc(&self, bytes: u64, align: u64, place: Placement) -> VAddr {
        let align = align.max(1).next_power_of_two();
        let counter = match place {
            Placement::Global => &self.next_global,
            Placement::Local(p) => &self.next_local[p.min(self.procs - 1)],
        };
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            match counter.compare_exchange_weak(
                cur,
                base + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return base,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    fn read(&self, ctx: &mut SimCtx, addr: VAddr, bytes: u32) {
        if self.cost.protocol.is_lazy() {
            self.lazy_access(ctx, addr, bytes, false)
        } else {
            self.eager_access(ctx, addr, bytes, false)
        }
    }

    #[inline]
    fn write(&self, ctx: &mut SimCtx, addr: VAddr, bytes: u32) {
        if self.cost.protocol.is_lazy() {
            self.lazy_access(ctx, addr, bytes, true)
        } else {
            self.eager_access(ctx, addr, bytes, true)
        }
    }

    fn rmw(&self, ctx: &mut SimCtx, addr: VAddr, bytes: u32) {
        if self.cost.protocol.is_lazy() {
            self.lazy_access(ctx, addr, bytes, false);
            self.lazy_access(ctx, addr, bytes, true);
            return;
        }
        // Gain exclusive ownership, then serialize at the line's home:
        // concurrent atomics on one hot line (a shared allocation counter, a
        // line of adjacent per-processor counters) queue up in the
        // directory/memory controller.
        self.eager_access(ctx, addr, bytes, true);
        let occ = self.cost.t_rmw_occupancy;
        if occ > 0 {
            let grain = addr / self.cost.grain as u64;
            let backlog = {
                let mut shard = self.shard_of(grain).lock();
                let line = shard.lines.entry(grain).or_insert_with(|| LineState {
                    sharers: 0,
                    exclusive: -1,
                    service_end: 0,
                });
                let backlog = line
                    .service_end
                    .saturating_sub(ctx.clock)
                    .min(self.procs as u64 * occ);
                line.service_end = ctx.clock + backlog + occ;
                backlog
            };
            ctx.clock += backlog + occ;
        }
    }

    #[inline]
    fn compute(&self, ctx: &mut SimCtx, cycles: u64) {
        ctx.clock += cycles;
    }

    fn lock(&self, ctx: &mut SimCtx, lock: usize) {
        let slot = &self.locks[bh_core::env::lock_slot(lock, LOCK_TABLE)];
        // Real-time queue depth at arrival: how many processors are actually
        // contending right now. Used to bound the virtual-time wait so that
        // clock drift between processors cannot masquerade as contention.
        let depth = slot.waiters.fetch_add(1, Ordering::AcqRel) as u64;
        slot.real.lock();
        slot.waiters.fetch_sub(1, Ordering::AcqRel);
        ctx.lock_acquires += 1;
        let mut vt = slot.vt.lock();
        let transfer = if vt.last_owner >= 0 && vt.last_owner as usize != ctx.proc {
            self.cost.t_lock_transfer
        } else {
            0
        };
        // Gap to the previous holder's virtual release.
        //
        // Under HLRC a gap that a queue of at most P dilated critical
        // sections can explain is genuine protocol-induced contention and is
        // honored in full — this is the serialization at locks that the
        // paper identifies as the SVM killer. A larger gap is clock drift
        // and is replaced by the queue that really exists (`depth` waiters).
        //
        // Under hardware coherence critical sections are short and lock
        // hand-off is fast, so queueing only matters when processors really
        // collide: the wait is bounded by the actual queue depth at arrival.
        let unit = vt.cs_last + transfer + self.cost.t_lock;
        let gap = (vt.last_release + transfer).saturating_sub(ctx.clock);
        let bound = if self.cost.protocol.software_sync() {
            // Dilated critical sections queue up in virtual time — the SVM
            // serialization the paper identifies. Capped at a full queue of
            // P critical sections so clock drift cannot masquerade as an
            // unboundedly long queue.
            self.procs as u64 * unit
        } else {
            // Hardware coherence: locks are supported in hardware and
            // "quite inexpensive" (paper §4.1); critical sections are a few
            // hundred cycles, so queueing is second-order next to load
            // imbalance and false sharing. Charge only acquisition costs.
            let _ = depth;
            0
        };
        // An ownership change always pays at least the transfer latency,
        // whether or not the lock was contended in virtual time.
        let wait = gap.min(bound).max(transfer) + self.cost.t_lock;
        ctx.lock_wait += wait;
        ctx.clock += wait;
        if let Some(a) = ctx.attr.as_deref_mut() {
            // Lock activity is attributed to the region the lock protects
            // (free-list locks → allocator, node locks → cells), not to an
            // address: lock slots live outside the simulated address space.
            let c = a.table.cell_mut(Region::of_lock(lock), a.slot);
            c.lock_acquires += 1;
            c.lock_wait += wait;
        }
        vt.acquire_clock = ctx.clock;
        drop(vt);
        self.acquire_epoch(ctx);
    }

    fn unlock(&self, ctx: &mut SimCtx, lock: usize) {
        if self.cost.protocol.is_lazy() {
            self.lazy_release(ctx);
        }
        let slot = &self.locks[bh_core::env::lock_slot(lock, LOCK_TABLE)];
        {
            let mut vt = slot.vt.lock();
            vt.last_release = ctx.clock;
            vt.last_owner = ctx.proc as i16;
            let cs = ctx.clock.saturating_sub(vt.acquire_clock);
            vt.cs_last = (vt.cs_last + cs) / 2;
        }
        slot.real.unlock();
    }

    fn barrier(&self, ctx: &mut SimCtx) {
        if self.cost.protocol.is_lazy() {
            self.lazy_release(ctx);
        }
        self.barrier_clocks[ctx.proc].store(ctx.clock, Ordering::Release);
        self.rendezvous.wait();
        let max = (0..self.procs)
            .map(|p| self.barrier_clocks[p].load(Ordering::Acquire))
            .max()
            .unwrap_or(ctx.clock);
        // Second rendezvous so nobody races ahead and overwrites the clocks.
        self.rendezvous.wait();
        ctx.barrier_wait += max - ctx.clock;
        ctx.clock = max + self.cost.t_barrier;
        self.acquire_epoch(ctx);
        if !self.cost.protocol.is_lazy() {
            self.drain(ctx);
        }
    }

    fn phase_begin(&self, ctx: &mut SimCtx, phase: Phase, _step: u32) {
        // Phase boundaries are free in every cost model: the real protocol
        // work (invalidation drains, epoch opens) rides on the barriers the
        // application already executes at those boundaries. Attribution
        // only moves its stage pointer (charging nothing).
        if let Some(a) = ctx.attr.as_deref_mut() {
            a.slot = phase.index();
        }
    }

    fn phase_end(&self, ctx: &mut SimCtx, _phase: Phase, _step: u32) {
        if let Some(a) = ctx.attr.as_deref_mut() {
            a.slot = SETUP_SLOT;
        }
    }

    fn tag_region(&self, base: VAddr, bytes: u64, region: Region) {
        if !self.attribution {
            return;
        }
        // Copy-on-write: contexts snapshot the Arc at creation, so the
        // (setup-time, single-threaded) tagging path pays for the copy and
        // the per-access lookup path stays lock-free.
        let mut guard = self.regions.lock();
        let mut map = (**guard).clone();
        map.insert(base, bytes, region);
        *guard = Arc::new(map);
    }

    fn now(&self, ctx: &SimCtx) -> u64 {
        ctx.clock
    }

    fn stats(&self, ctx: &SimCtx) -> CtxStats {
        if let Some(a) = ctx.attr.as_deref() {
            self.attr_mirror[ctx.proc].lock().clone_from(&a.table);
        }
        CtxStats {
            time: ctx.clock,
            lock_acquires: ctx.lock_acquires,
            lock_wait: ctx.lock_wait,
            barrier_wait: ctx.barrier_wait,
            remote_misses: ctx.remote_misses,
            local_misses: ctx.local_misses,
            page_faults: ctx.page_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn origin(procs: usize) -> Machine {
        Machine::new(platform::origin2000(procs), procs)
    }

    fn hlrc(procs: usize) -> Machine {
        Machine::new(platform::typhoon0_hlrc(procs), procs)
    }

    #[test]
    fn repeated_reads_hit_after_first_miss() {
        let m = origin(2);
        let mut ctx = m.make_ctx(0);
        let a = m.alloc(64, 64, Placement::Local(0));
        m.read(&mut ctx, a, 8);
        let after_miss = ctx.clock;
        assert!(after_miss >= m.cost_model().t_local_miss);
        m.read(&mut ctx, a, 8);
        assert_eq!(ctx.clock - after_miss, m.cost_model().t_hit);
    }

    #[test]
    fn remote_miss_costs_more_than_local() {
        let m = origin(2);
        let local = m.alloc(128, 128, Placement::Local(0));
        let remote = m.alloc(128, 128, Placement::Local(1));
        let mut ctx = m.make_ctx(0);
        let c0 = ctx.clock;
        m.read(&mut ctx, local, 8);
        let local_cost = ctx.clock - c0;
        let c1 = ctx.clock;
        m.read(&mut ctx, remote, 8);
        let remote_cost = ctx.clock - c1;
        assert!(
            remote_cost > local_cost,
            "remote {remote_cost} <= local {local_cost}"
        );
        let s = m.stats(&ctx);
        assert_eq!(s.local_misses, 1);
        assert_eq!(s.remote_misses, 1);
    }

    #[test]
    fn write_invalidation_forces_re_miss() {
        // Classic ping-pong: P0 reads a line, P1 writes it, P0's next read
        // must miss again.
        let m = origin(2);
        let a = m.alloc(128, 128, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        m.read(&mut c0, a, 8);
        m.read(&mut c0, a, 8); // hit
        m.write(&mut c1, a, 8); // invalidates P0
        let before = c0.clock;
        m.read(&mut c0, a, 8);
        assert!(
            c0.clock - before > m.cost_model().t_hit,
            "expected a coherence miss after remote write"
        );
    }

    #[test]
    fn false_sharing_is_visible() {
        // Two processors writing different words of the same line keep
        // invalidating each other; writing different lines do not.
        let m = origin(2);
        let same_line = m.alloc(128, 128, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        for _ in 0..50 {
            m.write(&mut c0, same_line, 4);
            m.write(&mut c1, same_line + 64, 4); // same 128B line
        }
        let pingpong = c0.clock + c1.clock;

        let m2 = origin(2);
        let a0 = m2.alloc(128, 128, Placement::Global);
        let a1 = m2.alloc(128, 128, Placement::Global);
        let mut d0 = m2.make_ctx(0);
        let mut d1 = m2.make_ctx(1);
        for _ in 0..50 {
            m2.write(&mut d0, a0, 4);
            m2.write(&mut d1, a1, 4);
        }
        let separate = d0.clock + d1.clock;
        assert!(
            pingpong > 3 * separate,
            "false sharing ({pingpong}) should dwarf private lines ({separate})"
        );
    }

    #[test]
    fn hlrc_no_coherence_until_acquire() {
        // Lazy release consistency: a write by P1 is invisible (and costs
        // P0 nothing) until P0 passes an acquire point.
        let m = hlrc(2);
        let a = m.alloc(4096, 4096, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        m.read(&mut c0, a, 8); // map the page
        let t_hit_baseline = {
            let before = c0.clock;
            m.read(&mut c0, a, 8);
            c0.clock - before
        };
        // P1 writes the page inside a critical section.
        m.lock(&mut c1, 9);
        m.write(&mut c1, a, 8);
        m.unlock(&mut c1, 9);
        // P0 still hits — no eager invalidation.
        let before = c0.clock;
        m.read(&mut c0, a, 8);
        assert_eq!(c0.clock - before, t_hit_baseline);
        // After an acquire, P0 faults on the modified page.
        m.lock(&mut c0, 9);
        let before = c0.clock;
        m.read(&mut c0, a, 8);
        let cost = c0.clock - before;
        m.unlock(&mut c0, 9);
        assert!(
            cost >= m.cost_model().t_page_fault,
            "expected page fault after acquire, got {cost}"
        );
        // The cold map-in of the locally-homed page was cheap; only the
        // post-acquire revalidation is a real fault.
        assert_eq!(m.stats(&c0).page_faults, 1);
    }

    #[test]
    fn hlrc_lock_transfer_serializes_dilated_sections() {
        // The virtual release time of the previous holder gates the next
        // acquire: page faults inside the critical section dilate it.
        let m = hlrc(2);
        let a = m.alloc(4096, 4096, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        // P1 writes the page under lock 3 (creating versions to fault on).
        m.lock(&mut c1, 3);
        m.write(&mut c1, a, 8);
        m.unlock(&mut c1, 3);
        let release_time = c1.clock;
        // P0, whose clock is far behind, acquires the same lock: its virtual
        // acquire time must not precede P1's virtual release.
        assert!(c0.clock < release_time);
        m.lock(&mut c0, 3);
        assert!(
            c0.clock >= release_time,
            "acquire at {} before release at {release_time}",
            c0.clock
        );
        m.unlock(&mut c0, 3);
    }

    #[test]
    fn barrier_aligns_clocks_to_max() {
        let m = origin(4);
        let out = bh_core::harness::spmd(&m, |proc, ctx| {
            m.compute(ctx, proc as u64 * 1000);
            m.barrier(ctx);
            ctx.clock
        });
        let expect = 3000 + m.cost_model().t_barrier;
        for c in out {
            assert_eq!(c, expect);
        }
    }

    #[test]
    fn lock_virtual_time_serializes_under_hlrc() {
        // N processors each hold the lock for 1000 cycles of compute: under
        // the lazy protocol (whose dilated critical sections the paper's
        // argument rests on) the last one's clock must reflect the full
        // serial chain regardless of real-time interleaving.
        let m = hlrc(4);
        let out = bh_core::harness::spmd(&m, |_proc, ctx| {
            m.lock(ctx, 42);
            m.compute(ctx, 1000);
            m.unlock(ctx, 42);
            m.barrier(ctx);
            ctx.clock
        });
        let max = out.into_iter().max().unwrap();
        assert!(max >= 4 * 1000, "serialized time {max} too small");
    }

    #[test]
    fn alloc_regions_are_disjoint_and_homed() {
        let m = origin(4);
        let g = m.alloc(100, 64, Placement::Global);
        let l2 = m.alloc(100, 64, Placement::Local(2));
        assert!(g < 1 << LOCAL_SHIFT);
        assert_eq!(l2 >> LOCAL_SHIFT, 3);
        assert_eq!(m.home_of(l2), 2);
    }

    #[test]
    fn notice_processing_charges_at_acquire() {
        // Write notices created by other processors' releases are paid for
        // at this processor's next acquire, proportionally to how many
        // intervals were flushed.
        let m = hlrc(2);
        let a = m.alloc(3 * 4096, 4096, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        // P1 dirties 3 pages in one interval.
        m.lock(&mut c1, 5);
        for i in 0..3 {
            m.write(&mut c1, a + i * 4096, 8);
        }
        m.unlock(&mut c1, 5);
        // P0's next acquire must pay 3 notices.
        let before = c0.clock;
        m.lock(&mut c0, 6); // uncontended different lock
        m.unlock(&mut c0, 6);
        let cost = c0.clock - before;
        assert!(
            cost >= 3 * m.cost_model().t_notice,
            "acquire cost {cost} lacks notice processing (expected >= {})",
            3 * m.cost_model().t_notice
        );
    }

    #[test]
    fn fault_occupancy_serializes_hot_page() {
        // Two *other* processors faulting on a freshly written page at the
        // same virtual time: both pay the full software fault, and the
        // second also queues behind the home's handler occupancy.
        let m = hlrc(3);
        let a = m.alloc(4096, 4096, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        let mut c2 = m.make_ctx(2);
        // P0 maps and dirties the page inside a critical section.
        m.lock(&mut c0, 3);
        m.write(&mut c0, a, 8);
        m.unlock(&mut c0, 3);
        // P1 and P2 acquire (new epochs) and read: both must fault.
        m.lock(&mut c1, 4);
        m.unlock(&mut c1, 4);
        m.lock(&mut c2, 5);
        m.unlock(&mut c2, 5);
        let b1 = c1.clock;
        m.read(&mut c1, a, 8);
        let first = c1.clock - b1;
        // Align P2 into the same virtual window as P1's fault.
        if c2.clock < b1 {
            let delta = b1 - c2.clock;
            m.compute(&mut c2, delta);
        }
        let b2 = c2.clock;
        m.read(&mut c2, a, 8);
        let second = c2.clock - b2;
        assert!(first >= m.cost_model().t_page_fault, "first fault {first}");
        assert!(
            second >= m.cost_model().t_page_fault + m.cost_model().t_fault_occupancy.min(1),
            "second fault ({second}) should pay fault + queueing"
        );
        assert_eq!(m.stats(&c1).page_faults, 1);
        assert_eq!(m.stats(&c2).page_faults, 1);
    }

    #[test]
    fn rmw_occupancy_queues_hot_counter() {
        // Atomic storms on one line serialize at its home on eager
        // platforms with t_rmw_occupancy > 0.
        let m = origin(4);
        let occ = m.cost_model().t_rmw_occupancy;
        assert!(occ > 0);
        let a = m.alloc(8, 8, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        // Both at vt 0: each RMW pays at least occ; the second also queues.
        m.rmw(&mut c0, a, 4);
        let t0 = c0.clock;
        m.rmw(&mut c1, a, 4);
        let t1 = c1.clock;
        assert!(t0 >= occ);
        assert!(
            t1 > t0.min(occ),
            "second atomic did not queue: {t1} vs {t0}"
        );
    }

    #[test]
    fn eager_read_downgrades_remote_dirty_line() {
        // P0 writes (exclusive), P1 reads: P1 pays a remote intervention and
        // P0's next *read* still hits (downgrade, not invalidation) while a
        // next write re-misses (upgrade).
        let m = origin(2);
        let a = m.alloc(128, 128, Placement::Global);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        m.write(&mut c0, a, 8);
        m.read(&mut c1, a, 8);
        let before = c0.clock;
        m.read(&mut c0, a, 8);
        assert_eq!(
            c0.clock - before,
            m.cost_model().t_hit,
            "read after downgrade must hit"
        );
        let before = c0.clock;
        m.write(&mut c0, a, 8);
        assert!(
            c0.clock - before > m.cost_model().t_hit,
            "write after downgrade must upgrade"
        );
    }

    #[test]
    fn hlrc_write_creates_twin_once_per_interval() {
        let m = hlrc(1);
        let a = m.alloc(4096, 4096, Placement::Local(0));
        let mut ctx = m.make_ctx(0);
        m.read(&mut ctx, a, 8); // map in
        let before = ctx.clock;
        m.write(&mut ctx, a, 8);
        let first_write = ctx.clock - before;
        assert!(
            first_write >= m.cost_model().t_twin,
            "first write must pay twin creation"
        );
        let before = ctx.clock;
        m.write(&mut ctx, a + 64, 8);
        let second_write = ctx.clock - before;
        assert!(
            second_write < m.cost_model().t_twin,
            "second write must not re-twin"
        );
    }

    #[test]
    fn trace_env_spans_are_in_simulated_cycles() {
        // A TraceEnv wrapped around a Machine must measure spans on the
        // virtual clock: a span containing exactly `compute(1000)` is
        // exactly 1000 cycles wide, independent of wall time.
        let traced = bh_core::trace::TraceEnv::new(origin(2));
        bh_core::harness::spmd(&traced, |_proc, ctx| {
            traced.phase_begin(ctx, Phase::Tree, 0);
            traced.compute(ctx, 1000);
            traced.phase_end(ctx, Phase::Tree, 0);
        });
        let spans = traced.spans();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert_eq!(s.end - s.start, 1000);
            assert_eq!(s.stats.time, 1000);
        }
    }

    #[test]
    fn trace_env_lock_wait_matches_machine_accounting() {
        // The traced per-acquire wait must equal the machine's own
        // lock_wait delta (HLRC charges acquisition + notice costs).
        let traced = bh_core::trace::TraceEnv::new(hlrc(2));
        let mut ctx = traced.make_ctx(0);
        traced.lock(&mut ctx, 70);
        traced.unlock(&mut ctx, 70);
        let hist = traced.lock_histogram();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].acquires, 1);
        assert_eq!(hist[0].wait_total, traced.stats(&ctx).lock_wait);
    }

    #[test]
    fn attribution_tiles_and_never_touches_the_clock() {
        use crate::attr::SETUP_SLOT;
        // Identical operation sequences on a plain and an attributed
        // machine: clocks and aggregate stats must be bitwise identical;
        // the attributed one additionally localizes every event.
        let ops = |m: &Machine| {
            let a = m.alloc(256, 64, Placement::Global);
            let b = m.alloc(256, 64, Placement::Local(1));
            m.tag_region(a, 256, Region::Bodies);
            m.tag_region(b, 256, Region::TreeCells);
            let mut ctx = m.make_ctx(0);
            m.phase_begin(&mut ctx, Phase::Tree, 0);
            m.read(&mut ctx, a, 8);
            m.write(&mut ctx, b, 8);
            m.lock(&mut ctx, 70); // node lock -> tree-cells
            m.unlock(&mut ctx, 70);
            m.phase_end(&mut ctx, Phase::Tree, 0);
            m.lock(&mut ctx, 3); // free-list lock -> tree-alloc
            m.unlock(&mut ctx, 3);
            let untagged = m.alloc(64, 64, Placement::Local(1));
            m.read(&mut ctx, untagged, 8);
            (ctx.clock, m.stats(&ctx))
        };
        let plain = origin(2);
        let attributed = Machine::new(platform::origin2000(2), 2).with_attribution();
        let (clock_plain, stats_plain) = ops(&plain);
        let (clock_attr, stats_attr) = ops(&attributed);
        assert_eq!(clock_plain, clock_attr, "attribution changed the clock");
        assert_eq!(stats_plain, stats_attr, "attribution changed aggregates");
        assert!(plain.attribution().is_none());

        let tables = attributed.attribution().expect("attribution enabled");
        let t = &tables[0];
        let tree = Phase::Tree.index();
        let bodies = t.cell(Region::Bodies, tree);
        assert_eq!(bodies.local_misses + bodies.remote_misses, 1);
        let cells = t.cell(Region::TreeCells, tree);
        assert_eq!(cells.remote_misses, 1, "Local(1) write from proc 0");
        assert_eq!(cells.lock_acquires, 1);
        assert_eq!(t.cell(Region::TreeAlloc, SETUP_SLOT).lock_acquires, 1);
        let other = t.cell(Region::Other, SETUP_SLOT);
        assert_eq!(other.remote_misses, 1, "untagged access lands in other");
        // The tiling property: totals reproduce the aggregates exactly.
        let total = t.total();
        assert_eq!(total.local_misses, stats_attr.local_misses);
        assert_eq!(total.remote_misses, stats_attr.remote_misses);
        assert_eq!(total.page_faults, stats_attr.page_faults);
        assert_eq!(total.lock_acquires, stats_attr.lock_acquires);
        assert_eq!(total.lock_wait, stats_attr.lock_wait);
    }

    #[test]
    fn attribution_localizes_hlrc_faults() {
        let m = Machine::new(platform::typhoon0_hlrc(2), 2).with_attribution();
        let a = m.alloc(4096, 4096, Placement::Global);
        m.tag_region(a, 4096, Region::FlatTree);
        let mut c0 = m.make_ctx(0);
        let mut c1 = m.make_ctx(1);
        m.lock(&mut c1, 9);
        m.write(&mut c1, a, 8);
        m.unlock(&mut c1, 9);
        m.lock(&mut c0, 9);
        m.phase_begin(&mut c0, Phase::Force, 0);
        m.read(&mut c0, a, 8); // faults on the modified page
        m.phase_end(&mut c0, Phase::Force, 0);
        m.unlock(&mut c0, 9);
        let s0 = m.stats(&c0);
        let s1 = m.stats(&c1);
        let tables = m.attribution().unwrap();
        let faults = tables[0].cell(Region::FlatTree, Phase::Force.index());
        assert_eq!(faults.page_faults, 1, "fault attributed to flat-tree");
        assert_eq!(tables[0].total().page_faults, s0.page_faults);
        assert_eq!(tables[1].total().page_faults, s1.page_faults);
    }

    #[test]
    fn stats_accumulate() {
        let m = hlrc(2);
        let mut ctx = m.make_ctx(0);
        m.lock(&mut ctx, 1);
        m.unlock(&mut ctx, 1);
        m.lock(&mut ctx, 2);
        m.unlock(&mut ctx, 2);
        assert_eq!(m.stats(&ctx).lock_acquires, 2);
        assert_eq!(m.stats(&ctx).time, ctx.clock);
    }
}
