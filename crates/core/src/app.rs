//! The complete parallel Barnes-Hut application: per-step phase sequencing
//! (bounds → tree build → center of mass → costzones → forces → update),
//! phase timing, and run statistics — the measurement protocol of the paper
//! (a number of warm-up steps to let the partition settle, then measured
//! steps).
//!
//! The step itself lives in [`crate::pipeline`] as an explicit stage list;
//! this module owns the run-level protocol (warm-up vs. measured steps,
//! validation, final snapshot) and the [`RunStats`] aggregation. Workers
//! come from a [`WorkerPool`]; [`run_simulation`] spins up a throwaway pool,
//! while [`crate::engine::SimEngine`] keeps pool and state alive across
//! runs.

use crate::algorithms::{Algorithm, Builder};
use crate::body::Body;
use crate::env::{CtxStats, Env, Phase};
use crate::force::{ForceParams, ForceScratch};
use crate::harness::WorkerPool;
use crate::pipeline::{StageIo, StepPipeline};
use crate::tree::flat::FlatTree;
use crate::tree::types::SharedTree;
use crate::tree::validate::{validate_with, ValidateOpts};
use crate::world::World;

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub algorithm: Algorithm,
    /// Leaf threshold k (bodies per leaf before subdivision).
    pub k: usize,
    pub force: ForceParams,
    /// Integration time step.
    pub dt: f64,
    /// Steps run before measurement starts (paper uses 2).
    pub warmup_steps: usize,
    /// Steps measured (paper uses 2).
    pub measured_steps: usize,
    /// Override for the SPACE subdivision threshold.
    pub space_threshold: Option<usize>,
    /// SPACE cost-rebalance factor: a would-be-final subspace whose cost
    /// exceeds `factor * total_cost / P` is refined one extra round.
    /// `0.0` disables cost-triggered refinement.
    pub space_rebalance: f64,
    /// Run the force phase over the flat tree snapshot (the fast path).
    /// `false` keeps the recursive walk over the shared tree — the
    /// pre-snapshot behavior, for ablations and equivalence tests.
    pub flat_force: bool,
    /// Bodies per interaction-list group in the batched force kernel.
    /// `1` builds per-body lists (bitwise identical to the reference
    /// walk); `0` is the legacy per-body walk without lists (ablation).
    /// Ignored when `flat_force` is off.
    pub group_size: usize,
    /// Morton-reorder each zone's bodies every this many steps (including
    /// step 0); `0` disables the pass.
    pub morton_every: usize,
    /// Validate the final tree against all invariants after the run.
    pub validate: bool,
}

impl SimConfig {
    pub fn new(algorithm: Algorithm) -> SimConfig {
        SimConfig {
            algorithm,
            k: 8,
            force: ForceParams::default(),
            dt: 0.025,
            warmup_steps: 2,
            measured_steps: 2,
            space_threshold: None,
            space_rebalance: 0.25,
            flat_force: true,
            group_size: 16,
            morton_every: 4,
            validate: true,
        }
    }
}

/// Time spent in each phase of one step, in the environment's time unit
/// (wall nanoseconds natively, simulated cycles under `ssmp`). Measured at
/// barrier boundaries, so a phase time includes any load-imbalance wait.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSample {
    /// Bounds reduction + tree build + center-of-mass pass.
    pub tree: u64,
    /// Costzones partitioning.
    pub partition: u64,
    /// Force computation.
    pub force: u64,
    /// Position/velocity update.
    pub update: u64,
}

impl PhaseSample {
    pub fn total(&self) -> u64 {
        self.tree + self.partition + self.force + self.update
    }

    /// The slot a phase's time accumulates into.
    pub fn phase_mut(&mut self, phase: Phase) -> &mut u64 {
        match phase {
            Phase::Tree => &mut self.tree,
            Phase::Partition => &mut self.partition,
            Phase::Force => &mut self.force,
            Phase::Update => &mut self.update,
        }
    }
}

/// Everything one processor recorded over the measured steps.
#[derive(Debug, Clone)]
pub struct ProcRecord {
    pub proc: usize,
    pub steps: Vec<PhaseSample>,
    /// Per-phase [`CtxStats`] deltas accumulated over the measured steps,
    /// indexed by [`Phase::index`]: each phase's time, lock, barrier and
    /// protocol activity on this processor (`time` equals the summed phase
    /// times of [`ProcRecord::steps`]).
    pub phases: [CtxStats; 4],
    /// The same per-phase deltas kept per measured step (parallel to
    /// [`ProcRecord::steps`]): entry `s` holds step `s`'s delta for each
    /// phase, so run-level aggregates can be decomposed into a time series.
    /// Summing over steps reproduces [`ProcRecord::phases`] exactly.
    pub step_stats: Vec<[CtxStats; 4]>,
    /// Lock acquisitions during the measured tree-build phases (Figure 15).
    pub tree_locks: u64,
    /// Remote misses during the measured tree-build phases.
    pub tree_remote_misses: u64,
    /// Page faults during the measured tree-build phases.
    pub tree_page_faults: u64,
    /// Lock wait during the measured tree-build phases.
    pub tree_lock_wait: u64,
    /// Time spent waiting at barriers during measured steps (Table 2).
    pub barrier_wait: u64,
    /// Time this processor spent in the flatten sub-phase of the tree phase
    /// during measured steps (zero when `flat_force` is off, and always
    /// zero for MORTON, which never flattens).
    pub flatten_time: u64,
    /// Time this processor spent in the parallel Morton key sort during
    /// measured steps (nonzero only for MORTON).
    pub sort_time: u64,
    /// Interaction-list group traversals the batched force kernel performed
    /// during measured steps (zero for the per-body ablations).
    pub force_groups: u64,
    /// Interaction-list entries the batched force kernel emitted during
    /// measured steps.
    pub force_list_entries: u64,
    /// Pair interactions the batched force kernel evaluated from its lists
    /// during measured steps.
    pub force_interactions: u64,
    pub final_stats: CtxStats,
}

/// Result of a full run.
#[derive(Debug)]
pub struct RunStats {
    pub algorithm: Algorithm,
    pub n: usize,
    pub procs: usize,
    pub k: usize,
    pub warmup_steps: usize,
    pub measured_steps: usize,
    pub procs_records: Vec<ProcRecord>,
    /// `None` when the final tree validated (or validation was disabled).
    pub validation_error: Option<String>,
}

impl RunStats {
    /// Total measured time: the maximum over processors of the summed phase
    /// times (post-barrier these agree across processors).
    pub fn total_time(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.steps.iter().map(PhaseSample::total).sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Total measured tree-build time (max over processors).
    pub fn tree_time(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.steps.iter().map(|s| s.tree).sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Fraction of measured time spent building the tree.
    pub fn tree_fraction(&self) -> f64 {
        let total = self.total_time();
        if total == 0 {
            0.0
        } else {
            self.tree_time() as f64 / total as f64
        }
    }

    /// Measured force-phase time (max over processors).
    pub fn force_time(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.steps.iter().map(|s| s.force).sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Lock acquisitions in the measured tree-build phases, per processor.
    pub fn tree_locks_per_proc(&self) -> Vec<u64> {
        self.procs_records.iter().map(|r| r.tree_locks).collect()
    }

    /// One phase's measured statistics aggregated across processors:
    /// counters are summed, `time` is the maximum over processors (the
    /// phase's critical path, as the paper reports it).
    pub fn phase_stats(&self, phase: Phase) -> CtxStats {
        let mut agg = CtxStats::default();
        for r in &self.procs_records {
            let p = &r.phases[phase.index()];
            agg.time = agg.time.max(p.time);
            agg.lock_acquires += p.lock_acquires;
            agg.lock_wait += p.lock_wait;
            agg.barrier_wait += p.barrier_wait;
            agg.remote_misses += p.remote_misses;
            agg.local_misses += p.local_misses;
            agg.page_faults += p.page_faults;
        }
        agg
    }

    /// Total barrier wait time across processors during measured steps.
    pub fn barrier_wait_total(&self) -> u64 {
        self.procs_records.iter().map(|r| r.barrier_wait).sum()
    }

    /// Time spent flattening the tree snapshot (max over processors; the
    /// sub-phase's critical path, already included in the tree phase).
    pub fn flatten_cycles(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.flatten_time)
            .max()
            .unwrap_or(0)
    }

    /// Time spent in the parallel Morton key sort (max over processors; the
    /// sub-phase's critical path, already included in the tree phase;
    /// nonzero only for MORTON).
    pub fn sort_cycles(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.sort_time)
            .max()
            .unwrap_or(0)
    }

    /// Tree-phase load imbalance: the maximum over processors of measured
    /// tree-phase *work* (phase time minus barrier wait — the raw phase
    /// times are taken at barrier boundaries and therefore agree across
    /// processors) divided by the average. 1.0 is perfectly balanced.
    pub fn tree_imbalance(&self) -> f64 {
        let times: Vec<u64> = self
            .procs_records
            .iter()
            .map(|r| {
                let p = &r.phases[Phase::Tree.index()];
                p.time.saturating_sub(p.barrier_wait)
            })
            .collect();
        if times.is_empty() {
            return 1.0;
        }
        let max = *times.iter().max().unwrap() as f64;
        let avg = times.iter().sum::<u64>() as f64 / times.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Number of measured steps actually recorded (0 for an empty run).
    pub fn steps_recorded(&self) -> usize {
        self.procs_records
            .iter()
            .map(|r| r.steps.len())
            .max()
            .unwrap_or(0)
    }

    /// Per-measured-step time of one phase: entry `s` is the maximum over
    /// processors of step `s`'s phase time (the step's critical path —
    /// post-barrier these agree across processors).
    pub fn step_phase_times(&self, phase: Phase) -> Vec<u64> {
        (0..self.steps_recorded())
            .map(|s| {
                self.procs_records
                    .iter()
                    .filter_map(|r| r.steps.get(s))
                    .map(|smp| match phase {
                        Phase::Tree => smp.tree,
                        Phase::Partition => smp.partition,
                        Phase::Force => smp.force,
                        Phase::Update => smp.update,
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-measured-step total time (max over processors of the step's
    /// summed phase times). Sums to [`RunStats::total_time`].
    pub fn step_totals(&self) -> Vec<u64> {
        (0..self.steps_recorded())
            .map(|s| {
                self.procs_records
                    .iter()
                    .filter_map(|r| r.steps.get(s))
                    .map(PhaseSample::total)
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-measured-step lock wait, summed over processors and phases.
    pub fn step_lock_waits(&self) -> Vec<u64> {
        self.step_counter(|c| c.lock_wait)
    }

    /// Per-measured-step barrier wait, summed over processors and phases.
    pub fn step_barrier_waits(&self) -> Vec<u64> {
        self.step_counter(|c| c.barrier_wait)
    }

    /// Per-measured-step count of some [`CtxStats`] field, summed over
    /// processors and phases.
    pub fn step_counter(&self, field: impl Fn(&CtxStats) -> u64) -> Vec<u64> {
        (0..self.steps_recorded())
            .map(|s| {
                self.procs_records
                    .iter()
                    .filter_map(|r| r.step_stats.get(s))
                    .flat_map(|phases| phases.iter().map(&field))
                    .sum()
            })
            .collect()
    }

    /// Interaction-list group traversals performed by the batched force
    /// kernel over all processors and measured steps (zero for the
    /// per-body ablations).
    pub fn force_groups(&self) -> u64 {
        self.procs_records.iter().map(|r| r.force_groups).sum()
    }

    /// Interaction-list entries emitted by the batched force kernel over
    /// all processors and measured steps.
    pub fn force_list_entries(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.force_list_entries)
            .sum()
    }

    /// Pair interactions the batched force kernel evaluated from its lists
    /// over all processors and measured steps.
    pub fn force_interactions(&self) -> u64 {
        self.procs_records
            .iter()
            .map(|r| r.force_interactions)
            .sum()
    }

    /// Mean interaction-list length (entries per group traversal); `0.0`
    /// when the batched kernel did not run.
    pub fn force_list_len(&self) -> f64 {
        let groups = self.force_groups();
        if groups == 0 {
            0.0
        } else {
            self.force_list_entries() as f64 / groups as f64
        }
    }

    /// List-reuse factor: pair interactions evaluated per emitted list
    /// entry (approaches the group size for spatially compact groups);
    /// `0.0` when the batched kernel did not run.
    pub fn force_list_reuse(&self) -> f64 {
        let entries = self.force_list_entries();
        if entries == 0 {
            0.0
        } else {
            self.force_interactions() as f64 / entries as f64
        }
    }

    /// Per-measured-step tree-phase load imbalance (same definition as
    /// [`RunStats::tree_imbalance`], per step instead of over the run).
    pub fn step_tree_imbalance(&self) -> Vec<f64> {
        (0..self.steps_recorded())
            .map(|s| {
                let work: Vec<u64> = self
                    .procs_records
                    .iter()
                    .filter_map(|r| r.step_stats.get(s))
                    .map(|phases| {
                        let p = &phases[Phase::Tree.index()];
                        p.time.saturating_sub(p.barrier_wait)
                    })
                    .collect();
                let max = work.iter().max().copied().unwrap_or(0) as f64;
                let avg = if work.is_empty() {
                    0.0
                } else {
                    work.iter().sum::<u64>() as f64 / work.len() as f64
                };
                if avg == 0.0 {
                    1.0
                } else {
                    max / avg
                }
            })
            .collect()
    }

    /// Panic unless the run validated.
    pub fn assert_valid(&self) {
        if let Some(e) = &self.validation_error {
            panic!("{} run failed validation: {e}", self.algorithm);
        }
    }
}

/// Nearest-rank percentile of an unsorted `u64` sample. `p` is in
/// `[0, 100]`; the result is always an observed value (no interpolation),
/// and `0` for an empty sample. Used for repeat-aware per-step summaries:
/// pool the per-step series across repeats, then take p50/p99.
pub fn percentile_u64(values: &[u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile of an unsorted `f64` sample (`0.0` when empty).
pub fn percentile_f64(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run the complete application on `env` and return per-processor records.
pub fn run_simulation<E: Env>(env: &E, cfg: &SimConfig, bodies: &[Body]) -> RunStats {
    run_inner(env, cfg, bodies).0
}

/// Run the application and also return the final body state (for examples
/// and physics tests).
pub fn run_simulation_with_state<E: Env>(
    env: &E,
    cfg: &SimConfig,
    bodies: &[Body],
) -> (RunStats, Vec<Body>) {
    run_inner(env, cfg, bodies)
}

fn run_inner<E: Env>(env: &E, cfg: &SimConfig, bodies: &[Body]) -> (RunStats, Vec<Body>) {
    let n = bodies.len();
    let world = World::new(env, bodies);
    let tree = SharedTree::new(env, n, cfg.k, cfg.algorithm.layout());
    let mut builder = Builder::new(env, cfg.algorithm, n, cfg.k);
    if let Some(t) = cfg.space_threshold {
        builder = builder.with_space_threshold(t);
    }
    builder = builder.with_space_rebalance(cfg.space_rebalance);
    let flat = cfg
        .flat_force
        .then(|| FlatTree::new(env, n, cfg.k, cfg.algorithm.layout()));
    let force_scratch = flat
        .as_ref()
        .map(|f| ForceScratch::new(env, f, n, env.num_procs()));
    let pool = WorkerPool::new(env.num_procs());
    execute(
        env,
        &pool,
        cfg,
        &world,
        &tree,
        flat.as_ref(),
        force_scratch.as_ref(),
        &builder,
    )
}

/// Run the warm-up + measured protocol over already-allocated state and
/// return the run's statistics plus the final body snapshot. This is the
/// single execution path shared by the one-shot [`run_simulation`] entry
/// points and the state-reusing [`crate::engine::SimEngine`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute<E: Env>(
    env: &E,
    pool: &WorkerPool,
    cfg: &SimConfig,
    world: &World,
    tree: &SharedTree,
    flat: Option<&FlatTree>,
    force_scratch: Option<&ForceScratch>,
    builder: &Builder,
) -> (RunStats, Vec<Body>) {
    let total_steps = cfg.warmup_steps + cfg.measured_steps;
    // Positions as of the last tree build, captured for validation (the
    // final update phase moves bodies after the tree was summarized).
    let tree_snapshot: crate::sync::Mutex<Option<Vec<crate::math::Vec3>>> =
        crate::sync::Mutex::new(None);
    assert!(
        !cfg.algorithm.builds_flat_directly() || flat.is_some(),
        "MORTON builds the flat snapshot directly and requires flat_force = true"
    );
    let pipeline: StepPipeline<E> = StepPipeline::for_algorithm(cfg.algorithm);
    let io = StageIo {
        cfg,
        world,
        tree,
        flat,
        force_scratch,
        builder,
        total_steps,
        tree_snapshot: &tree_snapshot,
    };

    let procs_records = pool.run(env, |proc, ctx| {
        let mut rec = ProcRecord {
            proc,
            steps: Vec::with_capacity(cfg.measured_steps),
            phases: [CtxStats::default(); 4],
            step_stats: Vec::with_capacity(cfg.measured_steps),
            tree_locks: 0,
            tree_remote_misses: 0,
            tree_page_faults: 0,
            tree_lock_wait: 0,
            barrier_wait: 0,
            flatten_time: 0,
            sort_time: 0,
            force_groups: 0,
            force_list_entries: 0,
            force_interactions: 0,
            final_stats: CtxStats::default(),
        };
        for step in 0..total_steps {
            let measuring = step >= cfg.warmup_steps;
            pipeline.run_step(env, ctx, &io, proc, step as u32, measuring, &mut rec);
        }
        rec.final_stats = env.stats(ctx);
        rec
    });

    let validation_error = if cfg.validate {
        let positions = tree_snapshot
            .lock()
            .take()
            .unwrap_or_else(|| world.positions());
        if cfg.algorithm.builds_flat_directly() {
            // MORTON never populates the linked tree; validate the flat
            // snapshot against a sequential sort-then-emit reference.
            crate::tree::validate::validate_flat_morton(
                flat.expect("MORTON requires the flat snapshot"),
                &positions,
                &world.masses(),
                cfg.k,
            )
            .err()
        } else {
            validate_with(
                tree,
                &positions,
                &world.masses(),
                ValidateOpts {
                    check_summaries: true,
                    allow_empty_cells: builder.may_leave_husks(),
                },
            )
            .err()
        }
    } else {
        None
    };
    let state = world.snapshot();

    (
        RunStats {
            algorithm: cfg.algorithm,
            n: world.n,
            procs: env.num_procs(),
            k: cfg.k,
            warmup_steps: cfg.warmup_steps,
            measured_steps: cfg.measured_steps,
            procs_records,
            validation_error,
        },
        state,
    )
}

#[cfg(test)]
mod percentile_tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile_u64(&[], 50.0), 0);
        assert_eq!(percentile_u64(&[7], 50.0), 7);
        assert_eq!(percentile_u64(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&v, 50.0), 50);
        assert_eq!(percentile_u64(&v, 99.0), 99);
        assert_eq!(percentile_u64(&v, 100.0), 100);
        assert_eq!(percentile_u64(&v, 0.0), 1);
        // Unsorted input is handled.
        assert_eq!(percentile_u64(&[30, 10, 20], 50.0), 20);
        assert_eq!(percentile_f64(&[], 50.0), 0.0);
        assert_eq!(percentile_f64(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile_f64(&[3.0, 1.0, 2.0], 99.0), 3.0);
    }
}
