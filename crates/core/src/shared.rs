//! Shared-memory containers.
//!
//! A [`SharedVec`] is a fixed-length array that lives in the (real or
//! simulated) shared address space: it owns normal host memory holding the
//! actual values *and* a range of virtual addresses obtained from the
//! environment, so that every access can be reported to the environment's
//! timing model.
//!
//! # Soundness contract
//!
//! `SharedVec` is `Sync` and allows mutation through `&self` (via
//! `UnsafeCell`), exactly like the shared arrays of a C shared-memory
//! program. The algorithms in this crate keep such accesses race-free the
//! same way the SPLASH codes do:
//!
//! * an element that can be written concurrently is only touched while
//!   holding the [`Env`] lock the algorithm associates with it, or
//! * the element is owned by a single processor during the current phase,
//!   with phase transitions separated by [`Env::barrier`].
//!
//! This is the part of the reproduction where, as expected, a shared mutable
//! tree "fights the borrow checker": the unsafety is confined to this module
//! and [`crate::tree`], with the contract stated here.

use crate::env::{Env, Placement, Region, VAddr};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The region registry: an index from virtual address ranges to the
/// [`Region`] that owns them.
///
/// Allocating containers report their ranges through [`Env::tag_region`];
/// attribution-capable environments collect the mappings in a `RegionMap`
/// and consult it on every simulated miss or fault. The map is built
/// single-threaded during world/tree setup and then only read, so lookups
/// are a lock-free binary search over sorted disjoint ranges.
#[derive(Debug, Default, Clone)]
pub struct RegionMap {
    /// Sorted, pairwise-disjoint `(base, end, region)` triples.
    ranges: Vec<(VAddr, VAddr, Region)>,
}

impl RegionMap {
    pub fn new() -> Self {
        RegionMap { ranges: Vec::new() }
    }

    /// Register `[base, base + bytes)` as belonging to `region`.
    ///
    /// Ranges must not overlap existing entries (allocators hand out
    /// disjoint ranges, so an overlap is a tagging bug); re-tagging an
    /// identical range with the same region is idempotent.
    pub fn insert(&mut self, base: VAddr, bytes: u64, region: Region) {
        if bytes == 0 {
            return;
        }
        let end = base + bytes;
        let i = self.ranges.partition_point(|&(b, _, _)| b < base);
        if let Some(&(b, e, r)) = self.ranges.get(i) {
            if b == base && e == end && r == region {
                return;
            }
        }
        let clear_left = i == 0 || self.ranges[i - 1].1 <= base;
        let clear_right = i == self.ranges.len() || end <= self.ranges[i].0;
        assert!(
            clear_left && clear_right,
            "region tag [{base:#x}, {end:#x}) = {region} overlaps an existing range"
        );
        self.ranges.insert(i, (base, end, region));
    }

    /// The region owning `addr`; [`Region::Other`] for untagged addresses.
    #[inline]
    pub fn lookup(&self, addr: VAddr) -> Region {
        let i = self.ranges.partition_point(|&(b, _, _)| b <= addr);
        match i.checked_sub(1).map(|j| self.ranges[j]) {
            Some((_, end, region)) if addr < end => region,
            _ => Region::Other,
        }
    }

    /// Number of registered ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterate over `(base, end, region)` triples in address order.
    pub fn iter(&self) -> impl Iterator<Item = (VAddr, VAddr, Region)> + '_ {
        self.ranges.iter().copied()
    }
}

/// A fixed-length shared array of `Copy` data. See the module docs for the
/// soundness contract.
pub struct SharedVec<T> {
    slots: Box<[UnsafeCell<T>]>,
    base: VAddr,
    stride: u64,
}

// SAFETY: access discipline is delegated to the algorithms per the module
// docs; `T: Send` because values move between threads.
unsafe impl<T: Send> Sync for SharedVec<T> {}
unsafe impl<T: Send> Send for SharedVec<T> {}

impl<T: Copy> SharedVec<T> {
    /// Allocate a shared array of `len` copies of `init`.
    pub fn new<E: Env>(env: &E, len: usize, init: T, place: Placement) -> Self {
        let stride = std::mem::size_of::<T>().max(1) as u64;
        let base = env.alloc(
            stride * len as u64,
            stride.next_power_of_two().min(64),
            place,
        );
        let slots = (0..len).map(|_| UnsafeCell::new(init)).collect();
        SharedVec {
            slots,
            base,
            stride,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Virtual address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> VAddr {
        debug_assert!(i < self.slots.len());
        self.base + self.stride * i as u64
    }

    /// Size in bytes of one element in the simulated address space.
    #[inline]
    pub fn stride(&self) -> u32 {
        self.stride as u32
    }

    /// Report this array's address range to the environment as `region`
    /// (see [`Env::tag_region`]). Called once from setup code.
    pub fn tag<E: Env>(&self, env: &E, region: Region) {
        env.tag_region(self.base, self.stride * self.slots.len() as u64, region);
    }

    /// Timed read of element `i`.
    #[inline]
    pub fn load<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize) -> T {
        env.read(ctx, self.addr(i), self.stride as u32);
        // SAFETY: module-level contract (lock/ownership discipline).
        unsafe { *self.slots[i].get() }
    }

    /// Timed write of element `i`.
    #[inline]
    pub fn store<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, value: T) {
        env.write(ctx, self.addr(i), self.stride as u32);
        // SAFETY: module-level contract.
        unsafe { *self.slots[i].get() = value };
    }

    /// Timed *unordered* read of element `i`: an optimistic pre-check whose
    /// result is re-validated under a lock (or found to be benignly stale)
    /// before being acted on. Reported to the environment through
    /// [`Env::read_unordered`], so checking environments know not to flag
    /// it as a data race.
    #[inline]
    pub fn load_relaxed<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize) -> T {
        env.read_unordered(ctx, self.addr(i), self.stride as u32);
        // SAFETY: module-level contract. The value may be concurrently
        // written (struct-granularity tearing included); callers only use
        // fields whose staleness they re-validate.
        unsafe { *self.slots[i].get() }
    }

    /// Timed read-modify-write of element `i` (counts as one read and one
    /// write of the element).
    #[inline]
    pub fn update<E: Env, R>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        i: usize,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        env.read(ctx, self.addr(i), self.stride as u32);
        env.write(ctx, self.addr(i), self.stride as u32);
        // SAFETY: module-level contract.
        unsafe { f(&mut *self.slots[i].get()) }
    }

    /// Untimed read, for setup, teardown and verification code running
    /// outside the measured parallel phases. Subject to the same race-freedom
    /// contract as [`SharedVec::load`].
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        // SAFETY: module-level contract.
        unsafe { *self.slots[i].get() }
    }

    /// Untimed write; see [`SharedVec::peek`].
    #[inline]
    pub fn poke(&self, i: usize, value: T) {
        // SAFETY: module-level contract.
        unsafe { *self.slots[i].get() = value };
    }

    /// Iterate over a snapshot of the contents (untimed).
    pub fn iter_peek(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len()).map(move |i| self.peek(i))
    }

    /// Untimed borrow of a contiguous range — the native fast path for
    /// per-processor scratch that the borrowing processor alone writes
    /// (the batched force kernel streams its interaction lists straight
    /// from the scratch row this way, with no per-element copies).
    /// Stricter contract than [`SharedVec::peek`]: no processor may write
    /// the range while the returned slice lives.
    #[inline]
    pub fn peek_slice(&self, range: core::ops::Range<usize>) -> &[T] {
        let s = &self.slots[range];
        // SAFETY: `UnsafeCell<T>` is `repr(transparent)` over `T`, so the
        // pointer cast preserves layout; the contract above (no concurrent
        // writes while the borrow lives) is the module-level race-freedom
        // contract strengthened to exclude the owner's own writes, which
        // makes the shared reference sound for its lifetime.
        unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<T>(), s.len()) }
    }
}

/// A shared array of atomic 32-bit counters, used for dynamic index
/// allocation (the SPLASH "obtain the next index in the array dynamically"),
/// child-completion counts in the parallel center-of-mass pass, and the
/// frequently-accessed shared counters whose false sharing the paper calls
/// out in the ORIG algorithm.
pub struct SharedAtomicVec {
    slots: Box<[AtomicU32]>,
    base: VAddr,
}

impl SharedAtomicVec {
    pub fn new<E: Env>(env: &E, len: usize, init: u32, place: Placement) -> Self {
        let base = env.alloc(4 * len as u64, 4, place);
        let slots = (0..len).map(|_| AtomicU32::new(init)).collect();
        SharedAtomicVec { slots, base }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn addr(&self, i: usize) -> VAddr {
        self.base + 4 * i as u64
    }

    /// Report this array's address range as `region`; see [`SharedVec::tag`].
    pub fn tag<E: Env>(&self, env: &E, region: Region) {
        env.tag_region(self.base, 4 * self.slots.len() as u64, region);
    }

    /// Timed atomic fetch-add.
    #[inline]
    pub fn fetch_add<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, v: u32) -> u32 {
        env.rmw(ctx, self.addr(i), 4);
        let r = self.slots[i].fetch_add(v, Ordering::AcqRel);
        env.atomic_commit(ctx, self.addr(i), 4);
        r
    }

    /// Timed atomic fetch-sub.
    #[inline]
    pub fn fetch_sub<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, v: u32) -> u32 {
        env.rmw(ctx, self.addr(i), 4);
        let r = self.slots[i].fetch_sub(v, Ordering::AcqRel);
        env.atomic_commit(ctx, self.addr(i), 4);
        r
    }

    /// Timed atomic load (acquire). The accounting call follows the real
    /// load: acquires are instrumented after the operation they describe
    /// (see [`Env::atomic_commit`]).
    #[inline]
    pub fn load<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize) -> u32 {
        let r = self.slots[i].load(Ordering::Acquire);
        env.read_atomic(ctx, self.addr(i), 4);
        r
    }

    /// Timed atomic store (release).
    #[inline]
    pub fn store<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, v: u32) {
        env.write_atomic(ctx, self.addr(i), 4);
        self.slots[i].store(v, Ordering::Release)
    }

    /// Untimed load for setup/verification.
    #[inline]
    pub fn peek(&self, i: usize) -> u32 {
        self.slots[i].load(Ordering::Acquire)
    }

    /// Untimed store for setup/verification.
    #[inline]
    pub fn poke(&self, i: usize, v: u32) {
        self.slots[i].store(v, Ordering::Release)
    }
}

/// A shared array of atomic 64-bit counters (work totals, cost sums).
pub struct SharedAtomicVec64 {
    slots: Box<[AtomicU64]>,
    base: VAddr,
}

impl SharedAtomicVec64 {
    pub fn new<E: Env>(env: &E, len: usize, init: u64, place: Placement) -> Self {
        let base = env.alloc(8 * len as u64, 8, place);
        let slots = (0..len).map(|_| AtomicU64::new(init)).collect();
        SharedAtomicVec64 { slots, base }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn addr(&self, i: usize) -> VAddr {
        self.base + 8 * i as u64
    }

    /// Report this array's address range as `region`; see [`SharedVec::tag`].
    pub fn tag<E: Env>(&self, env: &E, region: Region) {
        env.tag_region(self.base, 8 * self.slots.len() as u64, region);
    }

    #[inline]
    pub fn fetch_add<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, v: u64) -> u64 {
        env.rmw(ctx, self.addr(i), 8);
        let r = self.slots[i].fetch_add(v, Ordering::AcqRel);
        env.atomic_commit(ctx, self.addr(i), 8);
        r
    }

    #[inline]
    pub fn load<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize) -> u64 {
        let r = self.slots[i].load(Ordering::Acquire);
        env.read_atomic(ctx, self.addr(i), 8);
        r
    }

    #[inline]
    pub fn store<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, v: u64) {
        env.write_atomic(ctx, self.addr(i), 8);
        self.slots[i].store(v, Ordering::Release)
    }

    #[inline]
    pub fn peek(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Acquire)
    }

    #[inline]
    pub fn poke(&self, i: usize, v: u64) {
        self.slots[i].store(v, Ordering::Release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;

    #[test]
    fn shared_vec_basics() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let v: SharedVec<u64> = SharedVec::new(&env, 16, 0, Placement::Global);
        assert_eq!(v.len(), 16);
        v.store(&env, &mut ctx, 3, 99);
        assert_eq!(v.load(&env, &mut ctx, 3), 99);
        assert_eq!(v.peek(3), 99);
        v.update(&env, &mut ctx, 3, |x| *x += 1);
        assert_eq!(v.peek(3), 100);
    }

    #[test]
    fn addresses_are_strided() {
        let env = NativeEnv::new(1);
        let v: SharedVec<[u8; 24]> = SharedVec::new(&env, 8, [0; 24], Placement::Global);
        assert_eq!(v.addr(1) - v.addr(0), 24);
        assert_eq!(v.stride(), 24);
    }

    #[test]
    fn distinct_vecs_do_not_overlap() {
        let env = NativeEnv::new(1);
        let a: SharedVec<u64> = SharedVec::new(&env, 100, 0, Placement::Global);
        let b: SharedVec<u64> = SharedVec::new(&env, 100, 0, Placement::Local(0));
        let a_end = a.addr(99) + 8;
        assert!(b.addr(0) >= a_end || b.addr(99) + 8 <= a.addr(0));
    }

    #[test]
    fn atomic_vec_concurrent_fetch_add() {
        let env = NativeEnv::new(4);
        let v = SharedAtomicVec::new(&env, 2, 0, Placement::Global);
        std::thread::scope(|s| {
            for p in 0..4 {
                let env = &env;
                let v = &v;
                s.spawn(move || {
                    let mut ctx = env.make_ctx(p);
                    for _ in 0..10_000 {
                        v.fetch_add(env, &mut ctx, 0, 1);
                    }
                });
            }
        });
        assert_eq!(v.peek(0), 40_000);
        assert_eq!(v.peek(1), 0);
    }

    #[test]
    fn atomic64_roundtrip() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let v = SharedAtomicVec64::new(&env, 4, 7, Placement::Global);
        assert_eq!(v.load(&env, &mut ctx, 2), 7);
        v.store(&env, &mut ctx, 2, 1 << 40);
        assert_eq!(v.fetch_add(&env, &mut ctx, 2, 5), 1 << 40);
        assert_eq!(v.peek(2), (1 << 40) + 5);
    }

    #[test]
    #[should_panic]
    fn load_out_of_bounds_panics() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let v: SharedVec<u64> = SharedVec::new(&env, 4, 0, Placement::Global);
        let _ = v.load(&env, &mut ctx, 4);
    }

    #[test]
    #[should_panic]
    fn store_out_of_bounds_panics() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let v: SharedVec<u64> = SharedVec::new(&env, 4, 0, Placement::Global);
        v.store(&env, &mut ctx, 100, 1);
    }

    #[test]
    #[should_panic]
    fn poke_out_of_bounds_panics() {
        let env = NativeEnv::new(1);
        let v: SharedVec<u32> = SharedVec::new(&env, 1, 0, Placement::Global);
        v.poke(1, 9);
    }

    #[test]
    #[should_panic]
    fn atomic_out_of_bounds_panics() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let v = SharedAtomicVec::new(&env, 2, 0, Placement::Global);
        v.fetch_add(&env, &mut ctx, 2, 1);
    }

    #[test]
    fn stride_and_alignment_invariants() {
        let env = NativeEnv::new(1);
        // The simulated base address is aligned to the element size rounded
        // up to a power of two (capped at a cache line), so no element
        // straddles an alignment boundary smaller than itself.
        let a: SharedVec<u32> = SharedVec::new(&env, 5, 0, Placement::Global);
        assert_eq!(a.stride(), 4);
        assert_eq!(a.addr(0) % 4, 0);
        let b: SharedVec<f64> = SharedVec::new(&env, 5, 0.0, Placement::Global);
        assert_eq!(b.stride(), 8);
        assert_eq!(b.addr(0) % 8, 0);
        let c: SharedVec<[u8; 24]> = SharedVec::new(&env, 5, [0; 24], Placement::Global);
        assert_eq!(c.stride(), 24);
        assert_eq!(c.addr(0) % 32, 0); // 24 rounds up to 32
        for v in [&a.addr(0), &b.addr(0)] {
            assert_eq!(v % 4, 0, "every element address is 4-byte aligned");
        }
        // Addresses advance by exactly one stride with no padding between
        // elements of the same vector.
        for i in 0..4 {
            assert_eq!(c.addr(i + 1) - c.addr(i), 24);
        }
        // Atomic vectors are word/double-word aligned.
        let d = SharedAtomicVec::new(&env, 3, 0, Placement::Global);
        assert_eq!(d.addr(0) % 4, 0);
        let e = SharedAtomicVec64::new(&env, 3, 0, Placement::Global);
        assert_eq!(e.addr(0) % 8, 0);
    }

    #[test]
    fn region_map_lookup_and_boundaries() {
        let mut m = RegionMap::new();
        m.insert(0x1000, 0x100, Region::Bodies);
        m.insert(0x3000, 0x10, Region::TreeCells);
        m.insert(0x2000, 0x80, Region::FlatTree);
        assert_eq!(m.len(), 3);
        assert_eq!(m.lookup(0x0fff), Region::Other);
        assert_eq!(m.lookup(0x1000), Region::Bodies);
        assert_eq!(m.lookup(0x10ff), Region::Bodies);
        assert_eq!(m.lookup(0x1100), Region::Other);
        assert_eq!(m.lookup(0x2000), Region::FlatTree);
        assert_eq!(m.lookup(0x3008), Region::TreeCells);
        assert_eq!(m.lookup(0x3010), Region::Other);
        // Ranges come back sorted regardless of insertion order.
        let bases: Vec<u64> = m.iter().map(|(b, _, _)| b).collect();
        assert_eq!(bases, vec![0x1000, 0x2000, 0x3000]);
        // Identical re-tag is idempotent; zero-length tags are dropped.
        m.insert(0x1000, 0x100, Region::Bodies);
        m.insert(0x9000, 0, Region::Partition);
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn region_map_rejects_overlap() {
        let mut m = RegionMap::new();
        m.insert(0x1000, 0x100, Region::Bodies);
        m.insert(0x10ff, 0x10, Region::TreeCells);
    }

    #[test]
    fn barrier_transfers_element_ownership_between_threads() {
        // Two native threads ping-pong ownership of the same elements
        // across barriers: each round, the writer of the previous round
        // becomes the reader. Values observed after each barrier must be
        // exactly the other thread's writes (the race detector certifies
        // the ordering; this smoke test certifies the data).
        let env = NativeEnv::new(2);
        let v: SharedVec<u64> = SharedVec::new(&env, 8, 0, Placement::Global);
        crate::harness::spmd(&env, |proc, ctx| {
            for round in 0u64..4 {
                let writer = (round as usize) % 2;
                if proc == writer {
                    for i in 0..8 {
                        v.store(&env, ctx, i, round * 100 + i as u64);
                    }
                }
                env.barrier(ctx);
                let got = v.load(&env, ctx, 5);
                assert_eq!(got, round * 100 + 5, "round {round} proc {proc}");
                env.barrier(ctx);
            }
        });
    }
}
