//! The per-step phase pipeline: each simulation phase as an explicit stage.
//!
//! Historically the step loop in [`crate::app`] was one ~150-line block with
//! the timing / stats-delta bookkeeping copy-pasted once per phase. The
//! pipeline splits it into [`StepStage`] implementations — tree, partition,
//! force, update — and keeps the accounting in exactly one place,
//! [`StepPipeline::run_step`]: phase begin/end markers, barrier-boundary
//! phase times, [`CtxStats`] deltas (always via [`CtxStats::delta_since`],
//! never raw counter subtraction), and the tree phase's lock/miss/fault
//! attribution. A future stage (I/O, checkpointing) slots into
//! [`StepPipeline::new`]'s stage list without touching the loop.
//!
//! Barrier placement is part of each stage's algorithm, so stages own their
//! barriers: the tree stage barriers internally between build, CoM and
//! flatten sub-phases but deliberately ends *without* one (the partition
//! stage's closing barrier is what separates the flatten's writes from the
//! force stage's reads); partition, force and update each end with the
//! phase-closing barrier.

use crate::algorithms::{morton, Algorithm, Builder};
use crate::app::{PhaseSample, ProcRecord, SimConfig};
use crate::env::{Env, Phase};
use crate::force::{force_phase, force_phase_grouped, force_phase_recursive, ForceScratch};
use crate::math::Vec3;
use crate::partition::{costzones, morton_reorder};
use crate::sync::Mutex;
use crate::tree::flat::FlatTree;
use crate::tree::types::SharedTree;
use crate::update_phase::update_phase;
use crate::world::World;

/// Everything a stage may touch: the run's configuration and shared state.
/// One instance is shared by all processors for the whole run.
pub struct StageIo<'a> {
    pub cfg: &'a SimConfig,
    pub world: &'a World,
    pub tree: &'a SharedTree,
    pub flat: Option<&'a FlatTree>,
    /// Per-processor interaction-list scratch for the batched force kernel
    /// (present whenever `flat` is).
    pub force_scratch: Option<&'a ForceScratch>,
    pub builder: &'a Builder,
    pub total_steps: usize,
    /// Positions as of the last tree build, captured for validation (the
    /// final update stage moves bodies after the tree was summarized).
    pub tree_snapshot: &'a Mutex<Option<Vec<Vec3>>>,
}

/// Per-stage metrics a stage reports back to the accounting loop. The tree
/// stages report sub-phase times (the flatten pass of the linked-tree
/// pipeline, or the key sort of the MORTON pipeline — never both); the
/// force stage reports the batched kernel's interaction-list statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageExtra {
    /// Time spent in the cooperative flat-snapshot pass.
    pub flatten: u64,
    /// Time spent in the parallel Morton key sort.
    pub sort: u64,
    /// Interaction-list group traversals performed by the batched kernel.
    pub force_groups: u64,
    /// Interaction-list entries emitted by the batched kernel.
    pub force_list_entries: u64,
    /// Pair interactions evaluated from the lists.
    pub force_interactions: u64,
}

impl StageExtra {
    pub const NONE: StageExtra = StageExtra {
        flatten: 0,
        sort: 0,
        force_groups: 0,
        force_list_entries: 0,
        force_interactions: 0,
    };
}

/// One phase of a simulation step, executed by every processor.
pub trait StepStage<E: Env>: Send + Sync {
    /// The phase this stage's work (and accounting) is attributed to.
    fn phase(&self) -> Phase;

    /// Execute the stage for one processor. Stages own their barrier
    /// structure (see the module docs). The return value carries the
    /// stage's sub-phase times, credited to [`ProcRecord::flatten_time`] /
    /// [`ProcRecord::sort_time`] (only the tree stages report nonzero
    /// values).
    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        step: u32,
    ) -> StageExtra;
}

/// An ordered list of stages plus the single copy of the per-phase
/// accounting logic.
pub struct StepPipeline<E: Env> {
    stages: Vec<Box<dyn StepStage<E>>>,
}

impl<E: Env> StepPipeline<E> {
    /// A pipeline over an explicit stage list.
    pub fn new(stages: Vec<Box<dyn StepStage<E>>>) -> StepPipeline<E> {
        StepPipeline { stages }
    }

    /// The standard Barnes-Hut step: tree → partition → force → update.
    pub fn standard() -> StepPipeline<E> {
        StepPipeline::new(vec![
            Box::new(TreeStage),
            Box::new(PartitionStage),
            Box::new(ForceStage),
            Box::new(UpdateStage),
        ])
    }

    /// The pipeline for `alg`: the five linked-tree algorithms run the
    /// standard stages; MORTON swaps in its sort-then-emit tree stage and
    /// the cost-cut partition over the emitted body order.
    pub fn for_algorithm(alg: Algorithm) -> StepPipeline<E> {
        if alg.builds_flat_directly() {
            StepPipeline::new(vec![
                Box::new(MortonTreeStage),
                Box::new(MortonPartitionStage),
                Box::new(ForceStage),
                Box::new(UpdateStage),
            ])
        } else {
            StepPipeline::standard()
        }
    }

    /// Run one full step for one processor, accumulating measurements into
    /// `rec` when `measuring`. Phase times are measured at barrier
    /// boundaries via `now` (`stats().time` may lag behind on some
    /// environments), so the [`CtxStats`] delta of each stage has its `time`
    /// overwritten with the barrier-boundary time — keeping the two accounts
    /// consistent.
    #[allow(clippy::too_many_arguments)]
    pub fn run_step(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        step: u32,
        measuring: bool,
        rec: &mut ProcRecord,
    ) {
        let mut prev_stats = env.stats(ctx);
        let mut prev_t = env.now(ctx);
        let mut sample = PhaseSample::default();
        let mut step_stats = [crate::env::CtxStats::default(); 4];
        for stage in &self.stages {
            let phase = stage.phase();
            // Mark the phase on the worker thread so a panic anywhere in the
            // stage is attributed to (proc, phase, step) when propagated out
            // of the pool (see crate::harness::set_worker_phase).
            crate::harness::set_worker_phase(Some((phase, step)));
            env.phase_begin(ctx, phase, step);
            let extra = stage.run(env, ctx, io, proc, step);
            env.phase_end(ctx, phase, step);
            let t = env.now(ctx);
            let stats = env.stats(ctx);
            if measuring {
                let mut delta = stats.delta_since(&prev_stats);
                delta.time = t - prev_t;
                *sample.phase_mut(phase) += delta.time;
                step_stats[phase.index()].accumulate(&delta);
                rec.phases[phase.index()].accumulate(&delta);
                rec.barrier_wait += delta.barrier_wait;
                if phase == Phase::Tree {
                    rec.tree_locks += delta.lock_acquires;
                    rec.tree_remote_misses += delta.remote_misses;
                    rec.tree_page_faults += delta.page_faults;
                    rec.tree_lock_wait += delta.lock_wait;
                    rec.flatten_time += extra.flatten;
                    rec.sort_time += extra.sort;
                }
                if phase == Phase::Force {
                    rec.force_groups += extra.force_groups;
                    rec.force_list_entries += extra.force_list_entries;
                    rec.force_interactions += extra.force_interactions;
                }
            }
            prev_stats = stats;
            prev_t = t;
        }
        crate::harness::set_worker_phase(None);
        if measuring {
            rec.steps.push(sample);
            rec.step_stats.push(step_stats);
        }
    }
}

/// Tree-build phase: optional Morton reorder, bounds reduction, build,
/// center-of-mass pass, and the cooperative flat-snapshot pass.
struct TreeStage;

impl<E: Env> StepStage<E> for TreeStage {
    fn phase(&self) -> Phase {
        Phase::Tree
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        step: u32,
    ) -> StageExtra {
        let cfg = io.cfg;
        if cfg.morton_every > 0 && (step as usize).is_multiple_of(cfg.morton_every) {
            morton_reorder(env, ctx, io.world, proc);
        }
        let cube = crate::algorithms::common::bounds_phase(env, ctx, io.world, proc);
        io.builder
            .build(env, ctx, io.tree, io.world, proc, step, cube);
        env.barrier(ctx);
        io.builder.com(env, ctx, io.tree, io.world, proc, step);
        env.barrier(ctx);
        let mut flatten_t = 0;
        if let Some(flat) = io.flat {
            // Snapshot the summarized tree. The fill's writes are separated
            // from the force phase's reads by the partition stage's closing
            // barrier.
            let f0 = env.now(ctx);
            let plan = flat.plan(env, ctx, io.tree);
            flat.publish_counts(env, ctx, io.tree, &plan, proc);
            env.barrier(ctx);
            flat.fill(env, ctx, io.tree, &plan, proc);
            flatten_t = env.now(ctx) - f0;
        }
        if cfg.validate && proc == 0 && step as usize + 1 == io.total_steps {
            *io.tree_snapshot.lock() = Some(io.world.positions());
        }
        StageExtra {
            flatten: flatten_t,
            ..StageExtra::NONE
        }
    }
}

/// MORTON tree-build phase: bounds reduction, parallel radix sort of the
/// Morton keys, then direct emission of the flat snapshot from the sorted
/// key array — no linked tree, no flatten, no locks.
struct MortonTreeStage;

impl<E: Env> StepStage<E> for MortonTreeStage {
    fn phase(&self) -> Phase {
        Phase::Tree
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        step: u32,
    ) -> StageExtra {
        let cfg = io.cfg;
        let flat = io
            .flat
            .expect("MORTON requires the flat force walk (flat_force = true)");
        let scratch = io.builder.morton_scratch();
        // No periodic Morton reorder: the emitted body order *is* the
        // Morton order, refreshed every step by the partition stage.
        let cube = crate::algorithms::common::bounds_phase(env, ctx, io.world, proc);
        let s0 = env.now(ctx);
        morton::sort_keys(env, ctx, io.world, scratch, &cube, proc);
        let sort_t = env.now(ctx) - s0;
        // Emission: plan is deterministic and identical on every
        // processor; owners publish counts, a barrier, disjoint fill,
        // another barrier, then processor 0 summarizes the spine. The
        // partition stage's closing barrier separates the spine writes
        // from the force phase's reads (the partition itself reads only
        // `flat.bodies`, complete since the post-fill barrier).
        let plan = morton::plan(env, ctx, scratch, io.world.n, cfg.k, cube);
        let owned = morton::publish_counts(env, ctx, scratch, &plan, cfg.k, proc);
        env.barrier(ctx);
        morton::fill(env, ctx, flat, io.world, scratch, &plan, &owned, cfg.k);
        env.barrier(ctx);
        if proc == 0 {
            morton::fill_spine(env, ctx, flat, scratch, &plan);
        }
        if cfg.validate && proc == 0 && step as usize + 1 == io.total_steps {
            *io.tree_snapshot.lock() = Some(io.world.positions());
        }
        StageExtra {
            sort: sort_t,
            ..StageExtra::NONE
        }
    }
}

/// MORTON partitioning: a cost-weighted cut of the emitted depth-first
/// body order (costzones without the tree walk).
struct MortonPartitionStage;

impl<E: Env> StepStage<E> for MortonPartitionStage {
    fn phase(&self) -> Phase {
        Phase::Partition
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        _step: u32,
    ) -> StageExtra {
        let flat = io.flat.expect("MORTON requires the flat snapshot");
        let scratch = io.builder.morton_scratch();
        morton::partition(env, ctx, flat, io.world, scratch, proc);
        env.barrier(ctx);
        StageExtra::NONE
    }
}

/// Costzones partitioning.
struct PartitionStage;

impl<E: Env> StepStage<E> for PartitionStage {
    fn phase(&self) -> Phase {
        Phase::Partition
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        _step: u32,
    ) -> StageExtra {
        costzones(env, ctx, io.tree, io.world, proc);
        env.barrier(ctx);
        StageExtra::NONE
    }
}

/// Force computation over the flat snapshot: the batched
/// traversal/evaluation kernel by default (`group_size ≥ 1`), the per-body
/// flat walk in the `group_size = 0` ablation, or the recursive walk in
/// the `flat_force = false` ablation.
struct ForceStage;

impl<E: Env> StepStage<E> for ForceStage {
    fn phase(&self) -> Phase {
        Phase::Force
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        _step: u32,
    ) -> StageExtra {
        let extra = match io.flat {
            Some(flat) if io.cfg.group_size > 0 => {
                let scratch = io
                    .force_scratch
                    .expect("the batched force kernel requires the force-list scratch");
                let fl = force_phase_grouped(
                    env,
                    ctx,
                    flat,
                    io.world,
                    &io.cfg.force,
                    scratch,
                    io.cfg.group_size,
                    proc,
                );
                StageExtra {
                    force_groups: fl.groups,
                    force_list_entries: fl.list_entries,
                    force_interactions: fl.interactions,
                    ..StageExtra::NONE
                }
            }
            Some(flat) => {
                force_phase(env, ctx, flat, io.world, &io.cfg.force, proc);
                StageExtra::NONE
            }
            None => {
                force_phase_recursive(env, ctx, io.tree, io.world, &io.cfg.force, proc);
                StageExtra::NONE
            }
        };
        env.barrier(ctx);
        extra
    }
}

/// Position/velocity integration.
struct UpdateStage;

impl<E: Env> StepStage<E> for UpdateStage {
    fn phase(&self) -> Phase {
        Phase::Update
    }

    fn run(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        io: &StageIo<'_>,
        proc: usize,
        _step: u32,
    ) -> StageExtra {
        update_phase(env, ctx, io.world, proc, io.cfg.dt);
        env.barrier(ctx);
        StageExtra::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;

    #[test]
    fn standard_pipeline_covers_all_phases_in_order() {
        let p: StepPipeline<NativeEnv> = StepPipeline::standard();
        let phases: Vec<Phase> = p.stages.iter().map(|s| s.phase()).collect();
        assert_eq!(
            phases,
            vec![Phase::Tree, Phase::Partition, Phase::Force, Phase::Update]
        );
    }

    #[test]
    fn every_algorithm_pipeline_covers_all_phases_in_order() {
        for alg in Algorithm::ALL {
            let p: StepPipeline<NativeEnv> = StepPipeline::for_algorithm(alg);
            let phases: Vec<Phase> = p.stages.iter().map(|s| s.phase()).collect();
            assert_eq!(
                phases,
                vec![Phase::Tree, Phase::Partition, Phase::Force, Phase::Update],
                "{alg} pipeline"
            );
        }
    }
}
