//! Costzones partitioning (Singh et al.).
//!
//! After the tree is built and summarized, the bodies are re-assigned to
//! processors for the force and update phases: the tree is traversed in a
//! canonical order, accumulating per-body cost (last step's interaction
//! counts); the resulting linear cost profile is cut into `P` equal zones
//! and each processor takes the bodies of its zone. Because subtree costs
//! are stored in every cell, each processor can skip whole subtrees outside
//! its zone, so the parallel version needs no synchronization at all —
//! every processor deterministically walks the same tree.

use crate::env::Env;
use crate::math::{morton, Aabb, Cube};
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::World;

/// Periodic Morton (Z-order) reordering of a processor's zone.
///
/// Between costzones passes bodies drift, so a zone's `world.order` slice
/// slowly loses the spatial coherence the tree-build phase relies on:
/// consecutive bodies inserted into the tree (or routed by SPACE) stop
/// touching nearby nodes. Re-sorting the slice by Morton key restores that
/// locality. Each processor sorts only its own slice against a cube
/// enclosing the slice's bodies — zone membership is unchanged, nothing
/// crosses processors, and no barrier is needed (the phase's existing
/// barriers order the writes). Ties break on body id, so the pass is fully
/// deterministic.
pub fn morton_reorder<E: Env>(env: &E, ctx: &mut E::Ctx, world: &World, proc: usize) {
    let (s, e) = world.zone(proc);
    if e - s < 2 {
        return;
    }
    let mut bbox = Aabb::EMPTY;
    let mut pts: Vec<(u32, crate::math::Vec3)> = Vec::with_capacity(e - s);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let p = world.pos.load(env, ctx, b as usize);
        bbox.grow(p);
        pts.push((b, p));
    }
    let cube = Cube::enclosing(&bbox);
    let mut items: Vec<(u64, u32)> = pts
        .iter()
        .map(|&(b, p)| (morton::key_in_cube(p, &cube), b))
        .collect();
    items.sort_unstable();
    for (off, &(_, b)) in items.iter().enumerate() {
        world.order.store(env, ctx, s + off, b);
    }
    // Key generation plus comparison sort: ~O(z log z) simulated work.
    let z = (e - s) as u64;
    env.compute(ctx, z * (24 + 4 * (64 - z.leading_zeros() as u64)));
}

/// Walk state for one processor's costzones pass.
struct Zoner<'w> {
    world: &'w World,
    proc: u64,
    nproc: u64,
    total: u64,
    cost_prefix: u64,
    body_prefix: u32,
    start_written: bool,
    done: bool,
}

/// Execute the costzones pass for `proc`: writes this processor's slice of
/// `world.order` and its `zone_start` entry. Caller barriers afterwards.
pub fn costzones<E: Env>(env: &E, ctx: &mut E::Ctx, tree: &SharedTree, world: &World, proc: usize) {
    let nproc = env.num_procs() as u64;
    let root = tree.root.load(env, ctx, 0);
    let total = tree.load_cell(env, ctx, root).cost.max(1);
    let mut z = Zoner {
        world,
        proc: proc as u64,
        nproc,
        total,
        cost_prefix: 0,
        body_prefix: 0,
        start_written: false,
        done: false,
    };
    walk(env, ctx, tree, &mut z, root);
    if !z.start_written {
        world.zone_start.store(env, ctx, proc, world.n as u32);
    }
    if proc == 0 {
        world
            .zone_start
            .store(env, ctx, nproc as usize, world.n as u32);
    }
}

/// Zone of a cost prefix: `floor(prefix * P / total)`, clamped.
#[inline]
fn zone_of(prefix: u64, nproc: u64, total: u64) -> u64 {
    ((prefix as u128 * nproc as u128) / total as u128).min(nproc as u128 - 1) as u64
}

fn walk<E: Env>(env: &E, ctx: &mut E::Ctx, tree: &SharedTree, z: &mut Zoner, cell: NodeRef) {
    for ch in tree.children(env, ctx, cell) {
        if z.done {
            return;
        }
        if ch.is_null() {
            continue;
        }
        env.compute(ctx, 6);
        if ch.is_cell() {
            let c = tree.load_cell(env, ctx, ch);
            let end = z.cost_prefix + c.cost;
            // Entire subtree before my zone: skip it wholesale.
            if end * z.nproc <= z.proc * z.total {
                z.cost_prefix = end;
                z.body_prefix += c.count;
                continue;
            }
            // Entire subtree after my zone: record start if needed, stop.
            if z.cost_prefix * z.nproc >= (z.proc + 1) * z.total && z.start_written {
                z.done = true;
                return;
            }
            walk(env, ctx, tree, z, ch);
        } else {
            let l = tree.load_leaf(env, ctx, ch);
            for &b in l.body_slice() {
                let q = zone_of(z.cost_prefix, z.nproc, z.total);
                if q >= z.proc && !z.start_written {
                    z.world
                        .zone_start
                        .store(env, ctx, z.proc as usize, z.body_prefix);
                    z.start_written = true;
                }
                if q == z.proc {
                    z.world.order.store(env, ctx, z.body_prefix as usize, b);
                } else if q > z.proc {
                    z.done = true;
                    return;
                }
                z.cost_prefix += z.world.cost.load(env, ctx, b as usize).max(1) as u64;
                z.body_prefix += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::{bounds_phase, com_pass};
    use crate::algorithms::direct;
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::tree::{SharedTree, TreeLayout};
    use crate::world::World;

    fn build_and_zone(
        n: usize,
        p: usize,
        costs: Option<Box<dyn Fn(usize) -> u32 + Sync>>,
    ) -> (NativeEnv, World) {
        let env = NativeEnv::new(p);
        let bodies = Model::Plummer.generate(n, 23);
        let world = World::new(&env, &bodies);
        if let Some(f) = &costs {
            for i in 0..n {
                world.cost.poke(i, f(i));
            }
        }
        let tree = SharedTree::new(&env, n, 8, TreeLayout::PerProcessor);
        std::thread::scope(|s| {
            for proc in 0..p {
                let (env, world, tree) = (&env, &world, &tree);
                s.spawn(move || {
                    let mut ctx = env.make_ctx(proc);
                    let cube = bounds_phase(env, &mut ctx, world, proc);
                    direct::build(env, &mut ctx, tree, world, proc, cube);
                    env.barrier(&mut ctx);
                    com_pass(env, &mut ctx, tree, world, proc, 0);
                    env.barrier(&mut ctx);
                    costzones(env, &mut ctx, tree, world, proc);
                    env.barrier(&mut ctx);
                });
            }
        });
        (env, world)
    }

    fn assert_partition_valid(world: &World, n: usize, p: usize) {
        // Zones are contiguous, cover [0, n), and `order` is a permutation.
        assert_eq!(world.zone_start.peek(0), 0);
        assert_eq!(world.zone_start.peek(p), n as u32);
        for q in 0..p {
            assert!(
                world.zone_start.peek(q) <= world.zone_start.peek(q + 1),
                "zone {q} not monotone"
            );
        }
        let mut seen = vec![false; n];
        for i in 0..n {
            let b = world.order.peek(i) as usize;
            assert!(!seen[b], "body {b} assigned twice");
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_costs_give_even_zones() {
        let n = 2048;
        let p = 4;
        let (_env, world) = build_and_zone(n, p, None);
        assert_partition_valid(&world, n, p);
        for q in 0..p {
            let (s, e) = world.zone(q);
            let share = e - s;
            assert!(
                (share as i64 - (n / p) as i64).unsigned_abs() <= 16,
                "zone {q} holds {share} of {n}"
            );
        }
    }

    #[test]
    fn skewed_costs_shift_zone_boundaries() {
        let n = 1000;
        let p = 2;
        // First half of the bodies are 9x as expensive.
        let (_env, world) = build_and_zone(n, p, Some(Box::new(|i| if i < 500 { 9 } else { 1 })));
        assert_partition_valid(&world, n, p);
        // Cost-balance: each zone's total cost within 25% of half.
        let total: u64 = (0..n).map(|i| world.cost.peek(i) as u64).sum();
        for q in 0..p {
            let (s, e) = world.zone(q);
            let zc: u64 = (s..e)
                .map(|i| world.cost.peek(world.order.peek(i) as usize) as u64)
                .sum();
            let half = total / 2;
            assert!(
                zc > half / 2 && zc < half * 2,
                "zone {q} cost {zc} vs target {half}"
            );
        }
    }

    #[test]
    fn single_processor_gets_everything() {
        let n = 300;
        let (_env, world) = build_and_zone(n, 1, None);
        assert_partition_valid(&world, n, 1);
        assert_eq!(world.zone(0), (0, n));
    }

    #[test]
    fn more_procs_than_bodies() {
        let n = 3;
        let p = 8;
        let (_env, world) = build_and_zone(n, p, None);
        assert_partition_valid(&world, n, p);
    }
}
