//! Orthogonal recursive bisection (ORB) partitioning — the technique Salmon
//! used for message-passing Barnes-Hut (paper §5, related work), provided as
//! a comparison baseline for costzones.
//!
//! ORB recursively splits the processor set in half, each time splitting the
//! bodies by a cost-weighted median plane perpendicular to the longest axis
//! of their bounding box. Unlike costzones it does not need the tree, but
//! its partitions are boxes rather than tree-aligned zones, so a processor's
//! bodies map less cleanly onto subtrees (one reason costzones won on shared
//! address space machines).
//!
//! This implementation is deterministic and replicated: every processor
//! computes the same ORB over a snapshot of positions and costs, then takes
//! its own part. That costs O(n log P) per processor — acceptable as an
//! ablation baseline, which is exactly the role it plays here.

use crate::env::Env;
use crate::math::{Aabb, Vec3};
use crate::world::World;

/// Compute the ORB assignment for `procs` processors over the given
/// positions and costs. Returns, for each body, the processor it belongs
/// to. Pure function (used by tests and by [`orb_partition`]).
pub fn orb_assign(positions: &[Vec3], costs: &[u32], procs: usize) -> Vec<u8> {
    assert!((1..=256).contains(&procs));
    let mut owner = vec![0u8; positions.len()];
    let mut ids: Vec<u32> = (0..positions.len() as u32).collect();
    split(positions, costs, &mut ids, 0, procs, &mut owner);
    owner
}

fn split(
    positions: &[Vec3],
    costs: &[u32],
    ids: &mut [u32],
    first_proc: usize,
    nproc: usize,
    owner: &mut [u8],
) {
    if nproc == 1 || ids.is_empty() {
        for &b in ids.iter() {
            owner[b as usize] = first_proc as u8;
        }
        return;
    }
    // Split the processor set as evenly as possible.
    let left_procs = nproc / 2;
    let right_procs = nproc - left_procs;

    // Longest axis of the current bounding box.
    let bbox = Aabb::from_points(ids.iter().map(|&b| positions[b as usize]));
    let ext = bbox.extent();
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };

    // Sort by the chosen coordinate and cut at the cost-weighted point that
    // matches the processor split ratio.
    ids.sort_unstable_by(|&a, &b| {
        positions[a as usize][axis]
            .partial_cmp(&positions[b as usize][axis])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let total: u64 = ids.iter().map(|&b| costs[b as usize].max(1) as u64).sum();
    let target = total * left_procs as u64 / nproc as u64;
    let mut acc = 0u64;
    let mut cut = 0;
    for (i, &b) in ids.iter().enumerate() {
        if acc >= target && i > 0 {
            break;
        }
        acc += costs[b as usize].max(1) as u64;
        cut = i + 1;
    }
    cut = cut.min(ids.len());
    let (left, right) = ids.split_at_mut(cut);
    split(positions, costs, left, first_proc, left_procs, owner);
    split(
        positions,
        costs,
        right,
        first_proc + left_procs,
        right_procs,
        owner,
    );
}

/// Replicated ORB partitioning phase: every processor reads all positions
/// and costs (timed), computes the same bisection, and publishes its own
/// zone of `world.order` / `zone_start`. Drop-in alternative to
/// [`crate::partition::costzones`]; caller barriers afterwards.
pub fn orb_partition<E: Env>(env: &E, ctx: &mut E::Ctx, world: &World, proc: usize) {
    let n = world.n;
    let mut positions = Vec::with_capacity(n);
    let mut costs = Vec::with_capacity(n);
    for i in 0..n {
        positions.push(world.pos.load(env, ctx, i));
        costs.push(world.cost.load(env, ctx, i));
    }
    env.compute(ctx, (n as u64) * 12); // sort/scan work
    let procs = env.num_procs();
    let owner = orb_assign(&positions, &costs, procs);
    // Deterministic packing: bodies of processor q occupy one contiguous
    // range of `order`, in body-id order.
    let mut start = 0u32;
    for q in 0..procs {
        if q == proc {
            world.zone_start.store(env, ctx, q, start);
            let mut at = start;
            for (b, &o) in owner.iter().enumerate() {
                if o as usize == q {
                    world.order.store(env, ctx, at as usize, b as u32);
                    at += 1;
                }
            }
        } else {
            start += owner.iter().filter(|&&o| o as usize == q).count() as u32;
            continue;
        }
        break;
    }
    // Recompute the running start for the zones after mine is not needed —
    // every processor writes only its own start; processor 0 publishes the
    // terminator.
    if proc == 0 {
        world.zone_start.store(env, ctx, procs, n as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn setup(n: usize) -> (Vec<Vec3>, Vec<u32>) {
        let bodies = Model::Plummer.generate(n, 7);
        (bodies.iter().map(|b| b.pos).collect(), vec![1u32; n])
    }

    #[test]
    fn every_body_assigned_in_range() {
        let (pos, cost) = setup(500);
        for procs in [1usize, 2, 3, 8, 16] {
            let owner = orb_assign(&pos, &cost, procs);
            assert_eq!(owner.len(), 500);
            assert!(owner.iter().all(|&o| (o as usize) < procs));
            // Every processor gets at least one body when n >> P.
            for q in 0..procs {
                assert!(
                    owner.iter().any(|&o| o as usize == q),
                    "processor {q} got nothing"
                );
            }
        }
    }

    #[test]
    fn uniform_costs_balance_body_counts() {
        let (pos, cost) = setup(4096);
        let procs = 8;
        let owner = orb_assign(&pos, &cost, procs);
        for q in 0..procs {
            let share = owner.iter().filter(|&&o| o as usize == q).count();
            assert!(
                (share as i64 - 512).unsigned_abs() < 128,
                "processor {q} got {share} of 4096"
            );
        }
    }

    #[test]
    fn weighted_costs_balance_cost_sums() {
        let (pos, _) = setup(2048);
        // Cost proportional to distance from center (outer bodies heavy).
        let cost: Vec<u32> = pos.iter().map(|p| 1 + (p.norm() * 100.0) as u32).collect();
        let procs = 4;
        let owner = orb_assign(&pos, &cost, procs);
        let total: u64 = cost.iter().map(|&c| c as u64).sum();
        for q in 0..procs {
            let share: u64 = owner
                .iter()
                .zip(&cost)
                .filter(|(&o, _)| o as usize == q)
                .map(|(_, &c)| c as u64)
                .sum();
            let fair = total / procs as u64;
            assert!(
                share > fair / 2 && share < fair * 2,
                "processor {q} cost share {share} vs fair {fair}"
            );
        }
    }

    #[test]
    fn partitions_are_spatially_coherent() {
        // ORB partitions are boxes: the per-processor bounding boxes should
        // be much smaller than the global box.
        let (pos, cost) = setup(4096);
        let procs = 8;
        let owner = orb_assign(&pos, &cost, procs);
        let global = Aabb::from_points(pos.iter().copied());
        let gvol = global.extent().x * global.extent().y * global.extent().z;
        let mut volsum = 0.0;
        for q in 0..procs {
            let bb = Aabb::from_points(
                pos.iter()
                    .zip(&owner)
                    .filter(|(_, &o)| o as usize == q)
                    .map(|(p, _)| *p),
            );
            volsum += bb.extent().x * bb.extent().y * bb.extent().z;
        }
        assert!(
            volsum < gvol * 1.5,
            "ORB boxes overlap too much: {volsum} vs {gvol}"
        );
    }

    #[test]
    fn deterministic() {
        let (pos, cost) = setup(800);
        assert_eq!(orb_assign(&pos, &cost, 8), orb_assign(&pos, &cost, 8));
    }

    #[test]
    fn orb_partition_phase_produces_valid_zones() {
        use crate::env::NativeEnv;
        use crate::harness::spmd;
        use crate::world::World;
        let env = NativeEnv::new(4);
        let bodies = Model::Plummer.generate(600, 3);
        let world = World::new(&env, &bodies);
        spmd(&env, |proc, ctx| {
            orb_partition(&env, ctx, &world, proc);
            env.barrier(ctx);
        });
        // Zones cover [0, n) and `order` is a permutation.
        assert_eq!(world.zone_start.peek(0), 0);
        assert_eq!(world.zone_start.peek(4), 600);
        let mut seen = vec![false; 600];
        for i in 0..600 {
            let b = world.order.peek(i) as usize;
            assert!(!seen[b]);
            seen[b] = true;
        }
    }
}
