//! Composable span tracing and lock-contention profiling over [`Env`].
//!
//! [`TraceEnv`] wraps any environment — [`crate::env::NativeEnv`], the
//! `ssmp` simulator, or a [`crate::check::CheckedEnv`] — exactly as
//! `CheckedEnv` does, and records per-processor event buffers:
//!
//! * **Phase spans.** The application emits [`Env::phase_begin`] /
//!   [`Env::phase_end`] at every tree/partition/force/update boundary
//!   (see [`crate::app`]); `TraceEnv` turns each pair into a
//!   [`SpanRecord`] carrying the span's start/end time *and* the
//!   [`CtxStats`] delta across it — lock acquires, lock wait, barrier
//!   wait, misses and page faults attributed to exactly one phase of one
//!   step, the per-phase/per-processor breakdown behind the paper's
//!   Table 2 and Figures 14–15.
//! * **Lock events.** Every [`Env::lock`] is timed individually and
//!   aggregated into a per-lock-id contention histogram
//!   ([`TraceEnv::lock_histogram`]). The hot shared cells that the paper
//!   blames for ORIG's collapse show up as a few ids absorbing most of
//!   the wait; SPACE shows an empty histogram (it takes no locks).
//!
//! All times are in the *inner* environment's units: wall nanoseconds over
//! `NativeEnv`, simulated cycles of the modeled machine over `ssmp`.
//!
//! Buffers are exported three ways: raw records ([`TraceEnv::spans`],
//! [`TraceEnv::lock_events`]), a plain-text per-phase summary
//! ([`TraceEnv::summary`]), and a Chrome/Perfetto-compatible trace-event
//! JSON ([`TraceEnv::chrome_trace_json`]) with one track (thread) per
//! processor — load it at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Tracing is honest about its own cost: the wrapper adds a mutex-free hot
//! path for plain accesses (pure delegation) and touches its per-processor
//! buffer (an uncontended mutex) only at phase boundaries and lock
//! acquires.

use crate::env::{CtxStats, Env, Phase, Placement, Region, VAddr};
use crate::sync::Mutex;
use std::collections::HashMap;

/// One completed phase span on one processor.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub proc: usize,
    pub phase: Phase,
    /// Step index, counting warm-up steps (step 0 is the first warm-up).
    pub step: u32,
    /// Span start, in the inner environment's time units.
    pub start: u64,
    /// Span end, in the inner environment's time units.
    pub end: u64,
    /// Statistics delta across the span (`time` equals `end - start`).
    pub stats: CtxStats,
}

/// One (step, phase) entry of the per-step time series
/// ([`TraceEnv::step_series`]), aggregated over processors.
#[derive(Debug, Clone)]
pub struct StepPhaseRow {
    /// Step index, counting warm-up steps.
    pub step: u32,
    pub phase: Phase,
    /// Critical-path time: max span duration over processors.
    pub time: u64,
    /// Counters summed over processors (`time` mirrors the field above).
    pub stats: CtxStats,
    /// Load imbalance: max/avg over processors of span duration minus
    /// barrier wait. 1.0 is perfectly balanced.
    pub imbalance: f64,
}

/// One timed lock acquisition on one processor.
#[derive(Debug, Clone)]
pub struct LockEvent {
    pub proc: usize,
    /// Raw lock id (pre-hash; see [`crate::env::lock_slot`]).
    pub lock: usize,
    /// Time the acquire started.
    pub start: u64,
    /// Time the acquire completed.
    pub end: u64,
    /// Inner-environment lock wait charged to this acquire.
    pub wait: u64,
}

/// Aggregated contention on one lock id across all processors.
#[derive(Debug, Clone, Default)]
pub struct LockStat {
    pub lock: usize,
    pub acquires: u64,
    pub wait_total: u64,
    pub wait_max: u64,
}

/// Stored lock events are capped per processor (the histogram keeps
/// aggregating past the cap, so totals stay exact).
const MAX_LOCK_EVENTS_PER_PROC: usize = 1 << 16;

#[derive(Default)]
struct ProcTrace {
    spans: Vec<SpanRecord>,
    lock_events: Vec<LockEvent>,
    dropped_lock_events: u64,
    hist: HashMap<usize, LockStat>,
    phase_totals: [CtxStats; 4],
}

/// A tracing wrapper around any [`Env`]. See the module docs.
pub struct TraceEnv<E: Env> {
    inner: E,
    procs: Box<[Mutex<ProcTrace>]>,
}

/// Per-processor context of a [`TraceEnv`].
pub struct TraceCtx<C> {
    proc: usize,
    inner: C,
    /// The currently open phase span: (phase, step, start, stats-at-start).
    open: Option<(Phase, u32, u64, CtxStats)>,
}

impl<E: Env> TraceEnv<E> {
    pub fn new(inner: E) -> TraceEnv<E> {
        let procs = inner.num_procs();
        TraceEnv {
            inner,
            procs: (0..procs)
                .map(|_| Mutex::new(ProcTrace::default()))
                .collect(),
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// All recorded phase spans, in processor order then start order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for p in self.procs.iter() {
            out.extend(p.lock().spans.iter().cloned());
        }
        out
    }

    /// All stored lock events (capped per processor; see
    /// [`TraceEnv::lock_events_dropped`]).
    pub fn lock_events(&self) -> Vec<LockEvent> {
        let mut out = Vec::new();
        for p in self.procs.iter() {
            out.extend(p.lock().lock_events.iter().cloned());
        }
        out
    }

    /// Number of lock events dropped past the per-processor storage cap.
    pub fn lock_events_dropped(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.lock().dropped_lock_events)
            .sum()
    }

    /// Contention histogram over raw lock ids, aggregated across all
    /// processors and sorted hottest-first (by total wait, then acquires).
    pub fn lock_histogram(&self) -> Vec<LockStat> {
        let mut merged: HashMap<usize, LockStat> = HashMap::new();
        for p in self.procs.iter() {
            for (lock, s) in p.lock().hist.iter() {
                let e = merged.entry(*lock).or_insert_with(|| LockStat {
                    lock: *lock,
                    ..LockStat::default()
                });
                e.acquires += s.acquires;
                e.wait_total += s.wait_total;
                e.wait_max = e.wait_max.max(s.wait_max);
            }
        }
        let mut out: Vec<LockStat> = merged.into_values().collect();
        out.sort_by(|a, b| {
            (b.wait_total, b.acquires, a.lock).cmp(&(a.wait_total, a.acquires, b.lock))
        });
        out
    }

    /// Per-processor accumulated [`CtxStats`] deltas, indexed
    /// `[proc][phase.index()]`, over *all* steps (warm-up included; filter
    /// by step via [`TraceEnv::spans`] if needed).
    pub fn phase_totals(&self) -> Vec<[CtxStats; 4]> {
        self.procs.iter().map(|p| p.lock().phase_totals).collect()
    }

    /// One phase's statistics aggregated over processors: counters are
    /// summed, `time` is the maximum over processors (the phase's critical
    /// path, as the paper reports it).
    pub fn phase_aggregate(&self, phase: Phase) -> CtxStats {
        let mut agg = CtxStats::default();
        for totals in self.phase_totals() {
            let t = &totals[phase.index()];
            agg.time = agg.time.max(t.time);
            agg.lock_acquires += t.lock_acquires;
            agg.lock_wait += t.lock_wait;
            agg.barrier_wait += t.barrier_wait;
            agg.remote_misses += t.remote_misses;
            agg.local_misses += t.local_misses;
            agg.page_faults += t.page_faults;
        }
        agg
    }

    /// Per-step, per-phase time series aggregated from the recorded spans:
    /// one row per (step, phase) that actually ran, sorted by step then
    /// phase order. `time` is the critical path (max span duration over
    /// processors), counters are summed over processors, and `imbalance`
    /// is max/avg of per-processor work (duration minus barrier wait) —
    /// the run-level [`crate::app::RunStats::tree_imbalance`] decomposed
    /// step by step. Warm-up steps are included (filter on `step`).
    pub fn step_series(&self) -> Vec<StepPhaseRow> {
        let mut groups: HashMap<(u32, usize), Vec<SpanRecord>> = HashMap::new();
        for s in self.spans() {
            groups.entry((s.step, s.phase.index())).or_default().push(s);
        }
        let mut out: Vec<StepPhaseRow> = groups
            .into_iter()
            .map(|((step, phase_idx), spans)| {
                let mut stats = CtxStats::default();
                let mut time = 0u64;
                let mut work: Vec<u64> = Vec::with_capacity(spans.len());
                for s in &spans {
                    let dur = s.end - s.start;
                    time = time.max(dur);
                    work.push(dur.saturating_sub(s.stats.barrier_wait));
                    stats.lock_acquires += s.stats.lock_acquires;
                    stats.lock_wait += s.stats.lock_wait;
                    stats.barrier_wait += s.stats.barrier_wait;
                    stats.remote_misses += s.stats.remote_misses;
                    stats.local_misses += s.stats.local_misses;
                    stats.page_faults += s.stats.page_faults;
                }
                stats.time = time;
                let max = work.iter().max().copied().unwrap_or(0) as f64;
                let avg = work.iter().sum::<u64>() as f64 / work.len().max(1) as f64;
                let imbalance = if avg == 0.0 { 1.0 } else { max / avg };
                StepPhaseRow {
                    step,
                    phase: Phase::ALL[phase_idx],
                    time,
                    stats,
                    imbalance,
                }
            })
            .collect();
        out.sort_by_key(|r| (r.step, r.phase.index()));
        out
    }

    /// Plain-text per-phase summary of the step series with nearest-rank
    /// p50/p99 over steps — the repeat-aware view: steps of one run are
    /// the repeats, so a single slow step shows up in the p99 column
    /// instead of vanishing into a run-level mean.
    pub fn step_summary(&self, time_unit: &str) -> String {
        use crate::app::{percentile_f64, percentile_u64};
        let rows = self.step_series();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>5} {:>14} {:>14} {:>14} {:>14} {:>10} {:>10}\n",
            "phase",
            "steps",
            format!("t_p50({time_unit})"),
            format!("t_p99({time_unit})"),
            "lockw_p50",
            "lockw_p99",
            "imbal_p50",
            "imbal_p99"
        ));
        for phase in Phase::ALL {
            let of_phase: Vec<&StepPhaseRow> = rows.iter().filter(|r| r.phase == phase).collect();
            let times: Vec<u64> = of_phase.iter().map(|r| r.time).collect();
            let waits: Vec<u64> = of_phase.iter().map(|r| r.stats.lock_wait).collect();
            let imb: Vec<f64> = of_phase.iter().map(|r| r.imbalance).collect();
            out.push_str(&format!(
                "{:<10} {:>5} {:>14} {:>14} {:>14} {:>14} {:>10.3} {:>10.3}\n",
                phase.name(),
                of_phase.len(),
                percentile_u64(&times, 50.0),
                percentile_u64(&times, 99.0),
                percentile_u64(&waits, 50.0),
                percentile_u64(&waits, 99.0),
                percentile_f64(&imb, 50.0),
                percentile_f64(&imb, 99.0)
            ));
        }
        out
    }

    /// Plain-text per-phase summary (Table-2-style): one row per phase
    /// with time on the critical path, lock, barrier and protocol counters
    /// summed over processors, plus the hottest lock ids.
    pub fn summary(&self, time_unit: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>14} {:>9} {:>14} {:>14} {:>8} {:>8} {:>7}\n",
            "phase",
            format!("time({time_unit})"),
            "locks",
            "lock_wait",
            "barrier_wait",
            "remote",
            "local",
            "faults"
        ));
        for phase in Phase::ALL {
            let a = self.phase_aggregate(phase);
            out.push_str(&format!(
                "{:<10} {:>14} {:>9} {:>14} {:>14} {:>8} {:>8} {:>7}\n",
                phase.name(),
                a.time,
                a.lock_acquires,
                a.lock_wait,
                a.barrier_wait,
                a.remote_misses,
                a.local_misses,
                a.page_faults
            ));
        }
        let hist = self.lock_histogram();
        if hist.is_empty() {
            out.push_str("locks: none (lock-free)\n");
        } else {
            let total_wait: u64 = hist.iter().map(|s| s.wait_total).sum();
            out.push_str(&format!(
                "locks: {} distinct ids, total wait {total_wait} {time_unit}; hottest:",
                hist.len()
            ));
            for s in hist.iter().take(4) {
                out.push_str(&format!(
                    " [id {} x{} wait {}]",
                    s.lock, s.acquires, s.wait_total
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Chrome trace-event objects for this environment's buffers, one JSON
    /// object per string. `pid` and `process_name` label the process track
    /// (combine several environments into one file by concatenating their
    /// events under distinct pids); timestamps are divided by `ts_div` to
    /// map the environment's units onto the format's microseconds (1000.0
    /// for native nanoseconds; 1.0 renders one simulated cycle as 1 µs).
    pub fn chrome_trace_events(&self, pid: u32, process_name: &str, ts_div: f64) -> Vec<String> {
        let div = if ts_div > 0.0 { ts_div } else { 1.0 };
        let mut out = Vec::new();
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\",\"num_procs\":{}}}}}",
            escape(process_name),
            self.procs.len()
        ));
        for proc in 0..self.procs.len() {
            out.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{proc},\"args\":{{\"name\":\"P{proc}\"}}}}"
            ));
        }
        for s in self.spans() {
            let st = &s.stats;
            out.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{},\"args\":{{\"step\":{},\"lock_acquires\":{},\"lock_wait\":{},\"barrier_wait\":{},\"remote_misses\":{},\"local_misses\":{},\"page_faults\":{}}}}}",
                s.phase.name(),
                s.start as f64 / div,
                (s.end - s.start) as f64 / div,
                s.proc,
                s.step,
                st.lock_acquires,
                st.lock_wait,
                st.barrier_wait,
                st.remote_misses,
                st.local_misses,
                st.page_faults
            ));
        }
        // Contended acquires only: uncontended native locks are ~0 ns wide
        // and would swamp the view without adding information.
        for e in self.lock_events() {
            if e.wait == 0 {
                continue;
            }
            out.push(format!(
                "{{\"name\":\"lock {}\",\"cat\":\"lock\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{},\"args\":{{\"wait\":{}}}}}",
                e.lock,
                e.start as f64 / div,
                (e.end - e.start) as f64 / div,
                e.proc,
                e.wait
            ));
        }
        out
    }

    /// A complete Chrome trace-event JSON document for this environment
    /// alone. See [`TraceEnv::chrome_trace_events`].
    pub fn chrome_trace_json(&self, process_name: &str, ts_div: f64) -> String {
        format!(
            "[\n{}\n]\n",
            self.chrome_trace_events(0, process_name, ts_div)
                .join(",\n")
        )
    }
}

/// Minimal JSON string escaping for trace labels.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<E: Env> Env for TraceEnv<E> {
    type Ctx = TraceCtx<E::Ctx>;

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }

    fn make_ctx(&self, proc: usize) -> Self::Ctx {
        TraceCtx {
            proc,
            inner: self.inner.make_ctx(proc),
            open: None,
        }
    }

    fn alloc(&self, bytes: u64, align: u64, place: Placement) -> VAddr {
        self.inner.alloc(bytes, align, place)
    }

    fn tag_region(&self, base: VAddr, bytes: u64, region: Region) {
        self.inner.tag_region(base, bytes, region)
    }

    #[inline(always)]
    fn read(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn write(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.write(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn rmw(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.rmw(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn read_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read_atomic(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn write_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.write_atomic(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn atomic_commit(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.atomic_commit(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn read_unordered(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read_unordered(&mut ctx.inner, addr, bytes);
    }

    #[inline(always)]
    fn compute(&self, ctx: &mut Self::Ctx, cycles: u64) {
        self.inner.compute(&mut ctx.inner, cycles);
    }

    fn lock(&self, ctx: &mut Self::Ctx, lock: usize) {
        let start = self.inner.now(&ctx.inner);
        let before = self.inner.stats(&ctx.inner);
        self.inner.lock(&mut ctx.inner, lock);
        let end = self.inner.now(&ctx.inner);
        let wait = self
            .inner
            .stats(&ctx.inner)
            .lock_wait
            .saturating_sub(before.lock_wait);
        let mut t = self.procs[ctx.proc].lock();
        let e = t.hist.entry(lock).or_insert_with(|| LockStat {
            lock,
            ..LockStat::default()
        });
        e.acquires += 1;
        e.wait_total += wait;
        e.wait_max = e.wait_max.max(wait);
        if t.lock_events.len() < MAX_LOCK_EVENTS_PER_PROC {
            t.lock_events.push(LockEvent {
                proc: ctx.proc,
                lock,
                start,
                end,
                wait,
            });
        } else {
            t.dropped_lock_events += 1;
        }
    }

    fn unlock(&self, ctx: &mut Self::Ctx, lock: usize) {
        self.inner.unlock(&mut ctx.inner, lock);
    }

    fn barrier(&self, ctx: &mut Self::Ctx) {
        self.inner.barrier(&mut ctx.inner);
    }

    fn phase_begin(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        self.inner.phase_begin(&mut ctx.inner, phase, step);
        debug_assert!(
            ctx.open.is_none(),
            "phase_begin({phase}) while {:?} is open",
            ctx.open.as_ref().map(|o| o.0)
        );
        let start = self.inner.now(&ctx.inner);
        let stats = self.inner.stats(&ctx.inner);
        ctx.open = Some((phase, step, start, stats));
    }

    fn phase_end(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        let end = self.inner.now(&ctx.inner);
        let stats = self.inner.stats(&ctx.inner);
        match ctx.open.take() {
            Some((open_phase, open_step, start, stats0)) => {
                debug_assert!(
                    open_phase == phase && open_step == step,
                    "phase_end({phase}, step {step}) closes ({open_phase}, step {open_step})"
                );
                let delta = stats.delta_since(&stats0);
                let mut t = self.procs[ctx.proc].lock();
                t.phase_totals[phase.index()].accumulate(&delta);
                t.spans.push(SpanRecord {
                    proc: ctx.proc,
                    phase,
                    step,
                    start,
                    end,
                    stats: delta,
                });
            }
            None => debug_assert!(false, "phase_end({phase}) without phase_begin"),
        }
        self.inner.phase_end(&mut ctx.inner, phase, step);
    }

    fn worker_begin(&self, proc: usize) {
        self.inner.worker_begin(proc);
    }

    fn worker_end(&self, proc: usize) {
        self.inner.worker_end(proc);
    }

    fn now(&self, ctx: &Self::Ctx) -> u64 {
        self.inner.now(&ctx.inner)
    }

    fn stats(&self, ctx: &Self::Ctx) -> CtxStats {
        self.inner.stats(&ctx.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::app::{run_simulation, SimConfig};
    use crate::check::CheckedEnv;
    use crate::env::NativeEnv;
    use crate::harness::spmd;
    use crate::model::Model;

    fn tiny_cfg(alg: Algorithm) -> SimConfig {
        let mut cfg = SimConfig::new(alg);
        cfg.k = 4;
        cfg.warmup_steps = 1;
        cfg.measured_steps = 1;
        cfg
    }

    #[test]
    fn manual_spans_capture_time_and_lock_deltas() {
        let env = TraceEnv::new(NativeEnv::new(2));
        spmd(&env, |proc, ctx| {
            env.phase_begin(ctx, Phase::Tree, 0);
            env.lock(ctx, 70 + proc);
            env.unlock(ctx, 70 + proc);
            env.phase_end(ctx, Phase::Tree, 0);
            env.phase_begin(ctx, Phase::Force, 0);
            env.phase_end(ctx, Phase::Force, 0);
        });
        let spans = env.spans();
        assert_eq!(spans.len(), 4);
        let tree: Vec<_> = spans.iter().filter(|s| s.phase == Phase::Tree).collect();
        assert_eq!(tree.len(), 2);
        for s in &tree {
            assert_eq!(s.step, 0);
            assert_eq!(s.stats.lock_acquires, 1);
            assert!(s.end >= s.start);
        }
        let hist = env.lock_histogram();
        assert_eq!(hist.len(), 2);
        assert!(hist.iter().all(|h| h.acquires == 1));
        let totals = env.phase_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0][Phase::Tree.index()].lock_acquires, 1);
        assert_eq!(totals[0][Phase::Force.index()].lock_acquires, 0);
    }

    #[test]
    fn full_run_emits_four_phases_per_step_per_proc() {
        let env = TraceEnv::new(NativeEnv::new(4));
        let bodies = Model::Plummer.generate(96, 1998);
        let stats = run_simulation(&env, &tiny_cfg(Algorithm::Orig), &bodies);
        stats.assert_valid();
        let spans = env.spans();
        // 2 steps (1 warm-up + 1 measured) x 4 phases x 4 procs.
        assert_eq!(spans.len(), 2 * 4 * 4);
        for phase in Phase::ALL {
            assert_eq!(spans.iter().filter(|s| s.phase == phase).count(), 8);
        }
        // Steps 0 (warm-up) and 1 (measured) both appear.
        assert!(spans.iter().any(|s| s.step == 0));
        assert!(spans.iter().any(|s| s.step == 1));
    }

    #[test]
    fn histogram_separates_orig_from_space() {
        let bodies = Model::Plummer.generate(96, 1998);

        let orig = TraceEnv::new(NativeEnv::new(4));
        run_simulation(&orig, &tiny_cfg(Algorithm::Orig), &bodies).assert_valid();
        let orig_hist = orig.lock_histogram();
        assert!(
            !orig_hist.is_empty(),
            "ORIG locks every body insert; histogram cannot be empty"
        );
        let orig_acquires: u64 = orig_hist.iter().map(|s| s.acquires).sum();
        assert!(orig_acquires as usize >= bodies.len());

        let space = TraceEnv::new(NativeEnv::new(4));
        run_simulation(&space, &tiny_cfg(Algorithm::Space), &bodies).assert_valid();
        let space_tree_locks: u64 = space
            .spans()
            .iter()
            .filter(|s| s.phase == Phase::Tree)
            .map(|s| s.stats.lock_acquires)
            .sum();
        assert_eq!(space_tree_locks, 0, "SPACE's tree build is lock-free");
    }

    #[test]
    fn composes_with_checked_env_and_stays_race_free() {
        let env = TraceEnv::new(CheckedEnv::new(NativeEnv::new(4)));
        let bodies = Model::Plummer.generate(96, 1998);
        let stats = run_simulation(&env, &tiny_cfg(Algorithm::Local), &bodies);
        stats.assert_valid();
        env.inner().assert_race_free();
        assert_eq!(env.spans().len(), 2 * 4 * 4);
    }

    #[test]
    fn chrome_trace_has_tracks_and_spans() {
        let env = TraceEnv::new(NativeEnv::new(2));
        let bodies = Model::Plummer.generate(64, 7);
        run_simulation(&env, &tiny_cfg(Algorithm::Partree), &bodies).assert_valid();
        let json = env.chrome_trace_json("native partree", 1000.0);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"process_name\""));
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
        assert!(json.contains("\"num_procs\":2"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"tree\""));
        assert!(json.contains("\"name\":\"update\""));
    }

    #[test]
    fn summary_reports_phases_and_lock_freedom() {
        let env = TraceEnv::new(NativeEnv::new(2));
        let bodies = Model::Plummer.generate(64, 7);
        run_simulation(&env, &tiny_cfg(Algorithm::Space), &bodies).assert_valid();
        let s = env.summary("ns");
        for phase in Phase::ALL {
            assert!(s.contains(phase.name()), "summary missing {phase}: {s}");
        }
        // SPACE takes no tree locks; the update phase may lock on movers,
        // but with a pure rebuild it doesn't — accept either wording.
        assert!(s.contains("locks:"), "summary missing lock line: {s}");
    }

    #[test]
    fn step_series_decomposes_phase_totals() {
        let env = TraceEnv::new(NativeEnv::new(4));
        let bodies = Model::Plummer.generate(96, 1998);
        let mut cfg = tiny_cfg(Algorithm::Orig);
        cfg.measured_steps = 3;
        run_simulation(&env, &cfg, &bodies).assert_valid();
        let rows = env.step_series();
        // 4 steps (1 warm-up + 3 measured) x 4 phases, in order.
        assert_eq!(rows.len(), 4 * 4);
        let order: Vec<(u32, Phase)> = rows.iter().map(|r| (r.step, r.phase)).collect();
        let mut sorted = order.clone();
        sorted.sort_by_key(|(s, p)| (*s, p.index()));
        assert_eq!(order, sorted);
        for phase in Phase::ALL {
            let agg = env.phase_aggregate(phase);
            let of_phase: Vec<&StepPhaseRow> = rows.iter().filter(|r| r.phase == phase).collect();
            // Summing the series over steps reproduces the run aggregates.
            for (get, want) in [
                (
                    of_phase.iter().map(|r| r.stats.lock_acquires).sum::<u64>(),
                    agg.lock_acquires,
                ),
                (
                    of_phase.iter().map(|r| r.stats.lock_wait).sum::<u64>(),
                    agg.lock_wait,
                ),
                (
                    of_phase.iter().map(|r| r.stats.remote_misses).sum::<u64>(),
                    agg.remote_misses,
                ),
            ] {
                assert_eq!(get, want, "series does not tile aggregate for {phase}");
            }
            assert!(of_phase.iter().all(|r| r.imbalance >= 1.0 - 1e-9));
        }
        let s = env.step_summary("ns");
        assert!(s.contains("t_p50"), "missing percentile column: {s}");
        for phase in Phase::ALL {
            assert!(s.contains(phase.name()), "step summary missing {phase}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }
}
