//! Schedule-exploration model checking over the [`Env`] abstraction.
//!
//! [`crate::check::CheckedEnv`] certifies the *one* interleaving a run
//! happens to take. [`SchedEnv`] removes that qualifier: it serializes the
//! SPMD workers at every synchronization point — `lock`, `unlock`,
//! `barrier`, the `*_atomic` accounting calls and `atomic_commit` — and
//! hands control to exactly one runnable processor at a time under a
//! pluggable [`SchedStrategy`]. Replaying a program under many strategies
//! (seeded-random sampling, the deterministic round-robin schedule, or the
//! bounded-exhaustive explorer) turns "no race observed" into "no race, no
//! deadlock and no divergence in N explored schedules".
//!
//! ## Scheduling model
//!
//! Workers enter through the [`Env::worker_begin`] gate (called by
//! [`crate::harness::WorkerPool`]); nothing runs until all processors have
//! registered. From then on, each worker *announces* its next sync
//! operation and parks; the scheduler *grants* one pending operation at a
//! time, applying its effect (lock acquisition, barrier arrival, ...) and
//! letting the chosen worker run — plain reads, writes and compute are
//! uninstrumented straight-line code — until its next announcement. A lock
//! announcement is only grantable while the lock is free, so schedules
//! where a processor spins on a held lock simply do not exist; a barrier
//! announcement parks the arriver until the episode releases. Barrier
//! arrivals commute with every other operation (an arrival touches only
//! barrier state, and the final arrival can only be granted when no other
//! decision interleaves with its release), so they are granted eagerly and
//! are not decision points.
//!
//! Because only one worker executes at a time, the wrapped environment's
//! own locks and barriers must *not* be entered (the token holder would
//! block on a lock the scheduler knows is held and deadlock the whole
//! gate); `SchedEnv` therefore implements lock and barrier semantics itself
//! over the raw (unhashed) lock ids and never forwards those calls.
//!
//! ## Stuck states and analyses
//!
//! When no pending operation is grantable the schedule is stuck, and the
//! scheduler classifies it: waiters on locks whose holder cannot run again
//! are a **deadlock**; processors parked at a barrier generation that
//! departed processors will never arrive at are a **barrier divergence**.
//! Either aborts the schedule (every parked worker panics; the pool
//! propagates) and records a [`Finding`] with the trace tail as the
//! counterexample. Two further analyses run over the recorded sync trace:
//!
//! * **Lock-order graph** ([`SchedEnv::lock_cycles`], Eraser-style): every
//!   grant of lock `b` while holding `a` adds the edge `a → b`; a cycle in
//!   the union graph is a potential deadlock *even if no explored schedule
//!   deadlocked*.
//! * **Barrier generations** ([`SchedEnv::barrier_generations`]): per-proc
//!   episode counts; divergence shows up as unequal final generations.
//!
//! ## DPOR-lite: preemption bound + sleep sets
//!
//! The bounded-exhaustive plan is a replay-based DFS over the recorded
//! decision log: each branch replays a choice prefix deterministically and
//! explores one alternative. Two prunings keep it tractable: alternatives
//! costing more than a **preemption bound** (CHESS-style — switching away
//! from a still-runnable processor costs one preemption) are skipped, and
//! **sleep sets** (Godefroid) skip alternatives whose subtree was already
//! covered from the same state, waking a slept processor only when a
//! dependent operation executes. Dependence is approximated conservatively
//! from announced sync ops: a granted transition runs from one announce to
//! the next, and because release-side atomics yield *before* their real
//! operation while acquire-side instrumentation runs *after* it (the
//! [`crate::check`] protocol), a transition's trailing segment can read
//! atomics but never write them. Only RMW (whose segment is exactly the
//! real operation) and barrier arrival are closed; any atomic-writing
//! transition is therefore dependent with every open transition. This keeps
//! the pruning sound for programs that are data-race-free over their plain
//! accesses — which is exactly what composing with `CheckedEnv` certifies
//! on every explored schedule.
//!
//! ## Composition
//!
//! The verification stack is [`VerifyEnv`] =
//! `CheckedEnv<SchedEnv<NativeEnv>>`: the detector outermost (so its own
//! mutex is invisible to the scheduler), the scheduler in the middle, the
//! native environment as the terminal allocator/clock. [`explore`] runs one
//! program under an [`ExplorePlan`]; [`verify_matrix`] runs the full
//! (algorithm × procs × strategy) certification the `repro verify`
//! subcommand and `tests/schedule_matrix.rs` consume.

use crate::algorithms::Algorithm;
use crate::app::{run_simulation, SimConfig};
use crate::check::{CheckedEnv, RaceReport};
use crate::env::{CtxStats, Env, NativeEnv, Phase, Placement, Region, VAddr};
use crate::model::Model;
use crate::rng::SmallRng;
use crate::sync::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Condvar;
use std::sync::MutexGuard;

/// Test-only fault injection, kept here (rather than next to the algorithm
/// code it perturbs) because this module owns the only whitelisted home for
/// scheduler-adjacent global state.
pub mod mutation {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static EARLY_FORWARD_FLUSH: AtomicBool = AtomicBool::new(false);
    static INJECTIONS: AtomicU64 = AtomicU64::new(0);

    /// Re-introduce the UPDATE publication-order bug fixed in PR 1: store
    /// `body_leaf` forwarding pointers *while* a private subtree is still
    /// being built, instead of deferring them until after publication.
    /// Process-global; only ever set by mutation tests and `repro verify
    /// --self-test`, which run in their own process.
    pub fn set_early_forward_flush(on: bool) {
        EARLY_FORWARD_FLUSH.store(on, Ordering::SeqCst);
        INJECTIONS.store(0, Ordering::SeqCst);
    }

    /// Whether the publication-order mutation is active.
    pub fn early_forward_flush() -> bool {
        EARLY_FORWARD_FLUSH.load(Ordering::Relaxed)
    }

    /// Record one early forwarding store. Called by the injection site so
    /// tests can assert the mutated path actually executed.
    pub fn note_injection() {
        INJECTIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Early forwarding stores performed since the flag was last set.
    pub fn injections() -> u64 {
        INJECTIONS.load(Ordering::Relaxed)
    }
}

/// One announced synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// Job registration (worker_begin rendezvous).
    Start,
    Lock(usize),
    Unlock(usize),
    Barrier,
    /// Post-load acquire instrumentation (the real load already ran).
    AtomicRead(VAddr),
    /// Pre-store release instrumentation (the real store runs next).
    AtomicWrite(VAddr),
    /// Pre-RMW instrumentation (the real RMW runs next, then `Commit`).
    Rmw(VAddr),
    /// Post-RMW acquire instrumentation.
    Commit(VAddr),
    /// Continue after a barrier release.
    Resume,
    /// Job completion (worker_end).
    Exit,
}

impl std::fmt::Display for SyncOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncOp::Start => write!(f, "start"),
            SyncOp::Lock(l) => write!(f, "lock {l}"),
            SyncOp::Unlock(l) => write!(f, "unlock {l}"),
            SyncOp::Barrier => write!(f, "barrier"),
            SyncOp::AtomicRead(a) => write!(f, "load {a:#x}"),
            SyncOp::AtomicWrite(a) => write!(f, "store {a:#x}"),
            SyncOp::Rmw(a) => write!(f, "rmw {a:#x}"),
            SyncOp::Commit(a) => write!(f, "commit {a:#x}"),
            SyncOp::Resume => write!(f, "resume"),
            SyncOp::Exit => write!(f, "exit"),
        }
    }
}

/// Conservative dependence between a granted transition and a parked
/// processor's pending transition. See the module docs for the model: a
/// transition is closed (no trailing arbitrary segment) only for RMW and
/// barrier arrival; trailing segments may read atomics but never write
/// them, so an atomic-writing transition conflicts with every open one.
fn dependent(a: SyncOp, b: SyncOp) -> bool {
    use SyncOp::*;
    let writes_atomics = |o: SyncOp| matches!(o, Rmw(_) | AtomicWrite(_));
    let closed = |o: SyncOp| matches!(o, Rmw(_) | Barrier);
    if writes_atomics(a) && !closed(b) {
        return true;
    }
    if writes_atomics(b) && !closed(a) {
        return true;
    }
    match (a, b) {
        (Rmw(x), Rmw(y)) => x == y,
        (Lock(x) | Unlock(x), Lock(y) | Unlock(y)) => x == y,
        (Barrier, Barrier) => true,
        _ => false,
    }
}

/// Where a worker is in the scheduling state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Not part of an active session.
    Idle,
    /// Parked at an announcement, awaiting a grant.
    Pending(SyncOp),
    /// Owns the token: executing between sync points.
    Running,
    /// Arrived at the barrier, waiting for the episode to release.
    BarrierBlocked,
    /// worker_end reached.
    Done,
}

/// The scheduling strategy for one run.
#[derive(Debug, Clone)]
pub enum SchedStrategy {
    /// Rotate to the next runnable processor at every decision point.
    RoundRobin,
    /// Uniform-random choice under a fixed seed.
    Seeded(u64),
    /// Deterministic replay of a recorded choice prefix (the exhaustive
    /// explorer's branch descriptor); past the prefix, prefer continuing
    /// the last-run processor (zero added preemptions).
    Replay(ReplayScript),
}

/// A branch descriptor for [`SchedStrategy::Replay`].
#[derive(Debug, Clone, Default)]
pub struct ReplayScript {
    /// Decision choices to replay, in order.
    pub choices: Vec<usize>,
    /// Processors to add to the sleep set just before decision `i` —
    /// the alternatives already explored from that state.
    pub sleep: HashMap<usize, Vec<usize>>,
}

enum StrategyState {
    RoundRobin,
    Seeded(SmallRng),
    Replay { script: ReplayScript, pos: usize },
}

/// Tuning knobs for one scheduled run.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Abort the schedule after this many granted sync operations: the
    /// livelock net (a plain-read spin never yields, but every atomic-load
    /// spin does, and so does every productive loop).
    pub op_budget: u64,
    /// How many trailing trace events to keep for counterexample reports.
    pub trace_cap: usize,
    /// Maintain sleep sets and prune redundant branches (replay mode).
    pub sleep_sets: bool,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            op_budget: 5_000_000,
            trace_cap: 96,
            sleep_sets: false,
        }
    }
}

/// One recorded decision point (≥ 2 grantable processors).
#[derive(Debug, Clone)]
pub struct Decision {
    /// Grantable processors, ascending.
    pub enabled: Vec<usize>,
    /// The processor granted.
    pub chosen: usize,
    /// Sleep set at the decision (after replay injection), ascending.
    pub sleep: Vec<usize>,
    /// The most recently running processor, if any.
    pub prev: Option<usize>,
    /// Preemptions accumulated before this decision.
    pub preemptions: u32,
}

#[derive(Debug, Clone, Copy)]
struct TraceEvent {
    seq: u64,
    proc: usize,
    op: SyncOp,
}

/// A defect found while scheduling.
#[derive(Debug, Clone)]
pub enum Finding {
    /// Processors waiting on locks whose holders can never run again.
    Deadlock {
        /// (waiting proc, lock id) pairs.
        waiting: Vec<(usize, usize)>,
        /// (lock id, holder proc, holder status) for each waited-on lock.
        holders: Vec<(usize, usize, String)>,
    },
    /// Processors parked at a barrier generation that departed processors
    /// never arrive at.
    BarrierDivergence {
        /// The generation the waiters are parked before.
        generation: u64,
        /// Processors parked at the barrier.
        waiting: Vec<usize>,
        /// (proc, generations passed) for processors that exited early.
        departed: Vec<(usize, u64)>,
    },
    /// The op budget ran out: livelock or a runaway schedule.
    OpBudgetExhausted { ops: u64 },
    /// A lock released by a non-holder (or never acquired).
    LockProtocol {
        proc: usize,
        lock: usize,
        detail: String,
    },
}

impl Finding {
    /// Short kind tag used in reports and exit summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Finding::Deadlock { .. } => "deadlock",
            Finding::BarrierDivergence { .. } => "barrier-divergence",
            Finding::OpBudgetExhausted { .. } => "op-budget",
            Finding::LockProtocol { .. } => "lock-protocol",
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::Deadlock { waiting, holders } => {
                write!(f, "deadlock:")?;
                for (p, l) in waiting {
                    write!(f, " P{p} waits lock {l};")?;
                }
                for (l, h, st) in holders {
                    write!(f, " lock {l} held by P{h} ({st});")?;
                }
                Ok(())
            }
            Finding::BarrierDivergence {
                generation,
                waiting,
                departed,
            } => {
                write!(
                    f,
                    "barrier divergence: {waiting:?} wait for generation {generation},"
                )?;
                for (p, g) in departed {
                    write!(f, " P{p} exited after {g} generation(s);")?;
                }
                Ok(())
            }
            Finding::OpBudgetExhausted { ops } => {
                write!(f, "op budget exhausted after {ops} sync operations")
            }
            Finding::LockProtocol { proc, lock, detail } => {
                write!(
                    f,
                    "lock protocol violation: P{proc} on lock {lock}: {detail}"
                )
            }
        }
    }
}

struct SchedState {
    procs: usize,
    status: Vec<Status>,
    registered: usize,
    session: bool,
    current: Option<usize>,
    last_run: Option<usize>,
    /// lock id -> holder.
    locks: HashMap<usize, usize>,
    /// Per-proc held locks in acquisition order.
    held: Vec<Vec<usize>>,
    arrived: usize,
    generation: u64,
    proc_gen: Vec<u64>,
    strategy: StrategyState,
    sleep: HashSet<usize>,
    sleep_sets: bool,
    decisions: Vec<Decision>,
    preemptions: u32,
    replay_diverged: bool,
    trace: VecDeque<TraceEvent>,
    trace_cap: usize,
    ops: u64,
    op_budget: u64,
    /// (held, acquired) -> grant count.
    lock_edges: HashMap<(usize, usize), u64>,
    finding: Option<Finding>,
    redundant: bool,
    aborted: bool,
}

impl SchedState {
    fn push_trace(&mut self, proc: usize, op: SyncOp) {
        self.ops += 1;
        let seq = self.ops;
        if self.trace.len() == self.trace_cap {
            self.trace.pop_front();
        }
        self.trace.push_back(TraceEvent { seq, proc, op });
    }

    fn abort(&mut self, finding: Option<Finding>) {
        if let Some(f) = finding {
            if self.finding.is_none() {
                self.finding = Some(f);
            }
        }
        self.aborted = true;
        self.current = None;
    }

    fn status_desc(&self, p: usize) -> String {
        match self.status[p] {
            Status::Done => "exited".to_string(),
            Status::BarrierBlocked => {
                format!("blocked at barrier generation {}", self.generation + 1)
            }
            Status::Pending(op) => format!("waiting at `{op}`"),
            Status::Running => "running".to_string(),
            Status::Idle => "idle".to_string(),
        }
    }

    fn classify_stuck(&self) -> Finding {
        let mut waiting = Vec::new();
        let mut barrier_waiters = Vec::new();
        let mut departed = Vec::new();
        for p in 0..self.procs {
            match self.status[p] {
                Status::Pending(SyncOp::Lock(l)) => waiting.push((p, l)),
                Status::BarrierBlocked => barrier_waiters.push(p),
                Status::Done => departed.push((p, self.proc_gen[p])),
                _ => {}
            }
        }
        if !waiting.is_empty() {
            let mut holders = Vec::new();
            for &(_, l) in &waiting {
                if let Some(&h) = self.locks.get(&l) {
                    if !holders
                        .iter()
                        .any(|&(hl, _, _): &(usize, usize, String)| hl == l)
                    {
                        holders.push((l, h, self.status_desc(h)));
                    }
                }
            }
            Finding::Deadlock { waiting, holders }
        } else {
            Finding::BarrierDivergence {
                generation: self.generation + 1,
                waiting: barrier_waiters,
                departed,
            }
        }
    }
}

/// Per-processor context of a [`SchedEnv`].
pub struct SchedCtx<C> {
    proc: usize,
    lock_acquires: u64,
    inner: C,
}

/// The controlled scheduler. See the module docs.
pub struct SchedEnv<E: Env> {
    inner: E,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl<E: Env> SchedEnv<E> {
    /// Wrap `inner` with the default [`SchedConfig`].
    pub fn new(inner: E, strategy: SchedStrategy) -> SchedEnv<E> {
        SchedEnv::with_config(inner, strategy, &SchedConfig::default())
    }

    /// Wrap `inner` with explicit tuning knobs.
    pub fn with_config(inner: E, strategy: SchedStrategy, cfg: &SchedConfig) -> SchedEnv<E> {
        let procs = inner.num_procs();
        let strategy = match strategy {
            SchedStrategy::RoundRobin => StrategyState::RoundRobin,
            SchedStrategy::Seeded(seed) => StrategyState::Seeded(SmallRng::seed_from_u64(seed)),
            SchedStrategy::Replay(script) => StrategyState::Replay { script, pos: 0 },
        };
        SchedEnv {
            inner,
            state: Mutex::new(SchedState {
                procs,
                status: vec![Status::Idle; procs],
                registered: 0,
                session: false,
                current: None,
                last_run: None,
                locks: HashMap::new(),
                held: vec![Vec::new(); procs],
                arrived: 0,
                generation: 0,
                proc_gen: vec![0; procs],
                strategy,
                sleep: HashSet::new(),
                sleep_sets: cfg.sleep_sets,
                decisions: Vec::new(),
                preemptions: 0,
                replay_diverged: false,
                trace: VecDeque::new(),
                trace_cap: cfg.trace_cap.max(16),
                ops: 0,
                op_budget: cfg.op_budget,
                lock_edges: HashMap::new(),
                finding: None,
                redundant: false,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The defect this run hit, if any.
    pub fn finding(&self) -> Option<Finding> {
        self.state.lock().finding.clone()
    }

    /// Whether this branch was pruned as sleep-set-redundant.
    pub fn redundant(&self) -> bool {
        self.state.lock().redundant
    }

    /// Whether the replay script diverged from the program (a determinism
    /// bug in the program under test).
    pub fn replay_diverged(&self) -> bool {
        self.state.lock().replay_diverged
    }

    /// The recorded decision log.
    pub fn decisions(&self) -> Vec<Decision> {
        self.state.lock().decisions.clone()
    }

    /// Preemptions taken by this schedule.
    pub fn preemptions(&self) -> u32 {
        self.state.lock().preemptions
    }

    /// Granted sync operations so far.
    pub fn total_ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Barrier generations passed, per processor.
    pub fn barrier_generations(&self) -> Vec<u64> {
        self.state.lock().proc_gen.clone()
    }

    /// The lock-order graph: (held, acquired) edge -> occurrence count.
    pub fn lock_edges(&self) -> HashMap<(usize, usize), u64> {
        self.state.lock().lock_edges.clone()
    }

    /// Cycles in the lock-order graph (potential deadlocks, Eraser-style).
    pub fn lock_cycles(&self) -> Vec<Vec<usize>> {
        lock_order_cycles(&self.state.lock().lock_edges)
    }

    /// The formatted tail of the sync trace (counterexample context).
    pub fn trace_tail(&self) -> Vec<String> {
        let g = self.state.lock();
        g.trace
            .iter()
            .map(|e| format!("#{} P{} {}", e.seq, e.proc, e.op))
            .collect()
    }

    fn wait_cv<'a>(&self, g: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Park until granted the token (or the schedule aborts).
    fn park(&self, mut g: MutexGuard<'_, SchedState>, proc: usize) {
        loop {
            if g.current == Some(proc) {
                return;
            }
            if g.aborted {
                let why = match (&g.finding, g.redundant) {
                    (Some(f), _) => format!("schedule aborted ({})", f.kind()),
                    (None, true) => "schedule aborted (redundant branch)".to_string(),
                    (None, false) => "schedule aborted".to_string(),
                };
                drop(g);
                panic!("{why}");
            }
            g = self.wait_cv(g);
        }
    }

    /// Announce `op`, hand the token back, and park until re-granted.
    /// Outside an active session (setup code on the submitting thread) this
    /// is a no-op: the caller is the only runner.
    fn yield_at(&self, proc: usize, op: SyncOp) {
        let mut g = self.state.lock();
        if !g.session {
            if g.aborted {
                drop(g);
                panic!("schedule aborted (stale environment)");
            }
            return;
        }
        debug_assert_eq!(g.current, Some(proc), "yield from a non-token holder");
        g.current = None;
        g.last_run = Some(proc);
        g.status[proc] = Status::Pending(op);
        self.schedule(&mut g);
        self.park(g, proc);
    }

    /// Grant `p`'s pending operation: record it, update sleep sets, apply
    /// its effect. Sets `current` when the operation lets `p` keep running.
    fn grant(&self, g: &mut SchedState, p: usize) {
        let Status::Pending(op) = g.status[p] else {
            unreachable!("grant of a non-pending processor");
        };
        g.push_trace(p, op);
        if g.ops > g.op_budget {
            let f = Finding::OpBudgetExhausted { ops: g.ops };
            g.abort(Some(f));
            return;
        }
        g.sleep.remove(&p);
        if g.sleep_sets && !g.sleep.is_empty() {
            let mut keep = HashSet::new();
            for &r in g.sleep.iter() {
                let stays = match g.status[r] {
                    Status::Pending(o) => !dependent(op, o),
                    Status::BarrierBlocked => !dependent(op, SyncOp::Barrier),
                    _ => false,
                };
                if stays {
                    keep.insert(r);
                }
            }
            g.sleep = keep;
        }
        match op {
            SyncOp::Lock(l) => {
                debug_assert!(!g.locks.contains_key(&l), "granted a held lock");
                for i in 0..g.held[p].len() {
                    let h = g.held[p][i];
                    *g.lock_edges.entry((h, l)).or_insert(0) += 1;
                }
                g.locks.insert(l, p);
                g.held[p].push(l);
                g.status[p] = Status::Running;
                g.current = Some(p);
            }
            SyncOp::Unlock(l) => {
                match g.locks.get(&l) {
                    Some(&h) if h == p => {
                        g.locks.remove(&l);
                        g.held[p].retain(|&x| x != l);
                    }
                    Some(&h) => {
                        let f = Finding::LockProtocol {
                            proc: p,
                            lock: l,
                            detail: format!("released while held by P{h}"),
                        };
                        g.abort(Some(f));
                        return;
                    }
                    None => {
                        let f = Finding::LockProtocol {
                            proc: p,
                            lock: l,
                            detail: "released while free".to_string(),
                        };
                        g.abort(Some(f));
                        return;
                    }
                }
                g.status[p] = Status::Running;
                g.current = Some(p);
            }
            SyncOp::Barrier => {
                g.arrived += 1;
                g.proc_gen[p] += 1;
                if g.arrived == g.procs {
                    g.arrived = 0;
                    g.generation += 1;
                    for q in 0..g.procs {
                        if g.status[q] == Status::BarrierBlocked {
                            g.status[q] = Status::Pending(SyncOp::Resume);
                        }
                    }
                    g.status[p] = Status::Pending(SyncOp::Resume);
                } else {
                    g.status[p] = Status::BarrierBlocked;
                }
            }
            SyncOp::Exit => unreachable!("exit is applied at announcement"),
            SyncOp::Start
            | SyncOp::Resume
            | SyncOp::AtomicRead(_)
            | SyncOp::AtomicWrite(_)
            | SyncOp::Rmw(_)
            | SyncOp::Commit(_) => {
                g.status[p] = Status::Running;
                g.current = Some(p);
            }
        }
    }

    /// Pick one grantable processor per the strategy. Returns `None` when
    /// every candidate is asleep (the branch is redundant).
    fn decide(&self, g: &mut SchedState, enabled: &[usize]) -> Option<usize> {
        let idx = g.decisions.len();
        if let StrategyState::Replay { script, .. } = &g.strategy {
            if let Some(extra) = script.sleep.get(&idx) {
                let extra = extra.clone();
                g.sleep.extend(extra);
            }
        }
        let candidates: Vec<usize> = if g.sleep_sets {
            enabled
                .iter()
                .copied()
                .filter(|p| !g.sleep.contains(p))
                .collect()
        } else {
            enabled.to_vec()
        };
        if candidates.is_empty() {
            return None;
        }
        let chosen = match &mut g.strategy {
            StrategyState::RoundRobin => {
                let from = g.last_run.map(|l| l + 1).unwrap_or(0);
                (0..g.procs)
                    .map(|i| (from + i) % g.procs)
                    .find(|p| candidates.contains(p))
                    .expect("candidates nonempty")
            }
            StrategyState::Seeded(rng) => candidates[rng.gen_range_usize(0, candidates.len())],
            StrategyState::Replay { script, pos } => {
                if *pos < script.choices.len() {
                    let c = script.choices[*pos];
                    *pos += 1;
                    if candidates.contains(&c) {
                        c
                    } else {
                        g.replay_diverged = true;
                        candidates[0]
                    }
                } else {
                    match g.last_run {
                        Some(l) if candidates.contains(&l) => l,
                        _ => candidates[0],
                    }
                }
            }
        };
        let preempt = match g.last_run {
            Some(l) => l != chosen && enabled.contains(&l),
            None => false,
        };
        let mut sleep: Vec<usize> = g.sleep.iter().copied().collect();
        sleep.sort_unstable();
        g.decisions.push(Decision {
            enabled: enabled.to_vec(),
            chosen,
            sleep,
            prev: g.last_run,
            preemptions: g.preemptions,
        });
        if preempt {
            g.preemptions += 1;
        }
        Some(chosen)
    }

    /// Grant operations until one processor holds the token (or the session
    /// ends / aborts). Callers must have cleared `current`.
    fn schedule(&self, g: &mut SchedState) {
        if !g.session {
            return;
        }
        loop {
            if g.aborted {
                self.cv.notify_all();
                return;
            }
            let mut enabled: Vec<usize> = Vec::new();
            let mut all_done = true;
            for p in 0..g.procs {
                match g.status[p] {
                    Status::Done => {}
                    Status::Pending(op) => {
                        all_done = false;
                        let ok = match op {
                            SyncOp::Lock(l) => !g.locks.contains_key(&l),
                            _ => true,
                        };
                        if ok {
                            enabled.push(p);
                        }
                    }
                    Status::BarrierBlocked => all_done = false,
                    Status::Running | Status::Idle => all_done = false,
                }
            }
            if enabled.is_empty() {
                if all_done {
                    g.session = false;
                    g.registered = 0;
                    for st in g.status.iter_mut() {
                        *st = Status::Idle;
                    }
                    self.cv.notify_all();
                    return;
                }
                let f = g.classify_stuck();
                g.abort(Some(f));
                self.cv.notify_all();
                return;
            }
            // Barrier arrivals commute with everything: grant them eagerly,
            // outside the decision log (see the module docs).
            if let Some(&p) = enabled
                .iter()
                .find(|&&p| g.status[p] == Status::Pending(SyncOp::Barrier))
            {
                self.grant(g, p);
                continue;
            }
            let chosen = if enabled.len() == 1 {
                enabled[0]
            } else {
                match self.decide(g, &enabled) {
                    Some(c) => c,
                    None => {
                        g.redundant = true;
                        g.abort(None);
                        self.cv.notify_all();
                        return;
                    }
                }
            };
            self.grant(g, chosen);
            if g.current.is_some() {
                self.cv.notify_all();
                return;
            }
        }
    }
}

impl<E: Env> Env for SchedEnv<E> {
    type Ctx = SchedCtx<E::Ctx>;

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }

    fn make_ctx(&self, proc: usize) -> Self::Ctx {
        SchedCtx {
            proc,
            lock_acquires: 0,
            inner: self.inner.make_ctx(proc),
        }
    }

    fn alloc(&self, bytes: u64, align: u64, place: Placement) -> VAddr {
        self.inner.alloc(bytes, align, place)
    }

    fn tag_region(&self, base: VAddr, bytes: u64, region: Region) {
        self.inner.tag_region(base, bytes, region)
    }

    fn read(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read(&mut ctx.inner, addr, bytes);
    }

    fn write(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.write(&mut ctx.inner, addr, bytes);
    }

    fn rmw(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.yield_at(ctx.proc, SyncOp::Rmw(addr));
        self.inner.rmw(&mut ctx.inner, addr, bytes);
    }

    fn read_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.yield_at(ctx.proc, SyncOp::AtomicRead(addr));
        self.inner.read_atomic(&mut ctx.inner, addr, bytes);
    }

    fn write_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.yield_at(ctx.proc, SyncOp::AtomicWrite(addr));
        self.inner.write_atomic(&mut ctx.inner, addr, bytes);
    }

    fn atomic_commit(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.yield_at(ctx.proc, SyncOp::Commit(addr));
        self.inner.atomic_commit(&mut ctx.inner, addr, bytes);
    }

    fn read_unordered(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        // Deliberately unordered: not a sync point, no yield.
        self.inner.read_unordered(&mut ctx.inner, addr, bytes);
    }

    fn compute(&self, ctx: &mut Self::Ctx, cycles: u64) {
        self.inner.compute(&mut ctx.inner, cycles);
    }

    fn lock(&self, ctx: &mut Self::Ctx, lock: usize) {
        // Scheduler-level lock semantics over the raw id: the grant is the
        // acquisition. The inner environment's hashed lock table is never
        // entered (see the module docs).
        ctx.lock_acquires += 1;
        self.yield_at(ctx.proc, SyncOp::Lock(lock));
    }

    fn unlock(&self, ctx: &mut Self::Ctx, lock: usize) {
        self.yield_at(ctx.proc, SyncOp::Unlock(lock));
    }

    fn barrier(&self, ctx: &mut Self::Ctx) {
        // Returning from the yield means this proc was granted its
        // post-release Resume: the episode completed.
        self.yield_at(ctx.proc, SyncOp::Barrier);
    }

    fn phase_begin(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        self.inner.phase_begin(&mut ctx.inner, phase, step);
    }

    fn phase_end(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        self.inner.phase_end(&mut ctx.inner, phase, step);
    }

    fn worker_begin(&self, proc: usize) {
        let mut g = self.state.lock();
        if g.aborted {
            drop(g);
            panic!("schedule aborted (stale environment)");
        }
        debug_assert_eq!(g.status[proc], Status::Idle, "double worker_begin");
        g.status[proc] = Status::Pending(SyncOp::Start);
        g.registered += 1;
        if g.registered == g.procs {
            g.session = true;
            g.last_run = None;
            self.schedule(&mut g);
        }
        self.park(g, proc);
    }

    fn worker_end(&self, proc: usize) {
        let mut g = self.state.lock();
        if g.aborted {
            // Unwinding out of an aborted schedule: just leave.
            g.status[proc] = Status::Done;
            return;
        }
        if !g.session {
            return;
        }
        g.push_trace(proc, SyncOp::Exit);
        g.status[proc] = Status::Done;
        g.current = None;
        g.last_run = Some(proc);
        self.schedule(&mut g);
    }

    fn now(&self, ctx: &Self::Ctx) -> u64 {
        self.inner.now(&ctx.inner)
    }

    fn stats(&self, ctx: &Self::Ctx) -> CtxStats {
        let mut s = self.inner.stats(&ctx.inner);
        s.lock_acquires += ctx.lock_acquires;
        s
    }
}

/// Find cycles in a lock-order graph. Returns up to 8 distinct simple
/// cycles as lock-id sequences (first element is the smallest id in the
/// cycle, for deterministic reporting).
pub fn lock_order_cycles(edges: &HashMap<(usize, usize), u64>) -> Vec<Vec<usize>> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    for nbrs in adj.values_mut() {
        nbrs.sort_unstable();
        nbrs.dedup();
    }
    let mut nodes: Vec<usize> = adj.keys().copied().collect();
    nodes.sort_unstable();

    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut done: HashSet<usize> = HashSet::new();
    for &start in &nodes {
        if done.contains(&start) || cycles.len() >= 8 {
            continue;
        }
        // Iterative DFS from `start`, tracking the path to extract cycles.
        let mut path: Vec<usize> = Vec::new();
        let mut on_path: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(node, next)) = stack.last() {
            if next == 0 {
                path.push(node);
                on_path.insert(node);
            }
            let nbrs = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if next < nbrs.len() {
                let n = nbrs[next];
                stack.last_mut().unwrap().1 += 1;
                if on_path.contains(&n) {
                    // Back edge: the path suffix from n is a cycle.
                    let at = path.iter().position(|&x| x == n).unwrap();
                    let mut cyc = path[at..].to_vec();
                    // Rotate so the smallest id leads.
                    let min_at = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &v)| v)
                        .map(|(i, _)| i)
                        .unwrap();
                    cyc.rotate_left(min_at);
                    if !cycles.contains(&cyc) && cycles.len() < 8 {
                        cycles.push(cyc);
                    }
                } else if !done.contains(&n) {
                    stack.push((n, 0));
                }
            } else {
                stack.pop();
                path.pop();
                on_path.remove(&node);
                done.insert(node);
            }
        }
    }
    cycles
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// The standard verification stack: race detector over controlled
/// scheduler over the native environment.
pub type VerifyEnv = CheckedEnv<SchedEnv<NativeEnv>>;

/// The outcome of one scheduled run.
pub struct ScheduleOutcome {
    /// Human-readable schedule id ("seed 17", "round-robin", ...).
    pub id: String,
    pub finding: Option<Finding>,
    pub races: Vec<RaceReport>,
    /// A worker panic that was not a scheduler abort.
    pub panic: Option<String>,
    /// A validation error the program reported.
    pub error: Option<String>,
    pub redundant: bool,
    pub replay_diverged: bool,
    pub decisions: Vec<Decision>,
    pub preemptions: u32,
    pub ops: u64,
    pub lock_edges: HashMap<(usize, usize), u64>,
    pub trace_tail: Vec<String>,
}

impl ScheduleOutcome {
    /// Whether this schedule produced any defect report.
    pub fn clean(&self) -> bool {
        self.finding.is_none()
            && self.races.is_empty()
            && self.panic.is_none()
            && self.error.is_none()
    }
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Run `program` once under one schedule. The program receives the
/// [`VerifyEnv`] and returns a validation error, if any.
pub fn run_schedule<F>(
    procs: usize,
    strategy: SchedStrategy,
    cfg: &SchedConfig,
    id: &str,
    program: &F,
) -> ScheduleOutcome
where
    F: Fn(&VerifyEnv) -> Option<String>,
{
    let env = CheckedEnv::new(SchedEnv::with_config(NativeEnv::new(procs), strategy, cfg));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| program(&env)));
    let races = env.races();
    let sched = env.inner();
    let finding = sched.finding();
    let redundant = sched.redundant();
    let (panic, error) = match result {
        Ok(e) => (None, e),
        Err(payload) => {
            let msg = payload_to_string(payload);
            // Scheduler aborts panic by design; they are reported via the
            // finding, not as a program failure.
            if finding.is_some() || redundant || msg.contains("schedule aborted") {
                (None, None)
            } else {
                (Some(msg), None)
            }
        }
    };
    ScheduleOutcome {
        id: id.to_string(),
        finding,
        races,
        panic,
        error,
        redundant,
        replay_diverged: sched.replay_diverged(),
        decisions: sched.decisions(),
        preemptions: sched.preemptions(),
        ops: sched.total_ops(),
        lock_edges: sched.lock_edges(),
        trace_tail: sched.trace_tail(),
    }
}

/// One defect, packaged with its schedule and trace for reporting.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Which schedule hit it.
    pub schedule: String,
    /// "deadlock" | "barrier-divergence" | "data-race" | "panic" |
    /// "validation" | "op-budget" | "lock-protocol".
    pub kind: String,
    pub detail: String,
    /// Trailing sync-trace events leading up to the defect.
    pub trace: Vec<String>,
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] {}: {}", self.schedule, self.kind, self.detail)?;
        if !self.trace.is_empty() {
            writeln!(f, "  schedule trace (tail):")?;
            for t in &self.trace {
                writeln!(f, "    {t}")?;
            }
        }
        Ok(())
    }
}

fn counterexamples_of(o: &ScheduleOutcome) -> Vec<CounterExample> {
    let mut out = Vec::new();
    if let Some(f) = &o.finding {
        out.push(CounterExample {
            schedule: o.id.clone(),
            kind: f.kind().to_string(),
            detail: f.to_string(),
            trace: o.trace_tail.clone(),
        });
    }
    for r in o.races.iter().take(4) {
        out.push(CounterExample {
            schedule: o.id.clone(),
            kind: "data-race".to_string(),
            detail: r.to_string(),
            trace: o.trace_tail.clone(),
        });
    }
    if let Some(p) = &o.panic {
        out.push(CounterExample {
            schedule: o.id.clone(),
            kind: "panic".to_string(),
            detail: p.clone(),
            trace: o.trace_tail.clone(),
        });
    }
    if let Some(e) = &o.error {
        out.push(CounterExample {
            schedule: o.id.clone(),
            kind: "validation".to_string(),
            detail: e.clone(),
            trace: o.trace_tail.clone(),
        });
    }
    out
}

/// How to cover the schedule space.
#[derive(Debug, Clone)]
pub enum ExplorePlan {
    /// The single deterministic round-robin schedule.
    RoundRobin,
    /// `count` seeded-random schedules starting at seed `base`.
    Seeded { base: u64, count: usize },
    /// Replay-based DFS with a preemption bound and sleep sets, capped at
    /// `max_schedules` runs.
    Exhaustive {
        preemption_bound: u32,
        max_schedules: usize,
    },
}

impl ExplorePlan {
    /// Short name for matrix rows.
    pub fn name(&self) -> String {
        match self {
            ExplorePlan::RoundRobin => "round-robin".to_string(),
            ExplorePlan::Seeded { count, .. } => format!("seeded x{count}"),
            ExplorePlan::Exhaustive {
                preemption_bound, ..
            } => format!("exhaustive pb={preemption_bound}"),
        }
    }
}

/// Aggregated result of exploring one program under one plan.
pub struct Exploration {
    /// Schedules executed (including pruned ones).
    pub schedules: usize,
    /// Branches cut short as sleep-set-redundant.
    pub pruned: usize,
    /// Exhaustive only: the DFS drained within budget (the certification is
    /// over the whole bounded space, not a sample).
    pub complete: bool,
    /// Cap on stored counterexamples applies; see `defects` for the count.
    pub counterexamples: Vec<CounterExample>,
    /// Total defective schedules (uncapped).
    pub defects: usize,
    /// Union lock-order graph over all schedules.
    pub lock_edges: HashMap<(usize, usize), u64>,
    /// Cycles in the union graph.
    pub lock_cycles: Vec<Vec<usize>>,
    /// Largest decision-log length seen.
    pub max_decisions: usize,
    /// Largest op count seen.
    pub max_ops: u64,
}

impl Exploration {
    /// No defect on any schedule and no lock-order cycle.
    pub fn certified(&self) -> bool {
        self.defects == 0 && self.lock_cycles.is_empty()
    }
}

const MAX_STORED_COUNTEREXAMPLES: usize = 16;

fn aggregate(agg: &mut Exploration, o: &ScheduleOutcome) {
    agg.schedules += 1;
    if o.redundant {
        agg.pruned += 1;
    }
    for (k, v) in &o.lock_edges {
        *agg.lock_edges.entry(*k).or_insert(0) += v;
    }
    agg.max_decisions = agg.max_decisions.max(o.decisions.len());
    agg.max_ops = agg.max_ops.max(o.ops);
    if !o.clean() {
        agg.defects += 1;
        for ce in counterexamples_of(o) {
            if agg.counterexamples.len() < MAX_STORED_COUNTEREXAMPLES {
                agg.counterexamples.push(ce);
            }
        }
    }
}

/// Explore `program` on `procs` processors under `plan`.
pub fn explore<F>(procs: usize, plan: &ExplorePlan, cfg: &SchedConfig, program: F) -> Exploration
where
    F: Fn(&VerifyEnv) -> Option<String>,
{
    let mut agg = Exploration {
        schedules: 0,
        pruned: 0,
        complete: false,
        counterexamples: Vec::new(),
        defects: 0,
        lock_edges: HashMap::new(),
        lock_cycles: Vec::new(),
        max_decisions: 0,
        max_ops: 0,
    };
    match plan {
        ExplorePlan::RoundRobin => {
            let o = run_schedule(
                procs,
                SchedStrategy::RoundRobin,
                cfg,
                "round-robin",
                &program,
            );
            aggregate(&mut agg, &o);
        }
        ExplorePlan::Seeded { base, count } => {
            for i in 0..*count {
                let seed = base + i as u64;
                let o = run_schedule(
                    procs,
                    SchedStrategy::Seeded(seed),
                    cfg,
                    &format!("seed {seed}"),
                    &program,
                );
                aggregate(&mut agg, &o);
            }
        }
        ExplorePlan::Exhaustive {
            preemption_bound,
            max_schedules,
        } => {
            let mut cfg = cfg.clone();
            cfg.sleep_sets = true;
            agg.complete = true;
            let mut stack: Vec<ReplayScript> = vec![ReplayScript::default()];
            while let Some(script) = stack.pop() {
                if agg.schedules >= *max_schedules {
                    agg.complete = false;
                    break;
                }
                let base_len = script.choices.len();
                let id = format!("exhaustive #{}", agg.schedules);
                let o = run_schedule(
                    procs,
                    SchedStrategy::Replay(script.clone()),
                    &cfg,
                    &id,
                    &program,
                );
                if o.replay_diverged {
                    // The program is not schedule-deterministic: the DFS
                    // bookkeeping is meaningless past this point.
                    agg.complete = false;
                }
                aggregate(&mut agg, &o);
                if matches!(o.finding, Some(Finding::OpBudgetExhausted { .. })) {
                    agg.complete = false;
                }
                // Branch on every new decision point of this run.
                for i in base_len..o.decisions.len() {
                    let d = &o.decisions[i];
                    let mut slept: Vec<usize> = d.sleep.clone();
                    slept.push(d.chosen);
                    for &alt in d
                        .enabled
                        .iter()
                        .filter(|&&a| a != d.chosen && !d.sleep.contains(&a))
                    {
                        let extra = match d.prev {
                            Some(l) if l != alt && d.enabled.contains(&l) => 1,
                            _ => 0,
                        };
                        if d.preemptions + extra > *preemption_bound {
                            continue;
                        }
                        let mut choices: Vec<usize> =
                            o.decisions[..i].iter().map(|d| d.chosen).collect();
                        choices.push(alt);
                        let mut sleep = script.sleep.clone();
                        sleep.insert(i, slept.clone());
                        stack.push(ReplayScript { choices, sleep });
                        slept.push(alt);
                    }
                }
            }
        }
    }
    agg.lock_cycles = lock_order_cycles(&agg.lock_edges);
    agg
}

// ---------------------------------------------------------------------------
// The (algorithm × procs × strategy) verification matrix
// ---------------------------------------------------------------------------

/// Workload + coverage specification for [`verify_matrix`].
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    pub algorithms: Vec<Algorithm>,
    pub procs: Vec<usize>,
    pub plans: Vec<ExplorePlan>,
    pub model: Model,
    pub n: usize,
    pub k: usize,
    pub warmup_steps: usize,
    pub measured_steps: usize,
    /// Body-model seed.
    pub body_seed: u64,
    pub op_budget: u64,
    /// Force-kernel group size (`SimConfig::group_size`): `0` explores the
    /// per-body flat-walk ablation, `>= 1` the batched list kernel.
    pub group_size: usize,
}

impl MatrixSpec {
    /// The pre-merge configuration: all six algorithms, 2 processors,
    /// round-robin plus a small seeded sample, tiny workload.
    pub fn fast(seeds: usize) -> MatrixSpec {
        MatrixSpec {
            algorithms: Algorithm::ALL.to_vec(),
            procs: vec![2],
            plans: vec![
                ExplorePlan::RoundRobin,
                ExplorePlan::Seeded {
                    base: 1,
                    count: seeds,
                },
            ],
            model: Model::Plummer,
            n: 24,
            k: 2,
            warmup_steps: 1,
            measured_steps: 1,
            body_seed: 1998,
            op_budget: 2_000_000,
            group_size: SimConfig::new(Algorithm::Orig).group_size,
        }
    }
}

/// One cell of the verification matrix.
pub struct MatrixCell {
    pub algorithm: Algorithm,
    pub procs: usize,
    pub plan: String,
    pub exploration: Exploration,
}

/// Build the `SimConfig` + program closure for one matrix workload and
/// explore it. Exposed so tests can run single cells.
pub fn explore_algorithm(
    alg: Algorithm,
    procs: usize,
    plan: &ExplorePlan,
    spec: &MatrixSpec,
) -> Exploration {
    let bodies = spec.model.generate(spec.n, spec.body_seed);
    let mut cfg = SimConfig::new(alg);
    cfg.k = spec.k;
    cfg.warmup_steps = spec.warmup_steps;
    cfg.measured_steps = spec.measured_steps;
    cfg.group_size = spec.group_size;
    let sched_cfg = SchedConfig {
        op_budget: spec.op_budget,
        ..SchedConfig::default()
    };
    explore(procs, plan, &sched_cfg, move |env: &VerifyEnv| {
        let stats = run_simulation(env, &cfg, &bodies);
        stats.validation_error.clone()
    })
}

/// Run the full (algorithm × procs × strategy) matrix.
pub fn verify_matrix(spec: &MatrixSpec) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for &alg in &spec.algorithms {
        for &procs in &spec.procs {
            for plan in &spec.plans {
                cells.push(MatrixCell {
                    algorithm: alg,
                    procs,
                    plan: plan.name(),
                    exploration: explore_algorithm(alg, procs, plan, spec),
                });
            }
        }
    }
    cells
}

/// Self-test of the verification stack against a known bug class.
///
/// [`publication_kernel`] is a deterministic two-processor workload driving
/// the *real* `insert_locked` subdivision path against the UPDATE move
/// phase's exact reader sequence. With the [`mutation`] flag off the kernel
/// certifies clean under a *complete* bounded-exhaustive exploration; with
/// the flag on (re-introducing the publication-order bug fixed early in the
/// repo's history) the same exploration must report a data race. The
/// mutation test and `repro verify --self-test` both run it: if it ever
/// stops detecting the mutant, the schedule explorer — not the tree code —
/// has regressed.
pub mod selftest {
    use super::*;
    use crate::algorithms::common::{create_root, insert_locked};
    use crate::body::Body;
    use crate::harness::spmd;
    use crate::math::{Cube, Vec3};
    use crate::tree::types::NodeRef;
    use crate::tree::{SharedTree, TreeLayout};
    use crate::world::World;

    /// Body index the cross-processor reader targets.
    const B2: usize = 1;

    /// Three-body kernel with the geometry that makes the publication-order
    /// leak reachable (root cube `[0,8]^3`, `k = 2`):
    ///
    /// * `b1 = (1,1,1)` and `b2 = (1.2,1.2,1.2)` fill one leaf `L0`
    ///   covering `[0,4]^3` under the root;
    /// * `b2` is repositioned to `(9,3,3)` — outside `L0`, so the reader
    ///   takes its locked slow path;
    /// * inserting `x = (3,3,3)` overflows `L0` and subdivides: `b2`
    ///   (clamped) and `x` route to the *same* octant of the new sub-cell,
    ///   so the builder grows `b2`'s new leaf *after* the mutation's early
    ///   `body_leaf[b2]` store. A reader that joins at that store and then
    ///   loads the leaf record under the (free) sub-cell lock races with
    ///   the grow. With deferred forwarding, both orders are clean.
    pub fn publication_kernel(env: &VerifyEnv) -> Option<String> {
        let bodies = [
            Body::new(Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO, 1.0),
            Body::new(Vec3::new(1.2, 1.2, 1.2), Vec3::ZERO, 1.0),
            Body::new(Vec3::new(3.0, 3.0, 3.0), Vec3::ZERO, 1.0),
        ];
        let world = World::new(env, &bodies);
        let tree = SharedTree::new(env, bodies.len(), 2, TreeLayout::PerProcessor);
        let root_cube = Cube::new(Vec3::new(4.0, 4.0, 4.0), 4.0);
        spmd(env, |proc, ctx| {
            // ---- Build: b1 and b2 fill one leaf under the root.
            if proc == 0 {
                let root = create_root(env, ctx, &tree, root_cube);
                for b in [0u32, 1] {
                    insert_locked(env, ctx, &tree, &world, 0, 0, b, root, root_cube);
                }
                // Move b2 outside its leaf for the next phase. Untimed: the
                // repositioning itself is not part of the checked execution.
                world.pos.poke(B2, Vec3::new(9.0, 3.0, 3.0));
            }
            env.barrier(ctx);

            // ---- The racing phase.
            if proc == 0 {
                // Builder: inserting x overflows the leaf and subdivides —
                // the production path the mutation perturbs.
                let root = tree.root.load(env, ctx, 0);
                insert_locked(env, ctx, &tree, &world, 0, 0, 2, root, root_cube);
            } else {
                // Reader: the move phase's access sequence for b2
                // (update::move_body's fast path + locked re-validation).
                let pos = world.pos.load(env, ctx, B2);
                let leaf0 = NodeRef(world.body_leaf.load(env, ctx, B2));
                let contained = if leaf0.is_leaf() {
                    let cube = tree.leaf_bounds(env, ctx, leaf0);
                    NodeRef(world.body_leaf.load(env, ctx, B2)) == leaf0 && cube.contains(pos)
                } else {
                    false
                };
                if !contained {
                    loop {
                        let leaf = NodeRef(world.body_leaf.load(env, ctx, B2));
                        let parent = tree.leaf_parent(env, ctx, leaf);
                        if parent.is_null() {
                            // The leaf is being retired mid-subdivision. The
                            // real mover spins until the builder republishes;
                            // here that spin would livelock bounded-exhaustive
                            // exploration (the explorer may never preempt a
                            // spinning proc), so the kernel reader gives up —
                            // the racy schedule this kernel exists for runs
                            // the builder to completion first and never takes
                            // this branch.
                            break;
                        }
                        env.lock(ctx, parent.lock_id());
                        if tree.leaf_parent(env, ctx, leaf) == parent
                            && NodeRef(world.body_leaf.load(env, ctx, B2)) == leaf
                        {
                            // The racy read: the builder may still be growing
                            // this leaf, and only the (deferred) forwarding
                            // store orders its writes before us.
                            let _l = tree.load_leaf(env, ctx, leaf);
                            env.unlock(ctx, parent.lock_id());
                            break;
                        }
                        env.unlock(ctx, parent.lock_id());
                    }
                }
            }
            env.barrier(ctx);
        });
        None
    }

    /// Bounded-exhaustive exploration of [`publication_kernel`] under the
    /// current [`mutation`] flag setting. The space is small enough to
    /// drain completely within the budget, so a clean result on the
    /// unmutated kernel is a proof over the whole bounded schedule space.
    pub fn explore_publication_kernel() -> Exploration {
        explore(
            2,
            &ExplorePlan::Exhaustive {
                preemption_bound: 1,
                max_schedules: 300,
            },
            &SchedConfig::default(),
            publication_kernel,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::spmd;
    use crate::shared::{SharedAtomicVec, SharedVec};

    fn verify_env(procs: usize, strategy: SchedStrategy) -> VerifyEnv {
        CheckedEnv::new(SchedEnv::new(NativeEnv::new(procs), strategy))
    }

    #[test]
    fn serialized_counter_survives_every_strategy() {
        for strategy in [
            SchedStrategy::RoundRobin,
            SchedStrategy::Seeded(7),
            SchedStrategy::Replay(ReplayScript::default()),
        ] {
            let env = verify_env(3, strategy);
            let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
            spmd(&env, |_proc, ctx| {
                for _ in 0..10 {
                    env.lock(ctx, 7);
                    let x = v.load(&env, ctx, 0);
                    v.store(&env, ctx, 0, x + 1);
                    env.unlock(ctx, 7);
                }
            });
            env.assert_race_free();
            assert_eq!(v.peek(0), 30);
            assert!(env.inner().finding().is_none());
        }
    }

    #[test]
    fn barriers_release_all_procs() {
        let env = verify_env(4, SchedStrategy::Seeded(3));
        let v: SharedVec<u64> = SharedVec::new(&env, 4, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            v.store(&env, ctx, proc, 1);
            env.barrier(ctx);
            let mut sum = 0;
            for i in 0..4 {
                sum += v.load(&env, ctx, i);
            }
            assert_eq!(sum, 4);
            env.barrier(ctx);
        });
        env.assert_race_free();
        assert_eq!(env.inner().barrier_generations(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn seeded_schedules_differ_and_replay_is_deterministic() {
        let run = |strategy: SchedStrategy| {
            let env = verify_env(2, strategy);
            let v = SharedAtomicVec::new(&env, 1, 0, Placement::Global);
            spmd(&env, |_proc, ctx| {
                for _ in 0..8 {
                    v.fetch_add(&env, ctx, 0, 1);
                }
            });
            (env.inner().trace_tail(), env.inner().decisions().len())
        };
        let (t1, d1) = run(SchedStrategy::Seeded(1));
        let (t1b, _) = run(SchedStrategy::Seeded(1));
        assert_eq!(t1, t1b, "same seed must reproduce the same schedule");
        assert!(d1 > 0, "atomic contention must produce decision points");
        let mut saw_difference = false;
        for seed in 2..12 {
            if run(SchedStrategy::Seeded(seed)).0 != t1 {
                saw_difference = true;
                break;
            }
        }
        assert!(saw_difference, "ten seeds produced identical schedules");
    }

    #[test]
    fn races_are_detected_under_the_scheduler() {
        // The classic lost-update race must survive composition: CheckedEnv
        // over SchedEnv still reports it on a serialized schedule.
        let mut hit = 0;
        for seed in 0..8 {
            let env = verify_env(2, SchedStrategy::Seeded(seed));
            let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
            spmd(&env, |_proc, ctx| {
                for _ in 0..4 {
                    let x = v.load(&env, ctx, 0);
                    v.store(&env, ctx, 0, x + 1);
                }
            });
            if !env.races().is_empty() {
                hit += 1;
            }
        }
        assert!(hit > 0, "seeded race never detected under the scheduler");
    }

    #[test]
    fn ab_ba_deadlock_is_found_and_reported() {
        let program = |env: &VerifyEnv| {
            spmd(env, |proc, ctx| {
                let (first, second) = if proc == 0 { (10, 11) } else { (11, 10) };
                env.lock(ctx, first);
                env.lock(ctx, second);
                env.unlock(ctx, second);
                env.unlock(ctx, first);
            });
            None
        };
        let agg = explore(
            2,
            &ExplorePlan::Exhaustive {
                preemption_bound: 2,
                max_schedules: 200,
            },
            &SchedConfig::default(),
            program,
        );
        assert!(
            agg.counterexamples.iter().any(|c| c.kind == "deadlock"),
            "AB-BA deadlock not found in {} schedules",
            agg.schedules
        );
        // The union lock-order graph must contain the 10<->11 cycle.
        assert!(
            agg.lock_cycles
                .iter()
                .any(|c| c.contains(&10) && c.contains(&11)),
            "lock-order cycle missing: {:?}",
            agg.lock_cycles
        );
        // A deadlock counterexample carries its schedule trace.
        let ce = agg
            .counterexamples
            .iter()
            .find(|c| c.kind == "deadlock")
            .unwrap();
        assert!(!ce.trace.is_empty(), "counterexample lost its trace");
    }

    #[test]
    fn lock_order_cycle_reported_even_without_a_deadlock() {
        // Round-robin runs P0's two nested acquisitions to completion
        // before P1's reversed pair: no schedule deadlocks, but the union
        // graph has the cycle — the Eraser-style potential-deadlock report.
        let program = |env: &VerifyEnv| {
            spmd(env, |proc, ctx| {
                // The barrier separates the two processors' critical
                // sections in *every* schedule: the deadlock is unreachable,
                // the ordering discipline is still broken.
                if proc == 0 {
                    env.lock(ctx, 20);
                    env.lock(ctx, 21);
                    env.unlock(ctx, 21);
                    env.unlock(ctx, 20);
                }
                env.barrier(ctx);
                if proc == 1 {
                    env.lock(ctx, 21);
                    env.lock(ctx, 20);
                    env.unlock(ctx, 20);
                    env.unlock(ctx, 21);
                }
            });
            None
        };
        let agg = explore(
            2,
            &ExplorePlan::Seeded { base: 1, count: 4 },
            &SchedConfig::default(),
            program,
        );
        assert_eq!(
            agg.defects,
            0,
            "no schedule can deadlock here: {:?}",
            agg.counterexamples.first().map(|c| c.detail.clone())
        );
        assert!(
            agg.lock_cycles
                .iter()
                .any(|c| c.contains(&20) && c.contains(&21)),
            "potential deadlock must be visible in the lock-order graph"
        );
    }

    #[test]
    fn barrier_divergence_is_classified() {
        let program = |env: &VerifyEnv| {
            spmd(env, |proc, ctx| {
                if proc == 0 {
                    env.barrier(ctx);
                }
            });
            None
        };
        let agg = explore(
            2,
            &ExplorePlan::RoundRobin,
            &SchedConfig::default(),
            program,
        );
        let ce = agg
            .counterexamples
            .iter()
            .find(|c| c.kind == "barrier-divergence");
        assert!(
            ce.is_some(),
            "one proc skipping the barrier must be divergence, got {:?}",
            agg.counterexamples
                .iter()
                .map(|c| c.kind.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn deadlock_names_waiters_and_holders() {
        let o = run_schedule(
            2,
            SchedStrategy::Seeded(5),
            &SchedConfig::default(),
            "seed 5",
            &|env: &VerifyEnv| {
                spmd(env, |proc, ctx| {
                    // Both procs grab each other's lock and then exit
                    // without releasing on proc 1: proc 0 waits forever.
                    if proc == 1 {
                        env.lock(ctx, 30);
                    } else {
                        env.barrier(ctx); // never released: divergence OR
                                          // deadlock depending on order
                    }
                });
                None
            },
        );
        // Whatever the classification, the schedule must abort with a
        // finding rather than hang.
        assert!(o.finding.is_some(), "stuck schedule must produce a finding");
    }

    #[test]
    fn unpaired_unlock_is_a_lock_protocol_finding() {
        let o = run_schedule(
            2,
            SchedStrategy::RoundRobin,
            &SchedConfig::default(),
            "rr",
            &|env: &VerifyEnv| {
                spmd(env, |proc, ctx| {
                    if proc == 0 {
                        env.unlock(ctx, 40);
                    }
                });
                None
            },
        );
        assert!(
            matches!(o.finding, Some(Finding::LockProtocol { .. })),
            "got {:?}",
            o.finding
        );
    }

    #[test]
    fn op_budget_catches_atomic_spin_livelock() {
        let o = run_schedule(
            2,
            SchedStrategy::RoundRobin,
            &SchedConfig {
                op_budget: 500,
                ..SchedConfig::default()
            },
            "rr",
            &|env: &VerifyEnv| {
                let flag = SharedAtomicVec::new(env, 1, 0, Placement::Global);
                spmd(env, |proc, ctx| {
                    if proc == 1 {
                        // Spin on a flag nobody ever sets.
                        while flag.load(env, ctx, 0) == 0 {}
                    }
                });
                None
            },
        );
        assert!(
            matches!(o.finding, Some(Finding::OpBudgetExhausted { .. })),
            "got {:?}",
            o.finding
        );
    }

    #[test]
    fn exhaustive_covers_small_spaces_completely() {
        // Two procs, two independent lock pairs: a tiny space the DFS must
        // drain (complete = true) without findings.
        let program = |env: &VerifyEnv| {
            spmd(env, |proc, ctx| {
                let l = 50 + proc;
                env.lock(ctx, l);
                env.unlock(ctx, l);
            });
            None
        };
        let agg = explore(
            2,
            &ExplorePlan::Exhaustive {
                preemption_bound: 2,
                max_schedules: 500,
            },
            &SchedConfig::default(),
            program,
        );
        assert!(agg.complete, "tiny space must drain within 500 schedules");
        assert_eq!(agg.defects, 0);
        assert!(agg.schedules >= 2, "at least both start orders exist");
    }

    #[test]
    fn sleep_sets_prune_without_losing_the_deadlock() {
        // The same AB-BA program explored with and without sleep-set
        // pruning: both must find the deadlock; pruning must not explore
        // more schedules.
        let program = |env: &VerifyEnv| {
            spmd(env, |proc, ctx| {
                let (first, second) = if proc == 0 { (60, 61) } else { (61, 60) };
                env.lock(ctx, first);
                env.lock(ctx, second);
                env.unlock(ctx, second);
                env.unlock(ctx, first);
            });
            None
        };
        let bounded = |max: usize| {
            explore(
                2,
                &ExplorePlan::Exhaustive {
                    preemption_bound: 1,
                    max_schedules: max,
                },
                &SchedConfig::default(),
                program,
            )
        };
        let agg = bounded(300);
        assert!(agg.counterexamples.iter().any(|c| c.kind == "deadlock"));
        assert!(
            agg.schedules < 300,
            "preemption bound 1 must keep the space small, got {}",
            agg.schedules
        );
    }

    #[test]
    fn lock_cycle_detection_on_synthetic_graphs() {
        let mut edges = HashMap::new();
        edges.insert((1usize, 2usize), 1u64);
        edges.insert((2, 3), 1);
        assert!(lock_order_cycles(&edges).is_empty());
        edges.insert((3, 1), 1);
        let cycles = lock_order_cycles(&edges);
        assert_eq!(cycles, vec![vec![1, 2, 3]]);
        // Self-loop (recursive acquisition) is a cycle too.
        let mut selfy = HashMap::new();
        selfy.insert((9usize, 9usize), 2u64);
        assert_eq!(lock_order_cycles(&selfy), vec![vec![9]]);
    }

    #[test]
    fn sched_env_composes_with_one_proc() {
        let env = verify_env(1, SchedStrategy::RoundRobin);
        let v = SharedAtomicVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |_proc, ctx| {
            v.fetch_add(&env, ctx, 0, 5);
            env.barrier(ctx);
        });
        assert_eq!(v.peek(0), 5);
        assert!(env.inner().finding().is_none());
    }

    #[test]
    fn back_to_back_sessions_reuse_the_scheduler() {
        let env = std::sync::Arc::new(verify_env(2, SchedStrategy::Seeded(9)));
        // One element per round: the detector has no happens-before edge
        // across pool.run sessions (worker hooks don't touch vector
        // clocks), so cross-session reuse of one cell would be reported.
        let v: SharedVec<u64> = SharedVec::new(&*env, 3, 0, Placement::Global);
        let pool = crate::harness::WorkerPool::new(2);
        for round in 1..=3u64 {
            let idx = round as usize - 1;
            pool.run(&*env, |proc, ctx| {
                if proc == 0 {
                    v.store(&*env, ctx, idx, round);
                }
                env.barrier(ctx);
                assert_eq!(v.load(&*env, ctx, idx), round);
            });
        }
        env.assert_race_free();
    }
}
