//! A persistent simulation engine: one worker pool plus reusable run state.
//!
//! [`crate::app::run_simulation`] pays the full setup cost on every call —
//! threads spawned and joined, `World`/`SharedTree`/`FlatTree` allocated
//! from scratch. That is fine for a single run but dominates short runs in
//! an experiment sweep, where hundreds of jobs share the same body count
//! and leaf threshold. `SimEngine` keeps both alive:
//!
//! - the [`WorkerPool`] is created once and parks between jobs;
//! - the shared state is `reset()` (not reallocated) whenever the next
//!   job's shape — body count, leaf threshold, tree layout, flat-force
//!   setting — matches the previous one; an incompatible job simply
//!   reallocates.
//!
//! Because `reset()` restores exactly the state a fresh allocation starts
//! with, a reused engine produces **bitwise-identical physics** to a fresh
//! [`crate::app::run_simulation`] call for the same config and bodies
//! (`tests/engine_reuse.rs` certifies this). Timing-derived statistics may
//! of course differ on native environments.

use std::collections::HashMap;

use crate::algorithms::{Algorithm, Builder};
use crate::app::{self, RunStats, SimConfig};
use crate::body::Body;
use crate::env::Env;
use crate::force::ForceScratch;
use crate::harness::WorkerPool;
use crate::tree::flat::FlatTree;
use crate::tree::types::{SharedTree, TreeLayout};
use crate::world::World;

/// The allocation-shape key plus the allocations themselves.
struct EngineState {
    n: usize,
    k: usize,
    layout: TreeLayout,
    has_flat: bool,
    world: World,
    tree: SharedTree,
    flat: Option<FlatTree>,
    /// Interaction-list scratch for the batched force kernel; allocated
    /// with (and shaped like) the flat snapshot.
    force_scratch: Option<ForceScratch>,
    /// One builder per algorithm, kept because some algorithms (Update)
    /// own per-processor scratch arrays sized to `n`.
    builders: HashMap<Algorithm, Builder>,
}

/// A reusable simulation engine bound to one environment.
pub struct SimEngine<E: Env> {
    env: E,
    pool: WorkerPool,
    state: Option<EngineState>,
}

impl<E: Env> SimEngine<E> {
    /// Spin up the worker pool for `env`; no simulation state is allocated
    /// until the first run.
    pub fn new(env: E) -> SimEngine<E> {
        let pool = WorkerPool::new(env.num_procs());
        SimEngine {
            env,
            pool,
            state: None,
        }
    }

    /// The engine's environment (e.g. to inspect a checker or trace sink
    /// after runs).
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Run one job; see [`crate::app::run_simulation`]. State from a prior
    /// compatible job is reset and reused instead of reallocated.
    pub fn run(&mut self, cfg: &SimConfig, bodies: &[Body]) -> RunStats {
        self.run_with_state(cfg, bodies).0
    }

    /// Run one job and also return the final body state; see
    /// [`crate::app::run_simulation_with_state`].
    pub fn run_with_state(&mut self, cfg: &SimConfig, bodies: &[Body]) -> (RunStats, Vec<Body>) {
        let n = bodies.len();
        let layout = cfg.algorithm.layout();
        let compatible = self.state.as_ref().is_some_and(|s| {
            s.n == n && s.k == cfg.k && s.layout == layout && s.has_flat == cfg.flat_force
        });
        if compatible {
            let st = self.state.as_mut().unwrap();
            st.world.reset(bodies);
            st.tree.reset();
            if let Some(flat) = &st.flat {
                flat.reset();
            }
            if let Some(scratch) = &st.force_scratch {
                // Hygiene, like FlatTree::reset: evaluation only ever reads
                // entries the same step's traversal emitted.
                scratch.reset();
            }
        } else {
            let flat = cfg
                .flat_force
                .then(|| FlatTree::new(&self.env, n, cfg.k, layout));
            let force_scratch = flat
                .as_ref()
                .map(|f| ForceScratch::new(&self.env, f, n, self.env.num_procs()));
            self.state = Some(EngineState {
                n,
                k: cfg.k,
                layout,
                has_flat: cfg.flat_force,
                world: World::new(&self.env, bodies),
                tree: SharedTree::new(&self.env, n, cfg.k, layout),
                flat,
                force_scratch,
                builders: HashMap::new(),
            });
        }

        let env = &self.env;
        let st = self.state.as_mut().unwrap();
        let builder = st
            .builders
            .entry(cfg.algorithm)
            .or_insert_with(|| Builder::new(env, cfg.algorithm, n, cfg.k));
        // The threshold/rebalance knobs live on the builder; recompute them
        // from this job's config so a cached builder carries nothing over
        // from the previous job.
        builder.space_threshold = match cfg.space_threshold {
            Some(t) => t.max(1),
            None => crate::algorithms::space::default_threshold(n, env.num_procs(), cfg.k),
        };
        builder.space_rebalance = cfg.space_rebalance.max(0.0);
        if cfg.algorithm.builds_flat_directly() {
            // Like FlatTree::reset: keep reused-engine runs bitwise
            // indistinguishable from fresh ones (each step overwrites every
            // workspace slot it reads, so this is hygiene, not correctness).
            builder.morton_scratch().reset();
        }

        app::execute(
            env,
            &self.pool,
            cfg,
            &st.world,
            &st.tree,
            st.flat.as_ref(),
            st.force_scratch.as_ref(),
            builder,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;
    use crate::model::Model;

    #[test]
    fn engine_reallocates_on_shape_change_and_reuses_otherwise() {
        let mut engine = SimEngine::new(NativeEnv::new(2));
        let small = Model::Plummer.generate(48, 7);
        let large = Model::Plummer.generate(96, 7);
        let mut cfg = SimConfig::new(Algorithm::Partree);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 1;

        engine.run(&cfg, &small).assert_valid();
        assert_eq!(engine.state.as_ref().unwrap().n, 48);
        // Same shape: reuse (the builder map remembers the algorithm).
        engine.run(&cfg, &small).assert_valid();
        assert_eq!(engine.state.as_ref().unwrap().builders.len(), 1);
        // New body count: reallocate, dropping cached builders.
        engine.run(&cfg, &large).assert_valid();
        let st = engine.state.as_ref().unwrap();
        assert_eq!(st.n, 96);
        assert_eq!(st.builders.len(), 1);
    }

    #[test]
    fn engine_switches_algorithms_within_one_allocation() {
        let mut engine = SimEngine::new(NativeEnv::new(2));
        let bodies = Model::Plummer.generate(64, 11);
        for alg in [Algorithm::Local, Algorithm::Update, Algorithm::Space] {
            let mut cfg = SimConfig::new(alg);
            cfg.warmup_steps = 1;
            cfg.measured_steps = 1;
            engine.run(&cfg, &bodies).assert_valid();
        }
        // Local/Update/Space share the per-processor layout: one allocation,
        // three cached builders.
        assert_eq!(engine.state.as_ref().unwrap().builders.len(), 3);
    }
}
