//! Shared world state: body arrays, processor assignments, and the scratch
//! arrays used by the costzones and SPACE partitioners.

use crate::body::Body;
use crate::env::{Env, Placement};
use crate::math::{Aabb, Cube, Vec3};
use crate::shared::{SharedAtomicVec, SharedAtomicVec64, SharedVec};
use crate::tree::NodeRef;

/// Maximum number of final subspaces the SPACE partitioner may produce.
pub const SUBSPACE_CAP: usize = 8192;

/// Maximum frontier cells per SPACE refinement round.
pub const FRONTIER_CAP: usize = 8192;

/// A final subspace produced by the SPACE partitioner: the position in the
/// (partially built) global tree where the owning processor will attach the
/// subtree it builds.
#[derive(Debug, Clone, Copy)]
pub struct Subspace {
    /// Parent cell in the upper tree.
    pub parent: NodeRef,
    /// Octant of `parent` this subspace fills.
    pub oct: u8,
    /// Number of bodies in the subspace.
    pub count: u32,
    /// Total force-computation cost (last step's interaction counts) of the
    /// subspace's bodies. Drives the cost-weighted assignment.
    pub cost: u64,
    /// Cube of space represented.
    pub center: Vec3,
    pub half: f64,
}

impl Subspace {
    pub fn cube(&self) -> Cube {
        Cube::new(self.center, self.half)
    }

    fn zero() -> Subspace {
        Subspace {
            parent: NodeRef::NULL,
            oct: 0,
            count: 0,
            cost: 0,
            center: Vec3::ZERO,
            half: 0.0,
        }
    }
}

/// All shared state of the running simulation apart from the tree itself.
pub struct World {
    pub n: usize,
    // ----- body state ------------------------------------------------------
    pub pos: SharedVec<Vec3>,
    pub vel: SharedVec<Vec3>,
    pub acc: SharedVec<Vec3>,
    pub mass: SharedVec<f64>,
    /// Per-body force-computation work from the previous step (interaction
    /// count). Drives costzones partitioning.
    pub cost: SharedVec<u32>,
    /// The leaf currently holding each body (encoded [`NodeRef`] bits,
    /// atomic: it is read lock-free by the UPDATE algorithm's containment
    /// check while subdividers forward it). Maintained by all builders.
    pub body_leaf: SharedAtomicVec,
    // ----- costzones assignment --------------------------------------------
    /// Bodies in costzones (tree traversal) order.
    pub order: SharedVec<u32>,
    /// Per-processor start index into `order`; length P+1, entry P = n.
    pub zone_start: SharedVec<u32>,
    // ----- bounds reduction --------------------------------------------------
    /// Per-processor bounding boxes, reduced to the global root cube.
    pub proc_bbox: SharedVec<Aabb>,
    // ----- SPACE partitioner scratch ---------------------------------------
    /// Refinement frontier: encoded cell refs, double-buffered by round
    /// parity (round `r` reads `[r % 2]` and publishes the next frontier
    /// into `[1 - r % 2]`, so writers never collide with readers). Frontier
    /// geometry, routing, and lengths are processor-private: they are
    /// deterministic functions of the reduced totals, recomputed identically
    /// everywhere; only the cell refs need shared publication.
    pub sp_frontier: [SharedVec<u32>; 2],
    /// Per-processor body-count rows, one locally-placed array per
    /// processor, indexed by `slot*8 + oct`. Each row is accumulated
    /// privately and published with plain stores once per round, then read
    /// by the cooperative reduction after a barrier.
    pub sp_counts: Vec<SharedAtomicVec>,
    /// Per-processor cost rows, parallel to `sp_counts`: the summed
    /// last-step interaction cost of this processor's bodies per octant.
    pub sp_costs: Vec<SharedAtomicVec64>,
    /// Reduced per-octant body counts (all processors' rows summed). Each
    /// processor reduces a contiguous chunk of the key space every round,
    /// so processor 0's routing pass reads `flen*8` totals instead of
    /// `flen*8*P` remote rows.
    pub sp_total_counts: SharedVec<u32>,
    /// Reduced per-octant costs, parallel to `sp_total_counts`.
    pub sp_total_costs: SharedVec<u64>,
    /// Final subspaces, published round-robin by subspace id.
    pub sp_subspaces: SharedVec<Subspace>,
    /// `[0]` = number of final subspaces (observability: every processor
    /// tracks the count privately; processor 0 publishes it once).
    pub sp_nsub: SharedAtomicVec,
    /// Per-processor routing state for the bodies of its zone (indexed by
    /// position within the zone): the pending route key, or
    /// `SUBSPACE_BIT | id` once settled. Local placement — routing state is
    /// private to the body's current owner.
    pub sp_body_slot: Vec<SharedVec<u32>>,
    /// Per-processor bucket storage: bodies grouped by subspace.
    pub sp_bucket: Vec<SharedVec<u32>>,
    /// Per-processor bucket offsets (length SUBSPACE_CAP+1 each).
    pub sp_bucket_off: Vec<SharedVec<u32>>,
}

/// Marker bit in SPACE routing entries: the remaining bits are a final
/// subspace id.
pub const SUBSPACE_BIT: u32 = 1 << 31;

impl World {
    /// Allocate shared world state for `bodies` on the environment's
    /// processors and initialize it (untimed setup).
    pub fn new<E: Env>(env: &E, bodies: &[Body]) -> World {
        let n = bodies.len();
        let p = env.num_procs();
        let g = Placement::Global;
        let w = World {
            n,
            pos: SharedVec::new(env, n, Vec3::ZERO, g),
            vel: SharedVec::new(env, n, Vec3::ZERO, g),
            acc: SharedVec::new(env, n, Vec3::ZERO, g),
            mass: SharedVec::new(env, n, 0.0, g),
            cost: SharedVec::new(env, n, 1, g),
            body_leaf: SharedAtomicVec::new(env, n, 0, g),
            order: SharedVec::new(env, n, 0, g),
            zone_start: SharedVec::new(env, p + 1, 0, g),
            proc_bbox: SharedVec::new(env, p, Aabb::EMPTY, g),
            sp_frontier: [
                SharedVec::new(env, FRONTIER_CAP, 0, g),
                SharedVec::new(env, FRONTIER_CAP, 0, g),
            ],
            sp_counts: (0..p)
                .map(|q| SharedAtomicVec::new(env, FRONTIER_CAP * 8, 0, Placement::Local(q)))
                .collect(),
            sp_costs: (0..p)
                .map(|q| SharedAtomicVec64::new(env, FRONTIER_CAP * 8, 0, Placement::Local(q)))
                .collect(),
            sp_total_counts: SharedVec::new(env, FRONTIER_CAP * 8, 0, g),
            sp_total_costs: SharedVec::new(env, FRONTIER_CAP * 8, 0, g),
            sp_subspaces: SharedVec::new(env, SUBSPACE_CAP, Subspace::zero(), g),
            sp_nsub: SharedAtomicVec::new(env, 1, 0, g),
            sp_body_slot: (0..p)
                .map(|q| SharedVec::new(env, n, 0, Placement::Local(q)))
                .collect(),
            sp_bucket: (0..p)
                .map(|q| SharedVec::new(env, n, 0u32, Placement::Local(q)))
                .collect(),
            sp_bucket_off: (0..p)
                .map(|q| SharedVec::new(env, SUBSPACE_CAP + 1, 0u32, Placement::Local(q)))
                .collect(),
        };
        w.tag_regions(env);
        w.reset(bodies);
        w
    }

    /// Register every world array with the environment's region registry
    /// (see [`Env::tag_region`]). Untimed setup; harmless no-op on
    /// environments without attribution.
    fn tag_regions<E: Env>(&self, env: &E) {
        use crate::env::Region;
        for v in [&self.pos, &self.vel, &self.acc] {
            v.tag(env, Region::Bodies);
        }
        self.mass.tag(env, Region::Bodies);
        self.cost.tag(env, Region::BodyMeta);
        self.body_leaf.tag(env, Region::BodyMeta);
        self.order.tag(env, Region::Partition);
        self.zone_start.tag(env, Region::Partition);
        self.proc_bbox.tag(env, Region::Partition);
        for f in &self.sp_frontier {
            f.tag(env, Region::PartitionScratch);
        }
        for row in &self.sp_counts {
            row.tag(env, Region::PartitionScratch);
        }
        for row in &self.sp_costs {
            row.tag(env, Region::PartitionScratch);
        }
        self.sp_total_counts.tag(env, Region::PartitionScratch);
        self.sp_total_costs.tag(env, Region::PartitionScratch);
        self.sp_subspaces.tag(env, Region::PartitionScratch);
        self.sp_nsub.tag(env, Region::PartitionScratch);
        for rows in [&self.sp_body_slot, &self.sp_bucket, &self.sp_bucket_off] {
            for row in rows.iter() {
                row.tag(env, Region::PartitionScratch);
            }
        }
    }

    /// Reinitialize already-allocated world state for a new run over
    /// `bodies` (untimed, single-threaded engine setup between jobs). Every
    /// array — body state, costzones assignment, bounds scratch and the
    /// SPACE partitioner scratch — returns to exactly the state
    /// [`World::new`] establishes, so a run on a reused engine performs the
    /// same memory operations, in the same order, on the same values as a
    /// run on a fresh allocation.
    pub fn reset(&self, bodies: &[Body]) {
        assert_eq!(
            bodies.len(),
            self.n,
            "World::reset needs the allocated body count"
        );
        let n = self.n;
        let p = self.proc_bbox.len();
        for (i, b) in bodies.iter().enumerate() {
            self.pos.poke(i, b.pos);
            self.vel.poke(i, b.vel);
            self.acc.poke(i, Vec3::ZERO);
            self.mass.poke(i, b.mass);
            self.cost.poke(i, 1);
            self.body_leaf.poke(i, 0);
            self.order.poke(i, i as u32);
        }
        // Initial even assignment in index order (the paper: "for the first
        // time step, the particles are evenly assigned to processors").
        for q in 0..=p {
            self.zone_start.poke(q, (q * n / p) as u32);
        }
        for q in 0..p {
            self.proc_bbox.poke(q, Aabb::EMPTY);
        }
        for frontier in &self.sp_frontier {
            for i in 0..frontier.len() {
                frontier.poke(i, 0);
            }
        }
        for row in &self.sp_counts {
            for i in 0..row.len() {
                row.poke(i, 0);
            }
        }
        for row in &self.sp_costs {
            for i in 0..row.len() {
                row.poke(i, 0);
            }
        }
        for i in 0..self.sp_total_counts.len() {
            self.sp_total_counts.poke(i, 0);
            self.sp_total_costs.poke(i, 0);
        }
        for i in 0..self.sp_subspaces.len() {
            self.sp_subspaces.poke(i, Subspace::zero());
        }
        self.sp_nsub.poke(0, 0);
        for row in &self.sp_body_slot {
            for i in 0..row.len() {
                row.poke(i, 0);
            }
        }
        for row in &self.sp_bucket {
            for i in 0..row.len() {
                row.poke(i, 0);
            }
        }
        for row in &self.sp_bucket_off {
            for i in 0..row.len() {
                row.poke(i, 0);
            }
        }
    }

    /// Bodies assigned to `proc` (zone bounds, untimed read; the zone
    /// contents are read with timed loads by the algorithms).
    #[inline]
    pub fn zone(&self, proc: usize) -> (usize, usize) {
        (
            self.zone_start.peek(proc) as usize,
            self.zone_start.peek(proc + 1) as usize,
        )
    }

    /// Snapshot the current body state (untimed; for validation/examples).
    pub fn snapshot(&self) -> Vec<Body> {
        (0..self.n)
            .map(|i| Body::new(self.pos.peek(i), self.vel.peek(i), self.mass.peek(i)))
            .collect()
    }

    /// Snapshot positions only.
    pub fn positions(&self) -> Vec<Vec3> {
        (0..self.n).map(|i| self.pos.peek(i)).collect()
    }

    /// Snapshot masses only.
    pub fn masses(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.mass.peek(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;
    use crate::model::Model;

    #[test]
    fn world_initialization_roundtrip() {
        let env = NativeEnv::new(4);
        let bodies = Model::Plummer.generate(100, 3);
        let w = World::new(&env, &bodies);
        assert_eq!(w.n, 100);
        let snap = w.snapshot();
        assert_eq!(snap, bodies);
    }

    #[test]
    fn initial_zones_are_even_partition() {
        let env = NativeEnv::new(4);
        let bodies = Model::UniformSphere.generate(103, 3);
        let w = World::new(&env, &bodies);
        let mut covered = 0;
        for p in 0..4 {
            let (s, e) = w.zone(p);
            assert!(s <= e);
            covered += e - s;
        }
        assert_eq!(covered, 103);
        assert_eq!(w.zone(0).0, 0);
        assert_eq!(w.zone(3).1, 103);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let env = NativeEnv::new(4);
        let first = Model::Plummer.generate(64, 7);
        let second = Model::UniformSphere.generate(64, 9);
        let w = World::new(&env, &first);
        // Dirty state a run would leave behind.
        w.acc.poke(3, Vec3::new(1.0, 2.0, 3.0));
        w.cost.poke(5, 99);
        w.body_leaf.poke(1, 77);
        w.order.poke(0, 63);
        w.zone_start.poke(1, 1);
        w.sp_nsub.poke(0, 12);
        w.sp_total_counts.poke(17, 4);
        w.reset(&second);
        assert_eq!(w.snapshot(), second);
        assert_eq!(w.acc.peek(3), Vec3::ZERO);
        assert_eq!(w.cost.peek(5), 1);
        assert_eq!(w.body_leaf.peek(1), 0);
        assert_eq!(w.order.peek(0), 0);
        assert_eq!(w.zone(0), (0, 16));
        assert_eq!(w.sp_nsub.peek(0), 0);
        assert_eq!(w.sp_total_counts.peek(17), 0);
    }

    #[test]
    fn initial_costs_are_uniform() {
        let env = NativeEnv::new(2);
        let bodies = Model::UniformSphere.generate(10, 1);
        let w = World::new(&env, &bodies);
        for i in 0..10 {
            assert_eq!(w.cost.peek(i), 1);
            assert_eq!(w.order.peek(i), i as u32);
        }
    }
}
