//! A happens-before data-race detector over the [`Env`] abstraction.
//!
//! Every shared-memory access an algorithm performs is already reported
//! through [`Env::read`]/[`Env::write`]/[`Env::rmw`] with a simulated
//! virtual address, and every synchronization operation flows through
//! [`Env::lock`]/[`Env::unlock`]/[`Env::barrier`]. That makes the
//! race-freedom contract stated in [`crate::shared`] *mechanically
//! checkable*: [`CheckedEnv`] wraps any inner environment (native or
//! simulated), maintains FastTrack-style vector clocks, and records a
//! structured [`RaceReport`] whenever two accesses to the same address grain
//! conflict without a happens-before edge between them.
//!
//! ## Happens-before model
//!
//! * **Processor clocks.** Each processor `p` carries a vector clock `C_p`;
//!   `C_p[p]` is incremented at every release operation (unlock, atomic
//!   store, RMW, barrier), so distinct release epochs are distinguishable.
//! * **Locks.** `unlock(l)` stores a copy of `C_p` as the release clock of
//!   `l`; a later `lock(l)` joins it into the acquirer. Release clocks are
//!   keyed by the *raw* lock id: two ids that merely collide in an
//!   environment's hashed lock table do exclude each other in real time,
//!   but the algorithms may not rely on that, so the detector deliberately
//!   does not treat collision-induced exclusion as an ordering edge.
//! * **Barriers.** Arrival at barrier episode `e` joins the processor's
//!   clock into the episode clock; departure adopts the episode clock, so
//!   everything before the barrier happens-before everything after it.
//! * **Atomics.** [`Env::read_atomic`] joins the address's release clock
//!   into the reader (acquire); [`Env::write_atomic`] and [`Env::rmw`] join
//!   the writer's clock into the address's release clock (release). This
//!   models the acquire/release chains the algorithms build from atomic
//!   child pointers and pending counters. Conflicts where *both* accesses
//!   are atomic are synchronization, not races, and are never reported.
//!
//!   The instrumentation call and the real atomic it describes execute at
//!   different instants, and the detector mutex can order two processors'
//!   instrumentation *opposite* to their real operations. The sound
//!   protocol is therefore **publish before the real operation, acquire
//!   after it**: if A's real operation precedes B's, A published before
//!   its real op, which preceded B's real op, which precedes B's join —
//!   B cannot miss A regardless of interleaving. Concretely, releases
//!   ([`Env::write_atomic`], the release half of [`Env::rmw`]) are
//!   instrumented *before* the real atomic; acquires are instrumented
//!   *after* it ([`Env::read_atomic`] is called after the real load, and
//!   the acquire half of an RMW rides on [`Env::atomic_commit`], invoked
//!   after the real RMW). Joining "too early" from the detector's
//!   perspective is impossible this way; the alternative single-call
//!   scheme produced rare false positives under scheduler preemption
//!   between the instrumentation and the real operation. Locks and
//!   barriers follow the same shape naturally (release clocks are
//!   published before the real unlock, joined after the real lock).
//! * **Unordered reads.** [`Env::read_unordered`] marks deliberate
//!   optimistic pre-checks (re-validated before use); they are exempt.
//!
//! ## Granularity
//!
//! [`Granularity::Element`] tracks 4-byte words — every reported conflict
//! is a true overlapping access pair. [`Granularity::CacheLine`] tracks
//! whole lines; overlapping conflicts are races as before, while
//! *byte-disjoint* write/write conflicts on one line from different
//! processors are classified as [`ConflictClass::FalseSharing`] — the
//! detector then doubles as the false-sharing audit the paper's ORIG
//! analysis calls for.
//!
//! One parallel session (one `spmd` scope) at a time may use a
//! `CheckedEnv`. Sessions that end with a barrier may be followed by
//! further sessions on the same environment (the final barrier orders
//! everything before it against everything after).

use crate::env::{CtxStats, Env, Phase, Placement, Region, VAddr};
use crate::sync::Mutex;
use std::collections::HashMap;

/// Shadow-state granularity of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One shadow word per 4 bytes: precise race detection.
    Element,
    /// One shadow word per cache line of the given size (e.g. 64 or 128):
    /// additionally flags cross-processor false sharing.
    CacheLine(u32),
}

impl Granularity {
    #[inline]
    fn bytes(self) -> u64 {
        match self {
            Granularity::Element => 4,
            Granularity::CacheLine(sz) => sz.max(4) as u64,
        }
    }
}

/// What kind of access participated in a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    AtomicRead,
    AtomicWrite,
    Rmw,
}

impl AccessKind {
    #[inline]
    fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::Write | AccessKind::AtomicWrite | AccessKind::Rmw
        )
    }

    #[inline]
    fn is_atomic(self) -> bool {
        matches!(
            self,
            AccessKind::AtomicRead | AccessKind::AtomicWrite | AccessKind::Rmw
        )
    }
}

/// Classification of a reported conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictClass {
    /// Overlapping unsynchronized accesses, at least one a plain write —
    /// a data race.
    Race,
    /// Byte-disjoint writes from different processors to one cache line
    /// with no ordering between them (CacheLine granularity only).
    FalseSharing,
}

/// One side of a conflict.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    pub proc: usize,
    pub kind: AccessKind,
    /// The processor's vector clock at the access.
    pub vclock: Vec<u64>,
    /// The accessor's barrier-episode number (count of barriers it had
    /// passed) — localizes the access to one inter-barrier region.
    pub episode: usize,
    pub addr: VAddr,
    pub bytes: u32,
}

/// A recorded happens-before violation.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Base address of the shadow grain where the conflict was detected.
    pub addr: VAddr,
    /// Size of the shadow grain in bytes.
    pub bytes: u32,
    pub class: ConflictClass,
    /// The earlier access (by detector observation order).
    pub first: AccessInfo,
    /// The later access.
    pub second: AccessInfo,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} on grain {:#x}+{}: P{} {:?} ep{} [{:#x}+{}] {:?} vs P{} {:?} ep{} [{:#x}+{}] {:?}",
            self.class,
            self.addr,
            self.bytes,
            self.first.proc,
            self.first.kind,
            self.first.episode,
            self.first.addr,
            self.first.bytes,
            self.first.vclock,
            self.second.proc,
            self.second.kind,
            self.second.episode,
            self.second.addr,
            self.second.bytes,
            self.second.vclock,
        )
    }
}

/// Cap on stored reports; conflicts past the cap are only counted.
const MAX_REPORTS: usize = 64;

type VClock = Vec<u64>;

#[inline]
fn join(into: &mut VClock, from: &VClock) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

/// Last recorded access of one processor to one grain.
#[derive(Debug, Clone)]
struct LastAccess {
    /// The accessor's own clock component at the access — the epoch a
    /// later access must have observed for a happens-before edge.
    epoch: u64,
    kind: AccessKind,
    addr: VAddr,
    bytes: u32,
    episode: usize,
    vclock: VClock,
}

#[derive(Debug, Default, Clone)]
struct GrainState {
    reads: Vec<Option<LastAccess>>,
    writes: Vec<Option<LastAccess>>,
}

struct Detector {
    procs: usize,
    clocks: Vec<VClock>,
    /// Release clocks per raw lock id.
    lock_release: HashMap<usize, VClock>,
    /// Release clocks per atomic grain (4-byte words).
    addr_release: HashMap<u64, VClock>,
    /// Barrier episode join clocks.
    episodes: Vec<VClock>,
    shadow: HashMap<u64, GrainState>,
    reports: Vec<RaceReport>,
    conflicts: usize,
}

impl Detector {
    fn new(procs: usize) -> Detector {
        Detector {
            procs,
            clocks: (0..procs)
                .map(|p| {
                    // Start each processor in its own epoch 1 so that epoch 0
                    // can never be mistaken for an already-observed access.
                    let mut c = vec![0; procs];
                    c[p] = 1;
                    c
                })
                .collect(),
            lock_release: HashMap::new(),
            addr_release: HashMap::new(),
            episodes: Vec::new(),
            shadow: HashMap::new(),
            reports: Vec::new(),
            conflicts: 0,
        }
    }

    /// Record one access and report any conflicts with prior accesses.
    #[allow(clippy::too_many_arguments)]
    fn access(
        &mut self,
        proc: usize,
        kind: AccessKind,
        addr: VAddr,
        bytes: u32,
        grain: u64,
        episode: usize,
    ) {
        let lo = addr / grain.max(1);
        let hi = (addr + bytes.max(1) as u64 - 1) / grain.max(1);
        for g in lo..=hi {
            self.access_grain(proc, kind, addr, bytes, g, grain, episode);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn access_grain(
        &mut self,
        proc: usize,
        kind: AccessKind,
        addr: VAddr,
        bytes: u32,
        g: u64,
        grain: u64,
        episode: usize,
    ) {
        let procs = self.procs;
        let my_clock = self.clocks[proc].clone();
        let state = self.shadow.entry(g).or_insert_with(|| GrainState {
            reads: vec![None; procs],
            writes: vec![None; procs],
        });

        let mut found: Vec<RaceReport> = Vec::new();
        {
            let mut check = |prev: &LastAccess, q: usize| {
                if my_clock[q] >= prev.epoch {
                    return; // happens-before edge exists
                }
                if prev.kind.is_atomic() && kind.is_atomic() {
                    return; // atomic/atomic is synchronization, not a race
                }
                let overlap = addr < prev.addr + prev.bytes.max(1) as u64
                    && prev.addr < addr + bytes.max(1) as u64;
                let class = if overlap {
                    ConflictClass::Race
                } else if prev.kind.is_write() && kind.is_write() {
                    // Same grain, disjoint bytes: false sharing (only
                    // observable at cache-line granularity).
                    ConflictClass::FalseSharing
                } else {
                    return;
                };
                found.push(RaceReport {
                    addr: g * grain,
                    bytes: grain as u32,
                    class,
                    first: AccessInfo {
                        proc: q,
                        kind: prev.kind,
                        vclock: prev.vclock.clone(),
                        episode: prev.episode,
                        addr: prev.addr,
                        bytes: prev.bytes,
                    },
                    second: AccessInfo {
                        proc,
                        kind,
                        vclock: my_clock.clone(),
                        episode,
                        addr,
                        bytes,
                    },
                });
            };

            for q in 0..procs {
                if q == proc {
                    continue;
                }
                if let Some(prev) = &state.writes[q] {
                    check(prev, q);
                }
                if kind.is_write() {
                    if let Some(prev) = &state.reads[q] {
                        check(prev, q);
                    }
                }
            }
        }

        let entry = LastAccess {
            epoch: my_clock[proc],
            kind,
            addr,
            bytes,
            episode,
            vclock: my_clock,
        };
        if kind.is_write() {
            state.writes[proc] = Some(entry);
        } else {
            state.reads[proc] = Some(entry);
        }

        self.conflicts += found.len();
        for r in found {
            if self.reports.len() < MAX_REPORTS {
                self.reports.push(r);
            }
        }
    }

    /// Acquire side of an atomic access: join the address release clocks.
    fn atomic_acquire(&mut self, proc: usize, addr: VAddr, bytes: u32) {
        for g in (addr / 4)..=((addr + bytes.max(1) as u64 - 1) / 4) {
            if let Some(rel) = self.addr_release.get(&g) {
                let rel = rel.clone();
                join(&mut self.clocks[proc], &rel);
            }
        }
    }

    /// Release side of an atomic access: publish the writer's clock on the
    /// address and open a new epoch.
    fn atomic_release(&mut self, proc: usize, addr: VAddr, bytes: u32) {
        let procs = self.procs;
        let clock = self.clocks[proc].clone();
        for g in (addr / 4)..=((addr + bytes.max(1) as u64 - 1) / 4) {
            let rel = self.addr_release.entry(g).or_insert_with(|| vec![0; procs]);
            join(rel, &clock);
        }
        self.clocks[proc][proc] += 1;
    }
}

/// Per-processor context of a [`CheckedEnv`].
pub struct CheckedCtx<C> {
    proc: usize,
    episode: usize,
    inner: C,
}

/// A race-detecting wrapper around any [`Env`]. See the module docs.
pub struct CheckedEnv<E: Env> {
    inner: E,
    granularity: Granularity,
    det: Mutex<Detector>,
}

impl<E: Env> CheckedEnv<E> {
    /// Wrap `inner` with element (4-byte word) granularity.
    pub fn new(inner: E) -> CheckedEnv<E> {
        CheckedEnv::with_granularity(inner, Granularity::Element)
    }

    /// Wrap `inner` with an explicit shadow granularity.
    pub fn with_granularity(inner: E, granularity: Granularity) -> CheckedEnv<E> {
        let procs = inner.num_procs();
        CheckedEnv {
            inner,
            granularity,
            det: Mutex::new(Detector::new(procs)),
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// All recorded conflict reports (capped at an internal maximum).
    pub fn reports(&self) -> Vec<RaceReport> {
        self.det.lock().reports.clone()
    }

    /// Recorded reports classified as true data races.
    pub fn races(&self) -> Vec<RaceReport> {
        self.reports()
            .into_iter()
            .filter(|r| r.class == ConflictClass::Race)
            .collect()
    }

    /// Recorded reports classified as false sharing.
    pub fn false_sharing(&self) -> Vec<RaceReport> {
        self.reports()
            .into_iter()
            .filter(|r| r.class == ConflictClass::FalseSharing)
            .collect()
    }

    /// Total conflicts observed, including those past the report cap.
    pub fn conflicts_observed(&self) -> usize {
        self.det.lock().conflicts
    }

    /// Panic with a diagnostic listing if any data race was recorded.
    /// False-sharing reports are informational and do not fail this check.
    pub fn assert_race_free(&self) {
        let races = self.races();
        if races.is_empty() {
            return;
        }
        let mut msg = format!("{} data race(s) detected:\n", races.len());
        for r in races.iter().take(8) {
            msg.push_str(&format!("  {r}\n"));
        }
        panic!("{msg}");
    }
}

impl<E: Env> Env for CheckedEnv<E> {
    type Ctx = CheckedCtx<E::Ctx>;

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }

    fn make_ctx(&self, proc: usize) -> Self::Ctx {
        CheckedCtx {
            proc,
            episode: 0,
            inner: self.inner.make_ctx(proc),
        }
    }

    fn alloc(&self, bytes: u64, align: u64, place: Placement) -> VAddr {
        self.inner.alloc(bytes, align, place)
    }

    fn tag_region(&self, base: VAddr, bytes: u64, region: Region) {
        self.inner.tag_region(base, bytes, region)
    }

    fn read(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read(&mut ctx.inner, addr, bytes);
        self.det.lock().access(
            ctx.proc,
            AccessKind::Read,
            addr,
            bytes,
            self.granularity.bytes(),
            ctx.episode,
        );
    }

    fn write(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.write(&mut ctx.inner, addr, bytes);
        self.det.lock().access(
            ctx.proc,
            AccessKind::Write,
            addr,
            bytes,
            self.granularity.bytes(),
            ctx.episode,
        );
    }

    fn rmw(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.rmw(&mut ctx.inner, addr, bytes);
        // Release side only: this instrumentation call precedes the *real*
        // atomic operation, so the processor's clock is published now (any
        // real-order successor's post-operation `atomic_commit` will see
        // it), while the acquire side waits for our own `atomic_commit` —
        // joining here could miss a publication by a processor whose real
        // operation lands before ours. See the module docs.
        let mut det = self.det.lock();
        det.access(
            ctx.proc,
            AccessKind::Rmw,
            addr,
            bytes,
            self.granularity.bytes(),
            ctx.episode,
        );
        det.atomic_release(ctx.proc, addr, bytes);
    }

    fn read_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.read_atomic(&mut ctx.inner, addr, bytes);
        // Callers invoke this *after* the real atomic load (see the Env
        // docs), so joining the release clock here cannot miss a writer
        // whose real store the load observed.
        let mut det = self.det.lock();
        det.atomic_acquire(ctx.proc, addr, bytes);
        det.access(
            ctx.proc,
            AccessKind::AtomicRead,
            addr,
            bytes,
            self.granularity.bytes(),
            ctx.episode,
        );
    }

    fn write_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.write_atomic(&mut ctx.inner, addr, bytes);
        let mut det = self.det.lock();
        det.access(
            ctx.proc,
            AccessKind::AtomicWrite,
            addr,
            bytes,
            self.granularity.bytes(),
            ctx.episode,
        );
        det.atomic_release(ctx.proc, addr, bytes);
    }

    fn atomic_commit(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.inner.atomic_commit(&mut ctx.inner, addr, bytes);
        // Acquire side of an RMW, after the real atomic has executed: every
        // real-order predecessor published its clock before its own real
        // operation, which preceded ours, so the join below cannot miss one.
        self.det.lock().atomic_acquire(ctx.proc, addr, bytes);
    }

    fn read_unordered(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        // Deliberately unordered optimistic read: charged to the cost model,
        // exempt from race reporting (see the Env docs).
        self.inner.read_unordered(&mut ctx.inner, addr, bytes);
    }

    fn compute(&self, ctx: &mut Self::Ctx, cycles: u64) {
        self.inner.compute(&mut ctx.inner, cycles);
    }

    fn lock(&self, ctx: &mut Self::Ctx, lock: usize) {
        self.inner.lock(&mut ctx.inner, lock);
        // Join the release clock *after* the inner acquire: the previous
        // holder's unlock has completed, so its release clock is published.
        let mut det = self.det.lock();
        if let Some(rel) = det.lock_release.get(&lock) {
            let rel = rel.clone();
            join(&mut det.clocks[ctx.proc], &rel);
        }
    }

    fn unlock(&self, ctx: &mut Self::Ctx, lock: usize) {
        {
            let mut det = self.det.lock();
            let clock = det.clocks[ctx.proc].clone();
            det.lock_release.insert(lock, clock);
            det.clocks[ctx.proc][ctx.proc] += 1;
        }
        self.inner.unlock(&mut ctx.inner, lock);
    }

    fn barrier(&self, ctx: &mut Self::Ctx) {
        let e = ctx.episode;
        ctx.episode += 1;
        {
            let mut det = self.det.lock();
            let procs = det.procs;
            while det.episodes.len() <= e {
                det.episodes.push(vec![0; procs]);
            }
            let clock = det.clocks[ctx.proc].clone();
            join(&mut det.episodes[e], &clock);
        }
        self.inner.barrier(&mut ctx.inner);
        // All processors joined episode `e` before the rendezvous released.
        let mut det = self.det.lock();
        let joined = det.episodes[e].clone();
        join(&mut det.clocks[ctx.proc], &joined);
        det.clocks[ctx.proc][ctx.proc] += 1;
    }

    fn phase_begin(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        // Pure observability: no happens-before implications, but the hook
        // must reach any tracing environment wrapped *inside* the detector.
        self.inner.phase_begin(&mut ctx.inner, phase, step);
    }

    fn phase_end(&self, ctx: &mut Self::Ctx, phase: Phase, step: u32) {
        self.inner.phase_end(&mut ctx.inner, phase, step);
    }

    fn worker_begin(&self, proc: usize) {
        // The scheduler gate (if any) lives below the detector; a worker
        // must not be admitted past it unannounced.
        self.inner.worker_begin(proc);
    }

    fn worker_end(&self, proc: usize) {
        self.inner.worker_end(proc);
    }

    fn now(&self, ctx: &Self::Ctx) -> u64 {
        self.inner.now(&ctx.inner)
    }

    fn stats(&self, ctx: &Self::Ctx) -> CtxStats {
        self.inner.stats(&ctx.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;
    use crate::harness::spmd;
    use crate::shared::{SharedAtomicVec, SharedVec};

    fn two_proc_env(g: Granularity) -> CheckedEnv<NativeEnv> {
        CheckedEnv::with_granularity(NativeEnv::new(2), g)
    }

    #[test]
    fn unlocked_concurrent_writes_are_reported() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            v.store(&env, ctx, 0, proc as u64);
        });
        let races = env.races();
        assert!(!races.is_empty(), "deliberate race not detected");
        assert_eq!(races[0].class, ConflictClass::Race);
        assert!(races[0].first.proc != races[0].second.proc);
    }

    #[test]
    fn lock_protected_writes_are_clean() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |_proc, ctx| {
            for _ in 0..50 {
                env.lock(ctx, 7);
                let x = v.load(&env, ctx, 0);
                v.store(&env, ctx, 0, x + 1);
                env.unlock(ctx, 7);
            }
        });
        env.assert_race_free();
        assert_eq!(v.peek(0), 100);
    }

    #[test]
    fn lock_table_collision_is_not_an_ordering_edge() {
        // Two different lock ids that collide in the native 4096-entry table
        // exclude in real time, but the detector must still flag the race.
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            let lock = 100 + proc * (crate::env::NATIVE_LOCK_TABLE - 64);
            env.lock(ctx, lock);
            let x = v.load(&env, ctx, 0);
            v.store(&env, ctx, 0, x + 1);
            env.unlock(ctx, lock);
        });
        assert!(
            !env.races().is_empty(),
            "aliased-lock access must count as a race"
        );
    }

    #[test]
    fn barrier_separated_phases_are_clean() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 4, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            // Phase 1: each proc writes its own half.
            v.store(&env, ctx, proc * 2, 1);
            v.store(&env, ctx, proc * 2 + 1, 1);
            env.barrier(ctx);
            // Phase 2: each proc reads the *other* half.
            let other = 1 - proc;
            let _ = v.load(&env, ctx, other * 2);
            let _ = v.load(&env, ctx, other * 2 + 1);
            env.barrier(ctx);
            // Phase 3: swap write ownership.
            v.store(&env, ctx, other * 2, 2);
        });
        env.assert_race_free();
    }

    #[test]
    fn missing_barrier_is_reported() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            if proc == 0 {
                v.store(&env, ctx, 0, 42);
            } else {
                let _ = v.load(&env, ctx, 0);
            }
        });
        assert!(
            !env.races().is_empty(),
            "write/read without ordering must be a race"
        );
    }

    #[test]
    fn atomic_counter_is_not_a_race() {
        let env = two_proc_env(Granularity::Element);
        let v = SharedAtomicVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |_proc, ctx| {
            for _ in 0..100 {
                v.fetch_add(&env, ctx, 0, 1);
            }
            let _ = v.load(&env, ctx, 0);
        });
        env.assert_race_free();
    }

    #[test]
    fn release_acquire_chain_orders_plain_data() {
        // The pending-counter idiom: P0 writes data then RMWs a flag; P1
        // spins on the flag (acquire) and reads the data.
        let env = two_proc_env(Granularity::Element);
        let data: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        let flag = SharedAtomicVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            if proc == 0 {
                data.store(&env, ctx, 0, 99);
                flag.fetch_add(&env, ctx, 0, 1);
            } else {
                while flag.load(&env, ctx, 0) == 0 {
                    std::hint::spin_loop();
                }
                assert_eq!(data.load(&env, ctx, 0), 99);
            }
        });
        env.assert_race_free();
    }

    #[test]
    fn rmw_commit_joins_real_order_predecessor() {
        // Replays the scheduler interleaving that made a single-call RMW
        // instrumentation scheme report false positives: P0's
        // instrumentation runs first, but P1's real decrement lands first,
        // so P0 observes it (e.g. becomes the last completer of a pending
        // counter) and goes on to read data P1 wrote. With the two-phase
        // protocol, P0's post-operation commit joins P1's publication, so
        // the read is ordered and must not be reported.
        let env = two_proc_env(Granularity::Element);
        let data: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        let flag = SharedAtomicVec::new(&env, 2, 0, Placement::Global);
        let mut c0 = env.make_ctx(0);
        let mut c1 = env.make_ctx(1);
        // P0: instrumented half of its RMW, then preempted before the
        // real operation.
        env.rmw(&mut c0, flag.addr(0), 4);
        // P1: writes data, then performs its full RMW (instrumentation,
        // real operation, commit).
        data.store(&env, &mut c1, 0, 7);
        flag.fetch_add(&env, &mut c1, 0, 1);
        // P0 resumes: its real operation lands here (after P1's), and the
        // commit joins every real-order predecessor's publication.
        env.atomic_commit(&mut c0, flag.addr(0), 4);
        let _ = data.load(&env, &mut c0, 0);
        env.assert_race_free();
    }

    #[test]
    fn false_sharing_flagged_at_line_granularity_only() {
        // Two processors write adjacent 8-byte elements: disjoint bytes,
        // same 64-byte line.
        for (gran, expect_fs) in [
            (Granularity::Element, false),
            (Granularity::CacheLine(64), true),
        ] {
            let env = two_proc_env(gran);
            let v: SharedVec<u64> = SharedVec::new(&env, 8, 0, Placement::Global);
            spmd(&env, |proc, ctx| {
                v.store(&env, ctx, proc, proc as u64);
            });
            assert!(env.races().is_empty(), "disjoint writes are not a race");
            assert_eq!(
                !env.false_sharing().is_empty(),
                expect_fs,
                "granularity {gran:?}: false-sharing detection mismatch"
            );
        }
    }

    #[test]
    fn unordered_reads_are_exempt() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            if proc == 0 {
                v.store(&env, ctx, 0, 1);
            } else {
                let _ = v.load_relaxed(&env, ctx, 0);
            }
        });
        env.assert_race_free();
    }

    #[test]
    fn report_fields_are_populated() {
        let env = two_proc_env(Granularity::Element);
        let v: SharedVec<u32> = SharedVec::new(&env, 1, 0, Placement::Global);
        spmd(&env, |proc, ctx| {
            v.store(&env, ctx, 0, proc as u32);
        });
        let races = env.races();
        assert!(!races.is_empty());
        let r = &races[0];
        assert_eq!(r.first.vclock.len(), 2);
        assert_eq!(r.second.vclock.len(), 2);
        assert_eq!(r.first.addr, v.addr(0));
        assert_eq!(r.first.bytes, 4);
        assert!(r.to_string().contains("Race"));
        assert!(env.conflicts_observed() >= races.len());
    }
}
