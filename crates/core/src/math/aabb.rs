//! Axis-aligned cubes and boxes, and the octant arithmetic that underpins the
//! octree: every tree cell represents a cube, and a cube splits into eight
//! child octants indexed 0..8 by the sign of each coordinate relative to the
//! cube's center.

use super::vec3::Vec3;

/// An axis-aligned cube described by its center and half-side length.
///
/// Octree cells are always cubes (not general boxes): the root cube is the
/// smallest cube enclosing the bounding box of all bodies, and each
/// subdivision halves the side length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cube {
    pub center: Vec3,
    /// Half of the side length. Always positive for a valid cube.
    pub half: f64,
}

impl Cube {
    #[inline]
    pub const fn new(center: Vec3, half: f64) -> Self {
        Cube { center, half }
    }

    /// Side length of the cube.
    #[inline]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// `true` if the point lies inside the cube (half-open: low edges
    /// inclusive, high edges exclusive, so the eight octants of a parent
    /// partition it exactly).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.center.x - self.half
            && p.x < self.center.x + self.half
            && p.y >= self.center.y - self.half
            && p.y < self.center.y + self.half
            && p.z >= self.center.z - self.half
            && p.z < self.center.z + self.half
    }

    /// Which of the eight octants the point falls in, as an index in `0..8`.
    ///
    /// Bit 0 is set when `p.x >= center.x`, bit 1 for y, bit 2 for z. The
    /// point does not need to lie inside the cube; the octant is determined
    /// purely by the signs relative to the center, matching how the SPLASH
    /// Barnes-Hut codes route bodies during insertion.
    #[inline]
    pub fn octant_of(&self, p: Vec3) -> usize {
        (usize::from(p.x >= self.center.x))
            | (usize::from(p.y >= self.center.y) << 1)
            | (usize::from(p.z >= self.center.z) << 2)
    }

    /// The child cube for octant `oct` (`0..8`).
    #[inline]
    pub fn octant(&self, oct: usize) -> Cube {
        debug_assert!(oct < 8);
        let q = self.half * 0.5;
        let sign = |bit: usize| if oct >> bit & 1 == 1 { q } else { -q };
        Cube {
            center: Vec3::new(
                self.center.x + sign(0),
                self.center.y + sign(1),
                self.center.z + sign(2),
            ),
            half: q,
        }
    }

    /// Smallest cube centered on the box's center that contains the box,
    /// inflated slightly so that boundary points satisfy the half-open
    /// containment test.
    pub fn enclosing(bbox: &Aabb) -> Cube {
        let center = (bbox.min + bbox.max) * 0.5;
        let half = ((bbox.max - bbox.min).max_component() * 0.5).max(f64::MIN_POSITIVE);
        // Inflate so points exactly on the max faces stay strictly inside.
        Cube {
            center,
            half: half * 1.000_001 + 1e-12,
        }
    }

    /// Minimum distance from point `p` to the cube surface (0 if inside).
    pub fn distance_to(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for i in 0..3 {
            let lo = self.center[i] - self.half;
            let hi = self.center[i] + self.half;
            let d = if p[i] < lo {
                lo - p[i]
            } else if p[i] > hi {
                p[i] - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2.sqrt()
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The empty box: grows to fit anything via [`Aabb::grow`].
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f64::INFINITY),
        max: Vec3::splat(f64::NEG_INFINITY),
    };

    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Expand to include the point.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Union of two boxes.
    #[inline]
    pub fn merged(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Bounding box of a set of points; `EMPTY` if the slice is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.grow(p);
        }
        b
    }

    /// `true` if no point has been added yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octants_partition_the_cube() {
        let c = Cube::new(Vec3::ZERO, 1.0);
        // Sample a grid of points; each must be contained in exactly one octant.
        for ix in -4..4 {
            for iy in -4..4 {
                for iz in -4..4 {
                    let p = Vec3::new(
                        ix as f64 / 4.0 + 0.01,
                        iy as f64 / 4.0 + 0.01,
                        iz as f64 / 4.0 + 0.01,
                    );
                    if !c.contains(p) {
                        continue;
                    }
                    let n: usize = (0..8).filter(|&o| c.octant(o).contains(p)).count();
                    assert_eq!(n, 1, "point {p:?} contained in {n} octants");
                    assert!(c.octant(c.octant_of(p)).contains(p));
                }
            }
        }
    }

    #[test]
    fn octant_of_routes_by_sign() {
        let c = Cube::new(Vec3::new(1.0, 1.0, 1.0), 2.0);
        assert_eq!(c.octant_of(Vec3::new(0.0, 0.0, 0.0)), 0);
        assert_eq!(c.octant_of(Vec3::new(2.0, 0.0, 0.0)), 1);
        assert_eq!(c.octant_of(Vec3::new(0.0, 2.0, 0.0)), 2);
        assert_eq!(c.octant_of(Vec3::new(0.0, 0.0, 2.0)), 4);
        assert_eq!(c.octant_of(Vec3::new(2.0, 2.0, 2.0)), 7);
    }

    #[test]
    fn octant_geometry() {
        let c = Cube::new(Vec3::ZERO, 2.0);
        let o = c.octant(7);
        assert_eq!(o.half, 1.0);
        assert_eq!(o.center, Vec3::new(1.0, 1.0, 1.0));
        let o0 = c.octant(0);
        assert_eq!(o0.center, Vec3::new(-1.0, -1.0, -1.0));
    }

    #[test]
    fn enclosing_cube_contains_all_points() {
        let pts = [
            Vec3::new(-3.0, 1.0, 2.0),
            Vec3::new(5.0, -2.0, 0.5),
            Vec3::new(0.0, 7.0, -1.0),
        ];
        let bbox = Aabb::from_points(pts.iter().copied());
        let cube = Cube::enclosing(&bbox);
        for p in pts {
            assert!(cube.contains(p), "{p:?} not in enclosing cube");
        }
    }

    #[test]
    fn aabb_grow_and_merge() {
        let mut a = Aabb::EMPTY;
        assert!(a.is_empty());
        a.grow(Vec3::new(1.0, 2.0, 3.0));
        a.grow(Vec3::new(-1.0, 0.0, 5.0));
        assert!(!a.is_empty());
        assert_eq!(a.min, Vec3::new(-1.0, 0.0, 3.0));
        assert_eq!(a.max, Vec3::new(1.0, 2.0, 5.0));
        let b = Aabb::new(Vec3::new(0.0, -9.0, 0.0), Vec3::new(0.5, 0.0, 9.0));
        let m = a.merged(&b);
        assert_eq!(m.min, Vec3::new(-1.0, -9.0, 0.0));
        assert_eq!(m.max, Vec3::new(1.0, 2.0, 9.0));
    }

    #[test]
    fn cube_distance() {
        let c = Cube::new(Vec3::ZERO, 1.0);
        assert_eq!(c.distance_to(Vec3::ZERO), 0.0);
        assert_eq!(c.distance_to(Vec3::new(0.5, -0.5, 0.9)), 0.0);
        assert!((c.distance_to(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        let d = c.distance_to(Vec3::new(2.0, 2.0, 0.0));
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_point_cloud() {
        // All points identical: enclosing cube must still be valid (positive half).
        let p = Vec3::new(4.0, 4.0, 4.0);
        let bbox = Aabb::from_points(std::iter::repeat_n(p, 5));
        let cube = Cube::enclosing(&bbox);
        assert!(cube.half > 0.0);
        assert!(cube.contains(p));
    }
}
