//! Geometric primitives: vectors, cubes/boxes, and Morton keys.

pub mod aabb;
pub mod morton;
pub mod vec3;

pub use aabb::{Aabb, Cube};
pub use vec3::Vec3;
