//! Morton (Z-order) keys.
//!
//! The costzones partitioner orders tree cells by a canonical child ordering;
//! Morton keys give the same space-filling order directly on points, which is
//! useful for building balanced work assignments, for deterministic tie
//! breaking, and for the tests that cross-check tree traversal order.

use super::aabb::Cube;
use super::vec3::Vec3;

/// Number of bits of resolution per dimension in a 63-bit Morton key.
pub const MORTON_BITS: u32 = 21;

/// Spread the low 21 bits of `v` so that there are two zero bits between
/// every pair of adjacent payload bits.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread`].
#[inline]
fn compact(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Interleave three 21-bit integer coordinates into a 63-bit Morton key.
#[inline]
pub fn encode(ix: u64, iy: u64, iz: u64) -> u64 {
    spread(ix) | (spread(iy) << 1) | (spread(iz) << 2)
}

/// Recover the three 21-bit coordinates from a Morton key.
#[inline]
pub fn decode(key: u64) -> (u64, u64, u64) {
    (compact(key), compact(key >> 1), compact(key >> 2))
}

/// Morton key of a point within a root cube. Points outside the cube are
/// clamped to its surface.
pub fn key_in_cube(p: Vec3, root: &Cube) -> u64 {
    let scale = (1u64 << MORTON_BITS) as f64;
    let side = root.side();
    let quantize = |c: f64, lo: f64| -> u64 {
        let t = ((c - lo) / side * scale).floor();
        let max = scale - 1.0;
        t.clamp(0.0, max) as u64
    };
    let lo = root.center - Vec3::splat(root.half);
    encode(
        quantize(p.x, lo.x),
        quantize(p.y, lo.y),
        quantize(p.z, lo.z),
    )
}

/// The octant path of a Morton key truncated to `depth` levels, most
/// significant octant first. Matches [`Cube::octant_of`] routing: at every
/// level the octant index has bit 0 = x, bit 1 = y, bit 2 = z.
pub fn octant_path(key: u64, depth: u32) -> impl Iterator<Item = usize> {
    (0..depth).map(move |d| {
        let shift = 3 * (MORTON_BITS - 1 - d);
        ((key >> shift) & 0b111) as usize
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for &(x, y, z) in &[
            (0u64, 0, 0),
            (1, 2, 3),
            (0x1f_ffff, 0x1f_ffff, 0x1f_ffff),
            (12345, 67890, 999),
        ] {
            let k = encode(x, y, z);
            assert_eq!(decode(k), (x, y, z));
        }
    }

    #[test]
    fn interleaving_is_strictly_ordered_per_axis() {
        // Increasing one coordinate with others fixed increases the key.
        let base = encode(5, 9, 13);
        assert!(encode(6, 9, 13) > base);
        assert!(encode(5, 10, 13) > base);
        assert!(encode(5, 9, 14) > base);
    }

    #[test]
    fn key_in_cube_clamps() {
        let cube = Cube::new(Vec3::ZERO, 1.0);
        let far = Vec3::new(100.0, -100.0, 0.0);
        let k = key_in_cube(far, &cube);
        let (x, y, _z) = decode(k);
        assert_eq!(x, (1 << MORTON_BITS) - 1);
        assert_eq!(y, 0);
    }

    #[test]
    fn octant_path_matches_cube_descent() {
        let root = Cube::new(Vec3::new(0.5, 0.5, 0.5), 0.5);
        let p = Vec3::new(0.8, 0.2, 0.6);
        let key = key_in_cube(p, &root);
        let mut cube = root;
        for oct in octant_path(key, 8) {
            assert_eq!(
                oct,
                cube.octant_of(p),
                "octant path diverged at cube {cube:?}"
            );
            cube = cube.octant(oct);
            assert!(cube.contains(p));
        }
    }

    #[test]
    fn morton_order_groups_spatially() {
        // Points in the same child octant of the root sort adjacently before
        // any point of another octant: keys share the leading 3 bits.
        let root = Cube::new(Vec3::ZERO, 1.0);
        let a = key_in_cube(Vec3::new(-0.5, -0.5, -0.5), &root);
        let b = key_in_cube(Vec3::new(-0.4, -0.6, -0.3), &root);
        let c = key_in_cube(Vec3::new(0.5, 0.5, 0.5), &root);
        let top = |k: u64| k >> (3 * (MORTON_BITS - 1));
        assert_eq!(top(a), top(b));
        assert_ne!(top(a), top(c));
    }
}
