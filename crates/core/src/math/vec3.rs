//! Three-dimensional vector arithmetic used throughout the N-body application.

use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-D vector of `f64` components.
///
/// This is the workhorse numeric type of the whole library: body positions,
/// velocities, accelerations, and cell centers of mass are all `Vec3`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm. Cheaper than [`Vec3::norm`]; prefer it when a
    /// comparison against a squared threshold suffices (as in the Barnes-Hut
    /// opening criterion).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, rhs: Vec3) -> f64 {
        self.dist_sq(rhs).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// The largest of the three components.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// The smallest of the three components.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// `true` when every component is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        let c = Vec3::new(2.0, 3.0, 4.0);
        assert!((c.cross(c)).norm() < 1e-15);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(Vec3::ZERO.dist(v), 5.0);
        assert_eq!(v.dist_sq(Vec3::ZERO), 25.0);
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn summation() {
        let vs = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        ];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
