//! The position/velocity update phase (semi-implicit Euler, the symplectic
//! first-order integrator SPLASH-style N-body codes use between force
//! evaluations), plus the per-processor bounding-box computation consumed by
//! the next step's bounds reduction.

use crate::env::Env;
use crate::math::Aabb;
use crate::world::World;

/// Cycle cost charged per body update.
const UPDATE_CYCLES: u64 = 20;

/// Advance this processor's bodies by `dt` and publish its bounding box.
/// Caller barriers afterwards.
pub fn update_phase<E: Env>(env: &E, ctx: &mut E::Ctx, world: &World, proc: usize, dt: f64) {
    let (s, e) = world.zone(proc);
    let mut bbox = Aabb::EMPTY;
    for i in s..e {
        let b = world.order.load(env, ctx, i) as usize;
        let acc = world.acc.load(env, ctx, b);
        let vel = world.vel.load(env, ctx, b) + acc * dt;
        let pos = world.pos.load(env, ctx, b) + vel * dt;
        world.vel.store(env, ctx, b, vel);
        world.pos.store(env, ctx, b, pos);
        bbox.grow(pos);
        env.compute(ctx, UPDATE_CYCLES);
    }
    world.proc_bbox.store(env, ctx, proc, bbox);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;
    use crate::math::Vec3;
    use crate::model::Model;
    use crate::world::World;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bodies_move_under_constant_acceleration() {
        let env = NativeEnv::new(1);
        let bodies = Model::UniformSphere.generate(10, 1);
        let world = World::new(&env, &bodies);
        for i in 0..10 {
            world.acc.poke(i, Vec3::new(1.0, 0.0, 0.0));
            world.vel.poke(i, Vec3::ZERO);
        }
        let mut ctx = env.make_ctx(0);
        update_phase(&env, &mut ctx, &world, 0, 0.5);
        for i in 0..10 {
            // v = a dt = 0.5; x += v dt = 0.25.
            assert!((world.vel.peek(i).x - 0.5).abs() < 1e-15);
            assert!((world.pos.peek(i).x - (bodies[i].pos.x + 0.25)).abs() < 1e-15);
        }
    }

    #[test]
    fn bbox_covers_new_positions() {
        let env = NativeEnv::new(1);
        let bodies = Model::UniformSphere.generate(50, 2);
        let world = World::new(&env, &bodies);
        let mut ctx = env.make_ctx(0);
        update_phase(&env, &mut ctx, &world, 0, 0.1);
        let bbox = world.proc_bbox.peek(0);
        for i in 0..50 {
            assert!(bbox.contains(world.pos.peek(i)));
        }
    }
}
