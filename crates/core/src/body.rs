//! Body (particle) state.

use crate::math::{Aabb, Vec3};

/// A single body of the N-body system: the unit of work for tree building,
/// force computation and position update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    pub pos: Vec3,
    pub vel: Vec3,
    pub mass: f64,
}

impl Body {
    pub fn new(pos: Vec3, vel: Vec3, mass: f64) -> Self {
        Body { pos, vel, mass }
    }

    /// Kinetic energy `m v^2 / 2`.
    #[inline]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.vel.norm_sq()
    }
}

/// Bounding box of a set of bodies.
pub fn bounding_box(bodies: &[Body]) -> Aabb {
    Aabb::from_points(bodies.iter().map(|b| b.pos))
}

/// Total mass of a set of bodies.
pub fn total_mass(bodies: &[Body]) -> f64 {
    bodies.iter().map(|b| b.mass).sum()
}

/// Center of mass of a set of bodies (the origin for an empty set).
pub fn center_of_mass(bodies: &[Body]) -> Vec3 {
    let m = total_mass(bodies);
    if m == 0.0 {
        return Vec3::ZERO;
    }
    bodies.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / m
}

/// Total energy of the system under Plummer-softened gravity: kinetic plus
/// pairwise potential. O(n^2); used by tests and examples to check that the
/// integrator approximately conserves energy.
pub fn total_energy(bodies: &[Body], gravity: f64, softening: f64) -> f64 {
    let kinetic: f64 = bodies.iter().map(Body::kinetic_energy).sum();
    let eps2 = softening * softening;
    let mut potential = 0.0;
    for i in 0..bodies.len() {
        for j in (i + 1)..bodies.len() {
            let r = (bodies[i].pos.dist_sq(bodies[j].pos) + eps2).sqrt();
            potential -= gravity * bodies[i].mass * bodies[j].mass / r;
        }
    }
    kinetic + potential
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bodies() -> Vec<Body> {
        vec![
            Body::new(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 2.0),
            Body::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), 2.0),
        ]
    }

    #[test]
    fn center_of_mass_symmetric_pair() {
        let com = center_of_mass(&two_bodies());
        assert!(com.norm() < 1e-15);
    }

    #[test]
    fn center_of_mass_weighted() {
        let bodies = vec![
            Body::new(Vec3::new(0.0, 0.0, 0.0), Vec3::ZERO, 3.0),
            Body::new(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, 1.0),
        ];
        let com = center_of_mass(&bodies);
        assert!((com.x - 1.0).abs() < 1e-15);
    }

    #[test]
    fn empty_set_com_is_origin() {
        assert_eq!(center_of_mass(&[]), Vec3::ZERO);
    }

    #[test]
    fn energy_of_two_body_system() {
        let bodies = two_bodies();
        // KE = 2 * (0.5 * 2 * 1) = 2; PE = -G m1 m2 / r = -1*4/2 = -2 (no softening).
        let e = total_energy(&bodies, 1.0, 0.0);
        assert!((e - 0.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_of_bodies() {
        let bodies = two_bodies();
        let bb = bounding_box(&bodies);
        assert_eq!(bb.min.x, -1.0);
        assert_eq!(bb.max.x, 1.0);
    }
}
