//! Initial-condition generators for galaxy simulations.
//!
//! The paper's evaluation drives a 3-D Barnes-Hut *galaxy simulation*; the
//! standard initial condition for such studies (and the one shipped with the
//! SPLASH-2 `barnes` code the paper builds on) is the Plummer model. We also
//! provide a uniform sphere and a two-cluster collision, which exercise very
//! different tree shapes: the Plummer model produces a deep, strongly adaptive
//! tree; the uniform sphere a shallow balanced one; the collision model two
//! dense subtrees plus sparse surroundings.

use crate::body::Body;
use crate::math::Vec3;
use crate::rng::SmallRng;

/// Which initial body distribution to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Plummer (1911) stellar cluster model — the SPLASH-2 `barnes` default.
    Plummer,
    /// Bodies uniform in a unit sphere with small random velocities.
    UniformSphere,
    /// Two Plummer clusters on a collision course.
    TwoClusterCollision,
}

impl Model {
    /// Every generator, in documentation order.
    pub const ALL: [Model; 3] = [
        Model::Plummer,
        Model::UniformSphere,
        Model::TwoClusterCollision,
    ];

    /// Stable lower-case name (inverse of [`Model::parse`]); used by the
    /// job protocol and CLI diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Model::Plummer => "plummer",
            Model::UniformSphere => "uniform",
            Model::TwoClusterCollision => "collision",
        }
    }

    pub fn parse(s: &str) -> Option<Model> {
        match s.to_ascii_lowercase().as_str() {
            "plummer" => Some(Model::Plummer),
            "uniform" | "sphere" => Some(Model::UniformSphere),
            "collision" | "clusters" => Some(Model::TwoClusterCollision),
            _ => None,
        }
    }

    /// Generate `n` bodies with the given RNG seed. Deterministic for a
    /// given `(model, n, seed)` triple.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Body> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Model::Plummer => plummer(n, &mut rng, Vec3::ZERO, Vec3::ZERO, 1.0),
            Model::UniformSphere => uniform_sphere(n, &mut rng),
            Model::TwoClusterCollision => two_clusters(n, &mut rng),
        }
    }
}

/// Uniform random point in the unit ball.
fn unit_ball(rng: &mut SmallRng) -> Vec3 {
    loop {
        let p = Vec3::new(
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
        );
        if p.norm_sq() <= 1.0 {
            return p;
        }
    }
}

/// Uniform random direction.
fn unit_vector(rng: &mut SmallRng) -> Vec3 {
    loop {
        let p = unit_ball(rng);
        if let Some(u) = p.normalized() {
            return u;
        }
    }
}

/// The Plummer model in virial units (total mass 1, E = -1/4), following
/// Aarseth, Henon & Wielen (1974) — the same construction as SPLASH-2's
/// `testdata.C`.
fn plummer(
    n: usize,
    rng: &mut SmallRng,
    offset_pos: Vec3,
    offset_vel: Vec3,
    mass_scale: f64,
) -> Vec<Body> {
    assert!(n > 0, "cannot generate an empty Plummer model");
    let mut bodies = Vec::with_capacity(n);
    let rsc = 3.0 * std::f64::consts::PI / 16.0; // radius scale to virial units
    let vsc = (1.0 / rsc).sqrt();
    let mass = mass_scale / n as f64;
    for _ in 0..n {
        // Radius from the cumulative mass profile, rejecting the far tail so
        // the bounding cube stays finite and representative.
        let r = loop {
            let m: f64 = rng.gen_range(1e-8, 0.999);
            let r = (m.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            if r < 9.0 {
                break r;
            }
        };
        let pos = unit_vector(rng) * (r * rsc);

        // Velocity magnitude by von Neumann rejection from q^2 (1-q^2)^{7/2}.
        let q = loop {
            let x: f64 = rng.gen_range(0.0, 1.0);
            let y: f64 = rng.gen_range(0.0, 0.1);
            if y < x * x * (1.0 - x * x).powf(3.5) {
                break x;
            }
        };
        let speed = q * std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        let vel = unit_vector(rng) * (speed * vsc);

        bodies.push(Body::new(pos + offset_pos, vel + offset_vel, mass));
    }
    // Recenter so the center of mass is exactly at offset_pos with bulk
    // velocity offset_vel (removes sampling noise; standard practice).
    let com: Vec3 = bodies.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / mass_scale;
    let cov: Vec3 = bodies.iter().map(|b| b.vel * b.mass).sum::<Vec3>() / mass_scale;
    for b in &mut bodies {
        b.pos += offset_pos - com;
        b.vel += offset_vel - cov;
    }
    bodies
}

fn uniform_sphere(n: usize, rng: &mut SmallRng) -> Vec<Body> {
    let mass = 1.0 / n as f64;
    (0..n)
        .map(|_| Body::new(unit_ball(rng), unit_ball(rng) * 0.1, mass))
        .collect()
}

fn two_clusters(n: usize, rng: &mut SmallRng) -> Vec<Body> {
    let n1 = n / 2;
    let n2 = n - n1;
    let sep = Vec3::new(4.0, 0.3, 0.0);
    let approach = Vec3::new(-0.5, 0.0, 0.0);
    let mut bodies = plummer(n1.max(1), rng, sep, approach, 0.5);
    bodies.extend(plummer(n2.max(1), rng, -sep, -approach, 0.5));
    bodies.truncate(n);
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{bounding_box, center_of_mass, total_mass};

    #[test]
    fn plummer_mass_and_com() {
        let bodies = Model::Plummer.generate(2000, 42);
        assert_eq!(bodies.len(), 2000);
        assert!((total_mass(&bodies) - 1.0).abs() < 1e-9);
        assert!(center_of_mass(&bodies).norm() < 1e-9);
    }

    #[test]
    fn plummer_is_deterministic() {
        let a = Model::Plummer.generate(100, 7);
        let b = Model::Plummer.generate(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Model::Plummer.generate(100, 7);
        let b = Model::Plummer.generate(100, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn plummer_positions_bounded() {
        let bodies = Model::Plummer.generate(5000, 1);
        let bb = bounding_box(&bodies);
        // Rejection keeps r < 9 (virial units ~ r*rsc < 9*0.59 ≈ 5.3).
        assert!(bb.extent().max_component() < 12.0);
        for b in &bodies {
            assert!(b.pos.is_finite() && b.vel.is_finite());
            assert!(b.mass > 0.0);
        }
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        // More than half the bodies should lie within the inner quarter of
        // the maximum radius — the adaptive-tree property the paper relies on.
        let bodies = Model::Plummer.generate(4000, 3);
        let rmax = bodies.iter().map(|b| b.pos.norm()).fold(0.0, f64::max);
        let inner = bodies.iter().filter(|b| b.pos.norm() < rmax / 4.0).count();
        assert!(
            inner * 2 > bodies.len(),
            "inner {} of {}",
            inner,
            bodies.len()
        );
    }

    #[test]
    fn uniform_sphere_in_ball() {
        let bodies = Model::UniformSphere.generate(1000, 9);
        for b in &bodies {
            assert!(b.pos.norm_sq() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn two_clusters_are_separated() {
        let bodies = Model::TwoClusterCollision.generate(2000, 11);
        assert_eq!(bodies.len(), 2000);
        let left = bodies.iter().filter(|b| b.pos.x < 0.0).count();
        // Roughly half on each side of the yz-plane.
        assert!(left > 600 && left < 1400, "left = {left}");
    }

    #[test]
    fn names_round_trip_through_parse() {
        for m in Model::ALL {
            assert_eq!(Model::parse(m.name()), Some(m));
        }
        assert_eq!(Model::parse("PLUMMER"), Some(Model::Plummer));
        assert!(Model::parse("galaxy").is_none());
    }

    #[test]
    fn odd_body_counts_supported() {
        for n in [1usize, 3, 17, 1001] {
            for model in [
                Model::Plummer,
                Model::UniformSphere,
                Model::TwoClusterCollision,
            ] {
                assert_eq!(model.generate(n, 5).len(), n, "{model:?} n={n}");
            }
        }
    }
}
