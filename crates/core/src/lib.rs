//! # bh-core — parallel tree building for hierarchical N-body methods
//!
//! A from-scratch Rust reproduction of the system studied in:
//!
//! > Hongzhang Shan and Jaswinder Pal Singh, *Parallel Tree Building on a
//! > Range of Shared Address Space Multiprocessors: Algorithms and
//! > Application Performance*, IPPS 1998.
//!
//! This crate contains the complete 3-D Barnes-Hut galaxy simulation and the
//! paper's five parallel tree-building algorithms — ORIG, LOCAL, UPDATE,
//! PARTREE and the paper's new lock-free SPACE algorithm — plus a sixth,
//! MORTON, which sorts bodies by Morton key and emits the flat force tree
//! directly. All are written once, generic over the [`env::Env`]
//! shared-address-space abstraction. With
//! [`env::NativeEnv`] they run at full speed on host threads; with the
//! `ssmp` crate's simulation environments the same code "runs on" the four
//! platforms of the paper (SGI Challenge, SGI Origin 2000, Intel Paragon
//! under HLRC shared virtual memory, Wisconsin Typhoon-zero).
//!
//! ## Quick start
//!
//! ```
//! use bh_core::prelude::*;
//!
//! let bodies = Model::Plummer.generate(2_000, 42);
//! let env = NativeEnv::new(4);
//! let cfg = SimConfig::new(Algorithm::Space);
//! let stats = run_simulation(&env, &cfg, &bodies);
//! stats.assert_valid();
//! println!("tree build took {:.1}% of the step", 100.0 * stats.tree_fraction());
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithms;
pub mod app;
pub mod body;
pub mod check;
pub mod engine;
pub mod env;
pub mod force;
pub mod harness;
pub mod math;
pub mod model;
pub mod partition;
pub mod partition_orb;
pub mod pipeline;
pub mod rng;
pub mod sched;
pub mod seq_app;
pub mod shared;
pub mod sync;
pub mod trace;
pub mod tree;
pub mod update_phase;
pub mod world;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::algorithms::Algorithm;
    pub use crate::app::{
        percentile_f64, percentile_u64, run_simulation, run_simulation_with_state, RunStats,
        SimConfig,
    };
    pub use crate::body::Body;
    pub use crate::check::{CheckedEnv, Granularity, RaceReport};
    pub use crate::engine::SimEngine;
    pub use crate::env::{CtxStats, Env, NativeEnv, Phase, Placement, Region};
    pub use crate::force::ForceParams;
    pub use crate::harness::WorkerPool;
    pub use crate::math::{Aabb, Cube, Vec3};
    pub use crate::model::Model;
    pub use crate::shared::RegionMap;

    pub use crate::sched::{
        explore, verify_matrix, CounterExample, Exploration, ExplorePlan, Finding, MatrixCell,
        MatrixSpec, SchedConfig, SchedEnv, SchedStrategy, VerifyEnv,
    };
    pub use crate::trace::{StepPhaseRow, TraceEnv};
    pub use crate::tree::{SeqTree, SharedTree, TreeLayout};
    pub use crate::world::World;
}
