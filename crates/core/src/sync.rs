//! Workspace-local synchronization primitives.
//!
//! The offline build environment has no access to crates.io, so the crates
//! in this workspace use these thin wrappers over `std::sync` instead of
//! `parking_lot`:
//!
//! * [`Mutex`] — a poison-ignoring `std::sync::Mutex` with `parking_lot`'s
//!   ergonomics (`lock()` returns the guard directly, `const fn new`).
//! * [`RawLock`] — a lock whose `lock`/`unlock` calls need not be lexically
//!   scoped, for lock tables indexed by runtime ids (the `Env` lock/unlock
//!   contract). Built from `Mutex<bool>` + `Condvar`, so it is entirely safe
//!   code and any thread may release it.

use std::sync::Condvar;
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard;

/// Poison-ignoring mutex. A panic while holding the lock aborts the
/// experiment anyway (worker panics propagate through `spmd`), so poisoning
/// adds nothing here.
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A manually paired lock: `lock()` and `unlock()` are separate calls with
/// no guard object, matching the `Env::lock`/`Env::unlock` contract. The
/// caller must pair them; a double unlock panics.
pub struct RawLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl RawLock {
    pub const fn new() -> RawLock {
        RawLock {
            held: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Acquire without blocking; returns `false` if the lock is held.
    pub fn try_lock(&self) -> bool {
        let mut held = self.held.lock();
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    /// Acquire, blocking until available.
    pub fn lock(&self) {
        let mut held = self.held.lock();
        while *held {
            held = match self.cv.wait(held) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        *held = true;
    }

    /// Release. Panics if the lock is not held (unpaired unlock).
    pub fn unlock(&self) {
        let mut held = self.held.lock();
        assert!(*held, "RawLock::unlock without a matching lock");
        *held = false;
        drop(held);
        self.cv.notify_one();
    }
}

impl Default for RawLock {
    fn default() -> Self {
        RawLock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn mutex_ignores_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn raw_lock_excludes() {
        let lock = RawLock::new();
        let counter = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..5_000 {
                        lock.lock();
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock = RawLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    #[should_panic(expected = "without a matching lock")]
    fn unpaired_unlock_panics() {
        RawLock::new().unlock();
    }
}
