//! Workspace-local synchronization primitives.
//!
//! The offline build environment has no access to crates.io, so the crates
//! in this workspace use these thin wrappers over `std::sync` instead of
//! `parking_lot`:
//!
//! * [`Mutex`] — a poison-ignoring `std::sync::Mutex` with `parking_lot`'s
//!   ergonomics (`lock()` returns the guard directly, `const fn new`).
//! * [`RawLock`] — a lock whose `lock`/`unlock` calls need not be lexically
//!   scoped, for lock tables indexed by runtime ids (the `Env` lock/unlock
//!   contract). Built from `Mutex<bool>` + `Condvar`, so it is entirely safe
//!   code and any thread may release it.
//! * [`SenseBarrier`] — a reusable rendezvous barrier with an observable
//!   generation counter and a `reset()` for reconfiguring the party count,
//!   replacing `std::sync::Barrier` (which exposes neither).

use std::sync::Condvar;
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard;

/// Poison-ignoring mutex. A panic while holding the lock aborts the
/// experiment anyway (worker panics propagate through `spmd`), so poisoning
/// adds nothing here.
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A manually paired lock: `lock()` and `unlock()` are separate calls with
/// no guard object, matching the `Env::lock`/`Env::unlock` contract. The
/// caller must pair them; a double unlock panics.
pub struct RawLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl RawLock {
    pub const fn new() -> RawLock {
        RawLock {
            held: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Acquire without blocking; returns `false` if the lock is held.
    pub fn try_lock(&self) -> bool {
        let mut held = self.held.lock();
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    /// Acquire, blocking until available.
    pub fn lock(&self) {
        let mut held = self.held.lock();
        while *held {
            held = match self.cv.wait(held) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        *held = true;
    }

    /// Release. Panics if the lock is not held (unpaired unlock).
    pub fn unlock(&self) {
        let mut held = self.held.lock();
        assert!(*held, "RawLock::unlock without a matching lock");
        *held = false;
        drop(held);
        self.cv.notify_one();
    }
}

impl Default for RawLock {
    fn default() -> Self {
        RawLock::new()
    }
}

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
}

/// A reusable rendezvous barrier in the sense-reversal family: instead of a
/// flipping boolean sense, each episode is identified by a monotonically
/// increasing *generation* — a waiter records the generation at arrival and
/// sleeps until it changes, so a thread from episode `g` can never be
/// confused with one from `g+1` (the classic reuse hazard of counting
/// barriers). The generation is observable, which the scheduling and
/// divergence analyses in [`crate::sched`] rely on, and [`SenseBarrier::reset`]
/// reconfigures the party count between sessions without losing the
/// generation history.
pub struct SenseBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl SenseBarrier {
    pub fn new(parties: usize) -> SenseBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        SenseBarrier {
            state: Mutex::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of parties that must arrive to release one episode.
    pub fn parties(&self) -> usize {
        self.state.lock().parties
    }

    /// Number of completed episodes so far.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Block until all parties have arrived; returns the (1-based)
    /// generation this rendezvous completed.
    pub fn wait(&self) -> u64 {
        let mut s = self.state.lock();
        s.arrived += 1;
        if s.arrived == s.parties {
            s.arrived = 0;
            s.generation += 1;
            let g = s.generation;
            drop(s);
            self.cv.notify_all();
            g
        } else {
            let my_gen = s.generation;
            while s.generation == my_gen {
                s = match self.cv.wait(s) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            s.generation
        }
    }

    /// Reconfigure the barrier for a different party count. The generation
    /// counter is deliberately preserved: episodes keep their global numbering
    /// across sessions. Panics if any waiter is currently parked (resetting
    /// under them would strand or double-release the episode).
    pub fn reset(&self, parties: usize) {
        assert!(parties > 0, "barrier needs at least one party");
        let mut s = self.state.lock();
        assert!(
            s.arrived == 0,
            "SenseBarrier::reset with {} waiter(s) parked",
            s.arrived
        );
        s.parties = parties;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn mutex_ignores_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn raw_lock_excludes() {
        let lock = RawLock::new();
        let counter = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..5_000 {
                        lock.lock();
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock = RawLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    #[should_panic(expected = "without a matching lock")]
    fn unpaired_unlock_panics() {
        RawLock::new().unlock();
    }

    #[test]
    fn contended_lock_is_live() {
        // Liveness under contention: a holder that re-acquires in a tight
        // loop must not starve a single waiter forever. The waiter flips a
        // flag once it gets through; the holder loops until it sees it.
        let lock = std::sync::Arc::new(RawLock::new());
        let got_in = std::sync::Arc::new(AtomicU64::new(0));
        let l2 = lock.clone();
        let g2 = got_in.clone();
        let waiter = std::thread::spawn(move || {
            l2.lock();
            g2.store(1, Ordering::SeqCst);
            l2.unlock();
        });
        let mut spins = 0u64;
        while got_in.load(Ordering::SeqCst) == 0 {
            lock.lock();
            std::hint::spin_loop();
            lock.unlock();
            spins += 1;
            assert!(
                spins < 50_000_000,
                "waiter starved by a re-acquiring holder"
            );
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        waiter.join().unwrap();
    }

    #[test]
    fn sense_barrier_rendezvous_and_generations() {
        let barrier = SenseBarrier::new(4);
        let phase = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=3u64 {
                        phase.fetch_add(1, Ordering::SeqCst);
                        let gen = barrier.wait();
                        assert_eq!(gen, round, "episode numbering must be global");
                        // Everyone's pre-barrier increment is visible.
                        assert!(phase.load(Ordering::SeqCst) >= 4 * round);
                    }
                });
            }
        });
        assert_eq!(barrier.generation(), 3);
    }

    #[test]
    fn sense_barrier_generation_survives_reset() {
        // Generation reuse across reset(): a reconfigured barrier keeps the
        // global episode numbering, so a stale generation snapshot can never
        // match a post-reset episode.
        let barrier = SenseBarrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| barrier.wait());
            }
        });
        assert_eq!(barrier.generation(), 1);
        barrier.reset(3);
        assert_eq!(barrier.parties(), 3);
        assert_eq!(barrier.generation(), 1, "reset must not rewind generations");
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| assert_eq!(barrier.wait(), 2));
            }
        });
        assert_eq!(barrier.generation(), 2);
    }

    #[test]
    fn sense_barrier_single_party_never_blocks() {
        let barrier = SenseBarrier::new(1);
        for round in 1..=5 {
            assert_eq!(barrier.wait(), round);
        }
    }
}
