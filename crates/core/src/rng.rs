//! Workspace-local pseudo-random number generator.
//!
//! Replaces the `rand` crate (unavailable in the offline build environment)
//! for initial-condition generation and tests. The generator is SplitMix64:
//! a 64-bit state advanced by a Weyl increment and finalized with two
//! xor-shift-multiply rounds — statistically solid for simulation workloads
//! and deterministic for a given seed across platforms.

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seed the generator. Equal seeds yield equal sequences.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k samples is within a few sigma of 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let x = r.gen_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.gen_range_usize(10, 20);
            assert!((10..20).contains(&i));
        }
    }
}
