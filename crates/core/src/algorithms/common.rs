//! Machinery shared by the tree-building algorithms: the global bounds
//! reduction, root creation, locked and private (lock-free) body insertion,
//! and the parallel center-of-mass pass.

use crate::env::Env;
use crate::math::{Aabb, Cube, Vec3};
use crate::tree::types::{Leaf, NodeRef, SharedTree, MAX_DEPTH};
use crate::world::World;

/// Rough instruction cost (cycles) charged for routing one body one level
/// down the tree, beyond its memory accesses.
pub const DESCEND_CYCLES: u64 = 12;

/// Rough instruction cost of subdividing a leaf.
pub const SUBDIVIDE_CYCLES: u64 = 60;

/// Compute this processor's bounding box over its assigned bodies, publish
/// it, rendezvous, and return the global root cube (identical on every
/// processor). One barrier.
pub fn bounds_phase<E: Env>(env: &E, ctx: &mut E::Ctx, world: &World, proc: usize) -> Cube {
    let (s, e) = world.zone(proc);
    let mut bbox = Aabb::EMPTY;
    for i in s..e {
        let b = world.order.load(env, ctx, i) as usize;
        bbox.grow(world.pos.load(env, ctx, b));
    }
    world.proc_bbox.store(env, ctx, proc, bbox);
    env.barrier(ctx);
    let mut global = Aabb::EMPTY;
    for q in 0..env.num_procs() {
        global = global.merged(&world.proc_bbox.load(env, ctx, q));
    }
    if global.is_empty() {
        Cube::new(Vec3::ZERO, 1.0)
    } else {
        Cube::enclosing(&global)
    }
}

/// Processor 0 resets nothing here — callers reset arenas first — it
/// allocates the root cell for `cube` and publishes it. Must be followed by
/// a barrier before other processors start inserting.
pub fn create_root<E: Env>(env: &E, ctx: &mut E::Ctx, tree: &SharedTree, cube: Cube) -> NodeRef {
    let arena = tree.arena_of(0);
    let root = tree.alloc_cell(env, ctx, arena, 0);
    tree.update_cell(env, ctx, root, |c| {
        c.center = cube.center;
        c.half = cube.half;
        c.parent = NodeRef::NULL;
    });
    tree.root.store(env, ctx, 0, root);
    tree.root_cube.store(env, ctx, 0, cube);
    root
}

/// Insert `body` into the shared tree starting from `(cell, cube)`,
/// allocating from `arena` on behalf of processor `owner`. Cells are locked
/// only when actually modified, exactly as in the SPLASH codes: descent
/// through internal cells is lock-free, and a cell is locked to install a
/// leaf, grow a leaf, or subdivide it.
#[allow(clippy::too_many_arguments)]
pub fn insert_locked<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    arena: usize,
    owner: usize,
    body: u32,
    mut cell: NodeRef,
    mut cube: Cube,
) {
    let pos = world.pos.load(env, ctx, body as usize);
    let mut depth = 0;
    loop {
        assert!(
            depth < MAX_DEPTH,
            "tree depth limit exceeded: >k coincident bodies?"
        );
        env.compute(ctx, DESCEND_CYCLES);
        let oct = cube.octant_of(pos);
        // Optimistic lock-free descent through internal cells.
        let child = tree.child(env, ctx, cell, oct);
        if child.is_cell() {
            cell = child;
            cube = cube.octant(oct);
            depth += 1;
            continue;
        }
        // Empty slot or leaf: must lock the cell and re-examine.
        env.lock(ctx, cell.lock_id());
        let child = tree.child(env, ctx, cell, oct);
        if child.is_null() {
            let leaf = new_leaf(
                env,
                ctx,
                tree,
                arena,
                owner,
                cell,
                oct,
                cube.octant(oct),
                body,
            );
            tree.set_child(env, ctx, cell, oct, leaf);
            tree.pending_add(env, ctx, cell, 1);
            world.body_leaf.store(env, ctx, body as usize, leaf.0);
            env.unlock(ctx, cell.lock_id());
            return;
        }
        if child.is_cell() {
            // Another processor installed a cell while we were locking.
            env.unlock(ctx, cell.lock_id());
            cell = child;
            cube = cube.octant(oct);
            depth += 1;
            continue;
        }
        // Child is a leaf, guarded by the parent cell's lock.
        let leaf = child;
        let l = tree.load_leaf(env, ctx, leaf);
        if (l.n as usize) < tree.k {
            tree.update_leaf(env, ctx, leaf, |l| {
                l.bodies[l.n as usize] = body;
                l.n += 1;
            });
            world.body_leaf.store(env, ctx, body as usize, leaf.0);
            env.unlock(ctx, cell.lock_id());
            return;
        }
        // Full: subdivide. The replacement cell is built privately (it is
        // not yet visible to any other processor) and then published with a
        // single child-slot store, all while holding the parent's lock.
        // `body_leaf` forwarding pointers are deferred and flushed only
        // after publication: flushing them mid-build would let the UPDATE
        // move phase discover a half-built leaf through `body_leaf` +
        // `leaf_parent` and read it under the (unheld) sub-cell lock.
        env.compute(ctx, SUBDIVIDE_CYCLES);
        let sub_cube = cube.octant(oct);
        let sub = new_cell(env, ctx, tree, arena, owner, cell, oct, sub_cube);
        let mut fwd = Vec::with_capacity(l.n as usize + 1);
        for &b in l.body_slice() {
            insert_private(
                env,
                ctx,
                tree,
                world,
                arena,
                owner,
                b,
                sub,
                sub_cube,
                depth + 1,
                &mut fwd,
            );
        }
        insert_private(
            env,
            ctx,
            tree,
            world,
            arena,
            owner,
            body,
            sub,
            sub_cube,
            depth + 1,
            &mut fwd,
        );
        retire_leaf(env, ctx, tree, leaf);
        tree.set_child(env, ctx, cell, oct, sub);
        flush_forwards(env, ctx, world, &mut fwd);
        env.unlock(ctx, cell.lock_id());
        return;
    }
}

/// Insert `body` into a subtree that is private to the calling processor
/// (unpublished, or wholly owned by partition) — no locking. Used by the
/// subdivision path above, by PARTREE's local-tree construction, and by
/// SPACE's subspace subtrees.
///
/// `body_leaf` forwarding updates are NOT stored here: they are pushed onto
/// `fwd` (last entry for a body wins) and must be flushed by the caller via
/// [`flush_forwards`] once the subtree is reachable — storing them while
/// the subtree is still being built would leak not-yet-consistent leaves to
/// the UPDATE algorithm's concurrent move phase.
#[allow(clippy::too_many_arguments)]
pub fn insert_private<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    arena: usize,
    owner: usize,
    body: u32,
    mut cell: NodeRef,
    mut cube: Cube,
    mut depth: usize,
    fwd: &mut Vec<(u32, NodeRef)>,
) {
    let pos = world.pos.load(env, ctx, body as usize);
    loop {
        assert!(
            depth < MAX_DEPTH,
            "tree depth limit exceeded: >k coincident bodies?"
        );
        env.compute(ctx, DESCEND_CYCLES);
        let oct = cube.octant_of(pos);
        let child = tree.child(env, ctx, cell, oct);
        if child.is_null() {
            let leaf = new_leaf(
                env,
                ctx,
                tree,
                arena,
                owner,
                cell,
                oct,
                cube.octant(oct),
                body,
            );
            tree.set_child(env, ctx, cell, oct, leaf);
            tree.pending_add(env, ctx, cell, 1);
            if crate::sched::mutation::early_forward_flush() {
                // Fault injection (see crate::sched::mutation): publish the
                // forwarding pointer immediately, re-creating the
                // publication-order bug this deferral exists to prevent.
                crate::sched::mutation::note_injection();
                world.body_leaf.store(env, ctx, body as usize, leaf.0);
            } else {
                fwd.push((body, leaf));
            }
            return;
        }
        if child.is_cell() {
            cell = child;
            cube = cube.octant(oct);
            depth += 1;
            continue;
        }
        let leaf = child;
        let l = tree.load_leaf(env, ctx, leaf);
        if (l.n as usize) < tree.k {
            tree.update_leaf(env, ctx, leaf, |l| {
                l.bodies[l.n as usize] = body;
                l.n += 1;
            });
            if crate::sched::mutation::early_forward_flush() {
                crate::sched::mutation::note_injection();
                world.body_leaf.store(env, ctx, body as usize, leaf.0);
            } else {
                fwd.push((body, leaf));
            }
            return;
        }
        env.compute(ctx, SUBDIVIDE_CYCLES);
        let sub_cube = cube.octant(oct);
        let sub = new_cell(env, ctx, tree, arena, owner, cell, oct, sub_cube);
        for &b in l.body_slice() {
            insert_private(
                env,
                ctx,
                tree,
                world,
                arena,
                owner,
                b,
                sub,
                sub_cube,
                depth + 1,
                fwd,
            );
        }
        retire_leaf(env, ctx, tree, leaf);
        tree.set_child(env, ctx, cell, oct, sub);
        // Continue inserting the triggering body below the new cell.
        cell = sub;
        cube = sub_cube;
        depth += 1;
    }
}

/// Allocate and initialize a new cell under `parent`.
#[allow(clippy::too_many_arguments)]
pub fn new_cell<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    arena: usize,
    owner: usize,
    parent: NodeRef,
    oct: usize,
    cube: Cube,
) -> NodeRef {
    let cell = tree.alloc_cell(env, ctx, arena, owner);
    tree.update_cell(env, ctx, cell, |c| {
        c.parent = parent;
        c.octant_in_parent = oct as u8;
        c.center = cube.center;
        c.half = cube.half;
    });
    cell
}

/// Allocate and initialize a new single-body leaf under `parent`.
#[allow(clippy::too_many_arguments)]
fn new_leaf<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    arena: usize,
    owner: usize,
    parent: NodeRef,
    oct: usize,
    cube: Cube,
    body: u32,
) -> NodeRef {
    let leaf = tree.alloc_leaf(env, ctx, arena, owner);
    tree.update_leaf(env, ctx, leaf, |l| {
        l.parent = parent;
        l.octant_in_parent = oct as u8;
        l.center = cube.center;
        l.half = cube.half;
        l.bodies[0] = body;
        l.n = 1;
    });
    tree.set_leaf_parent(env, ctx, leaf, parent);
    tree.set_leaf_bounds(env, ctx, leaf, cube);
    leaf
}

/// Flush deferred `body_leaf` forwarding updates collected by
/// [`insert_private`], in push order (so the last placement of a body —
/// after any intermediate private subdivisions — wins).
pub fn flush_forwards<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    world: &World,
    fwd: &mut Vec<(u32, NodeRef)>,
) {
    for (body, leaf) in fwd.drain(..) {
        world.body_leaf.store(env, ctx, body as usize, leaf.0);
    }
}

/// Mark a subdivided-away leaf dead (no recycling, no lock).
fn retire_leaf<E: Env>(env: &E, ctx: &mut E::Ctx, tree: &SharedTree, leaf: NodeRef) {
    tree.retire_leaf(env, ctx, leaf);
}

/// The parallel center-of-mass pass ("hackcofm"): each processor summarizes
/// the leaves it created, then propagates completion upward; the processor
/// that completes a cell's last child summarizes that cell and continues
/// toward the root. Runs between two barriers; uses the per-cell pending
/// counters, which it leaves restored to the cell's child count.
pub fn com_pass<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    step: u32,
) {
    let len = tree.leaf_list_len[proc].load(env, ctx, 0) as usize;
    for i in 0..len {
        let leaf = NodeRef(tree.leaf_lists[proc].load(env, ctx, i));
        // Unordered read: a stale list entry may point at a leaf another
        // processor re-listed and is concurrently summarizing (UPDATE). The
        // guard below rejects exactly those entries; for entries that pass,
        // this processor is the unique summarizer, so the record is stable.
        let l = tree.load_leaf_relaxed(env, ctx, leaf);
        if !l.in_use || l.listed_by != proc as u8 || l.com_stamp == step {
            continue;
        }
        summarize_leaf(env, ctx, tree, world, leaf, &l, step);
        propagate_com(env, ctx, tree, l.parent, step);
    }
}

/// Summarize one leaf from its bodies.
pub fn summarize_leaf<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    leaf: NodeRef,
    l: &Leaf,
    step: u32,
) {
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    let mut cost = 0u64;
    for &b in l.body_slice() {
        let b = b as usize;
        let m = world.mass.load(env, ctx, b);
        mass += m;
        weighted += world.pos.load(env, ctx, b) * m;
        cost += world.cost.load(env, ctx, b) as u64;
    }
    env.compute(ctx, 8 * l.n as u64);
    tree.update_leaf(env, ctx, leaf, |out| {
        out.mass = mass;
        out.com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        out.cost = cost;
        out.com_stamp = step;
    });
}

/// Propagate CoM completion upward from a completed child of `cell`.
pub fn propagate_com<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    mut cell: NodeRef,
    step: u32,
) {
    while !cell.is_null() {
        if tree.pending_sub(env, ctx, cell, 1) != 1 {
            // Other children still incomplete; their finisher will continue.
            return;
        }
        let parent = summarize_cell(env, ctx, tree, cell, step);
        cell = parent;
    }
}

/// Summarize a cell whose children are all complete; restores its pending
/// counter to the child count and returns its parent.
pub fn summarize_cell<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    cell: NodeRef,
    _step: u32,
) -> NodeRef {
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    let mut cost = 0u64;
    let mut count = 0u32;
    let mut nchild = 0u32;
    for ch in tree.children(env, ctx, cell) {
        if ch.is_null() {
            continue;
        }
        nchild += 1;
        let (m, com, c, n) = if ch.is_cell() {
            let cc = tree.load_cell(env, ctx, ch);
            (cc.mass, cc.com, cc.cost, cc.count)
        } else {
            let ll = tree.load_leaf(env, ctx, ch);
            (ll.mass, ll.com, ll.cost, ll.n)
        };
        mass += m;
        weighted += com * m;
        cost += c;
        count += n;
    }
    env.compute(ctx, 40);
    let parent = tree.update_cell(env, ctx, cell, |c| {
        c.mass = mass;
        c.com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        c.cost = cost;
        c.count = count;
        c.parent
    });
    tree.pending_store(env, ctx, cell, nchild);
    parent
}
