//! The SPACE tree-building algorithm — the paper's new contribution (§2.5).
//!
//! Instead of inserting the bodies a processor owns for force calculation,
//! the *space* itself is re-partitioned for tree building: the domain is
//! recursively subdivided (counting bodies per octant each round) until every
//! subspace holds at most `threshold` bodies; the resulting subspaces are
//! assigned to processors; and each processor builds complete subtrees for
//! its subspaces, attaching them to the (partially constructed) upper tree
//! without any locking — two bodies assigned to different processors can
//! never meet in the same cell. The cost is extra communication and some
//! load imbalance (a processor's tree-build bodies are not its
//! force-calculation bodies), which the paper shows is a spectacular bargain
//! on SVM platforms.

use crate::algorithms::common::{self, create_root, insert_private, new_cell};
use crate::env::Env;
use crate::math::Cube;
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::{World, FRONTIER_CAP, SUBSPACE_BIT, SUBSPACE_CAP};

/// Routing marker: octant contained no bodies.
const DEAD: u32 = u32::MAX;

/// Default subdivision threshold: aim for a few dozen subspaces per
/// processor so the greedy assignment balances well, but never below the
/// leaf threshold (a subspace smaller than a leaf is pointless).
pub fn default_threshold(n: usize, p: usize, k: usize) -> usize {
    (n / (16 * p).max(1)).max(4 * k).max(1)
}

/// Tree-build phase of SPACE for one processor.
pub fn build<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    cube: Cube,
    threshold: usize,
) {
    let p = env.num_procs();
    tree.reset_for_rebuild(env, ctx, proc);
    env.barrier(ctx);
    if proc == 0 {
        let root = create_root(env, ctx, tree, cube);
        world.sp_frontier.store(env, ctx, 0, root.0);
        world.sp_frontier_len.store(env, ctx, 0, 1);
        world.sp_nsub.store(env, ctx, 0, 0);
    }
    env.barrier(ctx);

    // ---- Phase 1: iterative spatial refinement ("the partitioning tree").
    let (s, e) = world.zone(proc);
    let mut round = 0u32;
    loop {
        let flen = world.sp_frontier_len.load(env, ctx, 0) as usize;
        // Clear this processor's count row for the active frontier.
        for key in 0..flen * 8 {
            world.sp_counts[proc].store(env, ctx, key, 0);
        }
        // Settle previously routed bodies and count the unsettled ones.
        // Routing state lives in this processor's local scratch, indexed by
        // zone position.
        for i in s..e {
            let b = world.order.load(env, ctx, i) as usize;
            let key = world.sp_body_slot[proc].load(env, ctx, i - s);
            // Settled markers from a previous *step* are stale: only honor
            // them after round 0 has re-keyed every body.
            if round > 0 && key & SUBSPACE_BIT != 0 {
                continue; // already settled in a final subspace
            }
            let slot = if round == 0 {
                0
            } else {
                let routed = world.sp_route.load(env, ctx, key as usize);
                debug_assert_ne!(routed, DEAD, "body routed into an empty octant");
                if routed & SUBSPACE_BIT != 0 {
                    world.sp_body_slot[proc].store(env, ctx, i - s, routed);
                    continue;
                }
                routed as usize
            };
            let cell = NodeRef(world.sp_frontier.load(env, ctx, slot));
            let c = tree.load_cell(env, ctx, cell);
            let oct = c.cube().octant_of(world.pos.load(env, ctx, b));
            let key = (slot * 8 + oct) as u32;
            world.sp_counts[proc].fetch_add(env, ctx, key as usize, 1);
            world.sp_body_slot[proc].store(env, ctx, i - s, key);
            env.compute(ctx, 10);
        }
        env.barrier(ctx);
        if flen == 0 {
            break;
        }
        // Processor 0 subdivides over-threshold octants and routes the rest.
        if proc == 0 {
            subdivide_round(env, ctx, tree, world, flen, threshold, p);
        }
        env.barrier(ctx);
        round += 1;
    }

    // ---- Phase 2: subspace assignment (computed identically everywhere).
    let nsub = world.sp_nsub.load(env, ctx, 0) as usize;
    let mut subs: Vec<(u32, u32)> = (0..nsub)
        .map(|id| (world.sp_subspaces.load(env, ctx, id).count, id as u32))
        .collect();
    // Greedy longest-processing-time: biggest subspaces first, each to the
    // least-loaded processor; deterministic tie-breaking.
    subs.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; p];
    let mut owner = vec![0u8; nsub];
    #[allow(clippy::needless_range_loop)]
    for &(count, id) in &subs {
        let q = (0..p).min_by_key(|&q| (load[q], q)).unwrap();
        load[q] += count as u64;
        owner[id as usize] = q as u8;
        env.compute(ctx, 8);
    }

    // ---- Phase 3: bucket my bodies by final subspace.
    let mut hist = vec![0u32; nsub + 1];
    for i in s..e {
        let key = world.sp_body_slot[proc].load(env, ctx, i - s);
        debug_assert_ne!(key & SUBSPACE_BIT, 0, "body not settled after refinement");
        hist[(key & !SUBSPACE_BIT) as usize] += 1;
        env.compute(ctx, 4);
    }
    let mut offsets = vec![0u32; nsub + 1];
    let mut acc = 0u32;
    for id in 0..nsub {
        offsets[id] = acc;
        acc += hist[id];
    }
    offsets[nsub] = acc;
    for (id, &off) in offsets.iter().enumerate() {
        world.sp_bucket_off[proc].store(env, ctx, id, off);
    }
    let mut cursor = offsets.clone();
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let key = world.sp_body_slot[proc].load(env, ctx, i - s);
        let id = (key & !SUBSPACE_BIT) as usize;
        world.sp_bucket[proc].store(env, ctx, cursor[id] as usize, b);
        cursor[id] += 1;
    }
    env.barrier(ctx);

    // ---- Phase 4: build one subtree per owned subspace, attach lock-free.
    let arena = tree.arena_of(proc);
    #[allow(clippy::needless_range_loop)] // `id` also indexes shared arrays
    for id in 0..nsub {
        if owner[id] != proc as u8 {
            continue;
        }
        let sub = world.sp_subspaces.load(env, ctx, id);
        let sub_cube = sub.cube();
        // Gather the subspace's bodies from every processor's bucket — this
        // is where SPACE pays in communication and locality.
        let mut members = Vec::with_capacity(sub.count as usize);
        for q in 0..p {
            let lo = world.sp_bucket_off[q].load(env, ctx, id) as usize;
            let hi = world.sp_bucket_off[q].load(env, ctx, id + 1) as usize;
            for j in lo..hi {
                members.push(world.sp_bucket[q].load(env, ctx, j));
            }
        }
        debug_assert_eq!(members.len(), sub.count as usize);
        if members.is_empty() {
            continue;
        }
        let node = if members.len() <= tree.k {
            // Small subspace: a single leaf.
            let leaf = tree.alloc_leaf(env, ctx, arena, proc);
            tree.update_leaf(env, ctx, leaf, |l| {
                l.parent = sub.parent;
                l.octant_in_parent = sub.oct;
                l.center = sub_cube.center;
                l.half = sub_cube.half;
                l.n = members.len() as u32;
                for (i, &b) in members.iter().enumerate() {
                    l.bodies[i] = b;
                }
            });
            tree.set_leaf_parent(env, ctx, leaf, sub.parent);
            tree.set_leaf_bounds(env, ctx, leaf, sub_cube);
            for &b in &members {
                world.body_leaf.store(env, ctx, b as usize, leaf.0);
            }
            leaf
        } else {
            let cell = new_cell(
                env,
                ctx,
                tree,
                arena,
                proc,
                sub.parent,
                sub.oct as usize,
                sub_cube,
            );
            let mut fwd = Vec::with_capacity(members.len());
            for &b in &members {
                insert_private(
                    env, ctx, tree, world, arena, proc, b, cell, sub_cube, 0, &mut fwd,
                );
            }
            common::flush_forwards(env, ctx, world, &mut fwd);
            cell
        };
        // Attach: no lock needed — exactly one processor writes this slot.
        tree.set_child(env, ctx, sub.parent, sub.oct as usize, node);
        tree.pending_add(env, ctx, sub.parent, 1);
    }
}

/// Processor 0's per-round work: read the reduced counts, create upper-tree
/// cells for over-threshold octants, emit final subspaces for the rest, and
/// publish the routing table and next frontier.
fn subdivide_round<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    flen: usize,
    threshold: usize,
    p: usize,
) {
    let arena = tree.arena_of(0);
    let mut new_frontier: Vec<u32> = Vec::new();
    for slot in 0..flen {
        let cell = NodeRef(world.sp_frontier.load(env, ctx, slot));
        let c = tree.load_cell(env, ctx, cell);
        for oct in 0..8 {
            let key = slot * 8 + oct;
            let mut total = 0u32;
            for q in 0..p {
                total += world.sp_counts[q].load(env, ctx, key);
            }
            let route = if total == 0 {
                DEAD
            } else if total as usize > threshold {
                let child = new_cell(env, ctx, tree, arena, 0, cell, oct, c.cube().octant(oct));
                tree.set_child(env, ctx, cell, oct, child);
                tree.pending_add(env, ctx, cell, 1);
                let new_slot = new_frontier.len() as u32;
                assert!(
                    (new_slot as usize) < FRONTIER_CAP,
                    "SPACE frontier overflow; raise the threshold"
                );
                new_frontier.push(child.0);
                new_slot
            } else {
                let id = world.sp_nsub.fetch_add(env, ctx, 0, 1);
                assert!(
                    (id as usize) < SUBSPACE_CAP,
                    "SPACE subspace overflow; raise the threshold"
                );
                let oc = c.cube().octant(oct);
                world.sp_subspaces.store(
                    env,
                    ctx,
                    id as usize,
                    crate::world::Subspace {
                        parent: cell,
                        oct: oct as u8,
                        count: total,
                        center: oc.center,
                        half: oc.half,
                    },
                );
                SUBSPACE_BIT | id
            };
            world.sp_route.store(env, ctx, key, route);
        }
    }
    for (i, &f) in new_frontier.iter().enumerate() {
        world.sp_frontier.store(env, ctx, i, f);
    }
    world
        .sp_frontier_len
        .store(env, ctx, 0, new_frontier.len() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::{bounds_phase, com_pass};
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::tree::validate;
    use crate::tree::{SeqTree, SharedTree, TreeLayout};
    use crate::world::World;

    fn run(
        n: usize,
        p: usize,
        k: usize,
        model: Model,
        threshold: usize,
    ) -> (NativeEnv, SharedTree, World, Vec<crate::body::Body>, u64) {
        let env = NativeEnv::new(p);
        let bodies = model.generate(n, 55);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, k, TreeLayout::PerProcessor);
        let mut locks = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|proc| {
                    let (env, world, tree) = (&env, &world, &tree);
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(proc);
                        let cube = bounds_phase(env, &mut ctx, world, proc);
                        build(env, &mut ctx, tree, world, proc, cube, threshold);
                        env.barrier(&mut ctx);
                        com_pass(env, &mut ctx, tree, world, proc, 0);
                        env.barrier(&mut ctx);
                        env.stats(&ctx).lock_acquires
                    })
                })
                .collect();
            for h in handles {
                locks += h.join().unwrap();
            }
        });
        (env, tree, world, bodies, locks)
    }

    fn check(n: usize, p: usize, k: usize, model: Model, threshold: usize) -> u64 {
        let (_env, tree, world, bodies, locks) = run(n, p, k, model, threshold);
        validate::validate(&tree, &world.positions(), &world.masses(), true).unwrap_or_else(|e| {
            panic!("invalid SPACE tree (n={n} p={p} k={k} t={threshold}): {e}")
        });
        let reference = SeqTree::build(&bodies, k);
        validate::matches_reference(&tree, &reference).unwrap_or_else(|e| {
            panic!("SPACE structure mismatch (n={n} p={p} k={k} t={threshold}): {e}")
        });
        locks
    }

    #[test]
    fn matches_reference_single_proc() {
        check(600, 1, 8, Model::Plummer, 64);
    }

    #[test]
    fn matches_reference_parallel() {
        check(3000, 4, 8, Model::Plummer, default_threshold(3000, 4, 8));
    }

    #[test]
    fn matches_reference_k1() {
        check(800, 4, 1, Model::Plummer, 32);
    }

    #[test]
    fn matches_reference_clusters() {
        check(
            2000,
            8,
            4,
            Model::TwoClusterCollision,
            default_threshold(2000, 8, 4),
        );
    }

    #[test]
    fn threshold_larger_than_n() {
        // Everything fits in the root's eight octants.
        check(50, 4, 4, Model::UniformSphere, 1000);
    }

    #[test]
    fn tiny_inputs() {
        for n in [1usize, 2, 9] {
            check(n, 4, 2, Model::UniformSphere, 8);
        }
    }

    #[test]
    fn tree_build_is_lock_free() {
        // The defining property: zero lock acquisitions in the build phase
        // (the whole point of the algorithm on SVM platforms).
        let locks = check(2000, 4, 8, Model::Plummer, default_threshold(2000, 4, 8));
        assert_eq!(locks, 0, "SPACE must not lock; saw {locks} acquisitions");
    }

    #[test]
    fn default_threshold_sane() {
        assert!(default_threshold(0, 16, 8) >= 1);
        assert!(default_threshold(1 << 20, 16, 8) > 1000);
        assert!(default_threshold(100, 1, 1) >= 4);
    }
}
