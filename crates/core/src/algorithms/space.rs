//! The SPACE tree-building algorithm — the paper's new contribution (§2.5).
//!
//! Instead of inserting the bodies a processor owns for force calculation,
//! the *space* itself is re-partitioned for tree building: the domain is
//! recursively subdivided (counting bodies per octant each round) until every
//! subspace holds at most `threshold` bodies; the resulting subspaces are
//! assigned to processors; and each processor builds complete subtrees for
//! its subspaces, attaching them to the (partially constructed) upper tree
//! without any locking — two bodies assigned to different processors can
//! never meet in the same cell. The cost is extra communication and some
//! load imbalance (a processor's tree-build bodies are not its
//! force-calculation bodies), which the paper shows is a spectacular bargain
//! on SVM platforms.

use crate::algorithms::common::{self, create_root, insert_private, new_cell};
use crate::env::Env;
use crate::math::Cube;
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::{World, FRONTIER_CAP, SUBSPACE_BIT, SUBSPACE_CAP};

/// Routing marker: octant contained no bodies.
const DEAD: u32 = u32::MAX;

/// Default subdivision threshold: aim for a few dozen subspaces per
/// processor so the greedy assignment balances well, but never below the
/// leaf threshold (a subspace smaller than a leaf is pointless).
pub fn default_threshold(n: usize, p: usize, k: usize) -> usize {
    (n / (16 * p).max(1)).max(4 * k).max(1)
}

/// Default cost-rebalance factor (see [`build`]'s `rebalance` parameter).
pub const DEFAULT_REBALANCE: f64 = 0.25;

/// Tree-build phase of SPACE for one processor.
///
/// `rebalance` is the cost-rebalance factor: a would-be-final subspace
/// whose summed body cost exceeds `rebalance * total_cost / P` (and which
/// still holds more than `k` bodies, so the reference structure is
/// preserved) is refined one extra round instead, splitting the hot spot so
/// the greedy assignment can spread it. `0.0` disables the refinement.
#[allow(clippy::too_many_arguments)]
pub fn build<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    cube: Cube,
    threshold: usize,
    rebalance: f64,
) {
    let p = env.num_procs();
    tree.reset_for_rebuild(env, ctx, proc);
    env.barrier(ctx);
    if proc == 0 {
        let root = create_root(env, ctx, tree, cube);
        world.sp_frontier[0].store(env, ctx, 0, root.0);
    }
    env.barrier(ctx);

    // ---- Phase 1: iterative spatial refinement ("the partitioning tree").
    let (s, e) = world.zone(proc);
    // Body costs are per-step constants; read each once (round 0) and keep
    // them in processor-private scratch for the later rounds.
    let mut zone_cost: Vec<u32> = vec![0; e - s];
    // Frontier geometry, routing, and the subspace count are identical on
    // every processor and fully determined by the shared reduced totals, so
    // they live in processor-private memory: cubes derive from the root by
    // pure octant subdivision, and each processor recomputes the same
    // routing decisions. Only the frontier cell refs (allocated by whichever
    // processor materializes each cell) need shared publication.
    let mut frontier_cubes: Vec<Cube> = vec![cube];
    let mut frontier_deep: Vec<bool> = vec![false];
    let mut route: Vec<u32> = Vec::new();
    let mut nsub = 0u32;
    let mut round = 0u32;
    // Cost ceiling for the rebalance refinement, set from the round-0
    // reduction (the root octant costs sum to the total).
    let mut cost_limit = u64::MAX;
    loop {
        let flen = frontier_cubes.len();
        let keys = flen * 8;
        // Settle previously routed bodies and count the unsettled ones.
        // Counts and costs accumulate in processor-private scratch (an
        // atomic RMW per body per round is the expensive pattern the paper's
        // platforms punish hardest); the whole row is published with plain
        // stores once per round, ordered by the barrier below.
        let mut cnt = vec![0u32; keys];
        let mut cst = vec![0u64; keys];
        for i in s..e {
            let b = world.order.load(env, ctx, i) as usize;
            if round == 0 {
                zone_cost[i - s] = world.cost.load(env, ctx, b);
            }
            let key = world.sp_body_slot[proc].load(env, ctx, i - s);
            // Settled markers from a previous *step* are stale: only honor
            // them after round 0 has re-keyed every body.
            if round > 0 && key & SUBSPACE_BIT != 0 {
                continue; // already settled in a final subspace
            }
            let slot = if round == 0 {
                0
            } else {
                let routed = route[key as usize];
                debug_assert_ne!(routed, DEAD, "body routed into an empty octant");
                if routed & SUBSPACE_BIT != 0 {
                    world.sp_body_slot[proc].store(env, ctx, i - s, routed);
                    continue;
                }
                routed as usize
            };
            let oct = frontier_cubes[slot].octant_of(world.pos.load(env, ctx, b));
            let key = slot * 8 + oct;
            cnt[key] += 1;
            cst[key] += zone_cost[i - s].max(1) as u64;
            world.sp_body_slot[proc].store(env, ctx, i - s, key as u32);
            env.compute(ctx, 10);
        }
        if flen == 0 {
            break;
        }
        // Publish this processor's rows for the reduction.
        for key in 0..keys {
            world.sp_counts[proc].store(env, ctx, key, cnt[key]);
            world.sp_costs[proc].store(env, ctx, key, cst[key]);
        }
        env.barrier(ctx);
        // Cooperative reduction: each processor sums all rows for a
        // contiguous chunk of the key space into the shared totals.
        for key in keys * proc / p..keys * (proc + 1) / p {
            let mut total = 0u32;
            let mut cost = 0u64;
            for q in 0..p {
                total += world.sp_counts[q].load(env, ctx, key);
                cost += world.sp_costs[q].load(env, ctx, key);
            }
            world.sp_total_counts.store(env, ctx, key, total);
            world.sp_total_costs.store(env, ctx, key, cost);
            env.compute(ctx, 4);
        }
        env.barrier(ctx);
        if round == 0 && rebalance > 0.0 {
            // The root's octant costs sum to the whole step's cost; every
            // processor derives the same ceiling from the shared totals.
            let total_cost: u64 = (0..keys)
                .map(|key| world.sp_total_costs.load(env, ctx, key))
                .sum();
            cost_limit = (rebalance * total_cost as f64 / p as f64).max(1.0) as u64;
        }
        let (nc, nd) = subdivide_round(
            env,
            ctx,
            tree,
            world,
            proc,
            (round % 2) as usize,
            &frontier_cubes,
            &frontier_deep,
            threshold,
            cost_limit,
            &mut route,
            &mut nsub,
        );
        frontier_cubes = nc;
        frontier_deep = nd;
        env.barrier(ctx);
        round += 1;
    }
    if proc == 0 {
        // Observability only: the phases below use the private count.
        world.sp_nsub.store(env, ctx, 0, nsub);
    }

    // ---- Phase 2: cost-weighted subspace assignment (computed identically
    // everywhere, from the private subspace count).
    let nsub = nsub as usize;
    let mut subs: Vec<(u64, u32)> = (0..nsub)
        .map(|id| (world.sp_subspaces.load(env, ctx, id).cost, id as u32))
        .collect();
    // Greedy longest-processing-time on last step's interaction costs (the
    // same signal costzones balances on): costliest subspaces first, each
    // to the least-loaded processor; deterministic tie-breaking.
    subs.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; p];
    let mut owner = vec![0u8; nsub];
    #[allow(clippy::needless_range_loop)]
    for &(cost, id) in &subs {
        let q = (0..p).min_by_key(|&q| (load[q], q)).unwrap();
        load[q] += cost;
        owner[id as usize] = q as u8;
        env.compute(ctx, 8);
    }

    // ---- Phase 3: bucket my bodies by final subspace.
    let mut hist = vec![0u32; nsub + 1];
    for i in s..e {
        let key = world.sp_body_slot[proc].load(env, ctx, i - s);
        debug_assert_ne!(key & SUBSPACE_BIT, 0, "body not settled after refinement");
        hist[(key & !SUBSPACE_BIT) as usize] += 1;
        env.compute(ctx, 4);
    }
    let mut offsets = vec![0u32; nsub + 1];
    let mut acc = 0u32;
    for id in 0..nsub {
        offsets[id] = acc;
        acc += hist[id];
    }
    offsets[nsub] = acc;
    for (id, &off) in offsets.iter().enumerate() {
        world.sp_bucket_off[proc].store(env, ctx, id, off);
    }
    let mut cursor = offsets.clone();
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let key = world.sp_body_slot[proc].load(env, ctx, i - s);
        let id = (key & !SUBSPACE_BIT) as usize;
        world.sp_bucket[proc].store(env, ctx, cursor[id] as usize, b);
        cursor[id] += 1;
    }
    env.barrier(ctx);

    // ---- Phase 4: build one subtree per owned subspace, attach lock-free.
    let arena = tree.arena_of(proc);
    #[allow(clippy::needless_range_loop)] // `id` also indexes shared arrays
    for id in 0..nsub {
        if owner[id] != proc as u8 {
            continue;
        }
        let sub = world.sp_subspaces.load(env, ctx, id);
        let sub_cube = sub.cube();
        // Gather the subspace's bodies from every processor's bucket — this
        // is where SPACE pays in communication and locality.
        let mut members = Vec::with_capacity(sub.count as usize);
        for q in 0..p {
            let lo = world.sp_bucket_off[q].load(env, ctx, id) as usize;
            let hi = world.sp_bucket_off[q].load(env, ctx, id + 1) as usize;
            for j in lo..hi {
                members.push(world.sp_bucket[q].load(env, ctx, j));
            }
        }
        debug_assert_eq!(members.len(), sub.count as usize);
        if members.is_empty() {
            continue;
        }
        let node = if members.len() <= tree.k {
            // Small subspace: a single leaf.
            let leaf = tree.alloc_leaf(env, ctx, arena, proc);
            tree.update_leaf(env, ctx, leaf, |l| {
                l.parent = sub.parent;
                l.octant_in_parent = sub.oct;
                l.center = sub_cube.center;
                l.half = sub_cube.half;
                l.n = members.len() as u32;
                for (i, &b) in members.iter().enumerate() {
                    l.bodies[i] = b;
                }
            });
            tree.set_leaf_parent(env, ctx, leaf, sub.parent);
            tree.set_leaf_bounds(env, ctx, leaf, sub_cube);
            for &b in &members {
                world.body_leaf.store(env, ctx, b as usize, leaf.0);
            }
            leaf
        } else {
            let cell = new_cell(
                env,
                ctx,
                tree,
                arena,
                proc,
                sub.parent,
                sub.oct as usize,
                sub_cube,
            );
            let mut fwd = Vec::with_capacity(members.len());
            for &b in &members {
                insert_private(
                    env, ctx, tree, world, arena, proc, b, cell, sub_cube, 0, &mut fwd,
                );
            }
            common::flush_forwards(env, ctx, world, &mut fwd);
            cell
        };
        // Attach: no lock needed — exactly one processor writes this slot.
        tree.set_child(env, ctx, sub.parent, sub.oct as usize, node);
        tree.pending_add(env, ctx, sub.parent, 1);
    }
}

/// One subdivision round, executed by every processor. Routing is a pure
/// function of the reduced totals, so each processor recomputes the full
/// routing table privately (there is no shared routing state at all); the
/// shared work — creating upper-tree cells for octants that keep refining
/// (over the count threshold, or over the cost ceiling for the rebalance
/// refinement) and publishing final subspaces — is partitioned round-robin
/// by index, turning the old serial processor-0 bottleneck P-way parallel.
#[allow(clippy::too_many_arguments)]
fn subdivide_round<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    parity: usize,
    cubes: &[Cube],
    deep: &[bool],
    threshold: usize,
    cost_limit: u64,
    route: &mut Vec<u32>,
    nsub: &mut u32,
) -> (Vec<Cube>, Vec<bool>) {
    let p = env.num_procs();
    let arena = tree.arena_of(proc);
    let flen = cubes.len();
    route.clear();
    route.resize(flen * 8, DEAD);
    let mut new_cubes: Vec<Cube> = Vec::new();
    let mut new_deep: Vec<bool> = Vec::new();
    // Refined octants this processor materializes: (key, next-round slot).
    let mut mine: Vec<(u32, u32)> = Vec::new();
    for slot in 0..flen {
        for oct in 0..8 {
            let key = slot * 8 + oct;
            let total = world.sp_total_counts.load(env, ctx, key);
            let cost = world.sp_total_costs.load(env, ctx, key);
            // A cube with more than `k` bodies is a cell in the reference
            // tree, so refining it only moves the cell's construction into
            // the upper tree — the final structure is unchanged. The `deep`
            // flag bounds the cost refinement to one round past where the
            // count threshold would have stopped.
            let refine_cost = !deep[slot] && total as usize > tree.k && cost > cost_limit;
            route[key] = if total == 0 {
                DEAD
            } else if total as usize > threshold || refine_cost {
                let new_slot = new_cubes.len() as u32;
                assert!(
                    (new_slot as usize) < FRONTIER_CAP,
                    "SPACE frontier overflow; raise the threshold"
                );
                if new_slot as usize % p == proc {
                    mine.push((key as u32, new_slot));
                }
                new_cubes.push(cubes[slot].octant(oct));
                new_deep.push(refine_cost);
                new_slot
            } else {
                let id = *nsub;
                *nsub += 1;
                assert!(
                    (id as usize) < SUBSPACE_CAP,
                    "SPACE subspace overflow; raise the threshold"
                );
                if id as usize % p == proc {
                    let parent = NodeRef(world.sp_frontier[parity].load(env, ctx, slot));
                    let oc = cubes[slot].octant(oct);
                    world.sp_subspaces.store(
                        env,
                        ctx,
                        id as usize,
                        crate::world::Subspace {
                            parent,
                            oct: oct as u8,
                            count: total,
                            cost,
                            center: oc.center,
                            half: oc.half,
                        },
                    );
                }
                SUBSPACE_BIT | id
            };
            env.compute(ctx, 4);
        }
    }
    for &(key, new_slot) in &mine {
        let (slot, oct) = (key as usize / 8, key as usize % 8);
        let parent = NodeRef(world.sp_frontier[parity].load(env, ctx, slot));
        let child = new_cell(
            env,
            ctx,
            tree,
            arena,
            proc,
            parent,
            oct,
            new_cubes[new_slot as usize],
        );
        tree.set_child(env, ctx, parent, oct, child);
        tree.pending_add(env, ctx, parent, 1);
        world.sp_frontier[1 - parity].store(env, ctx, new_slot as usize, child.0);
    }
    (new_cubes, new_deep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::{bounds_phase, com_pass};
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::tree::validate;
    use crate::tree::{SeqTree, SharedTree, TreeLayout};
    use crate::world::World;

    fn run(
        n: usize,
        p: usize,
        k: usize,
        model: Model,
        threshold: usize,
        rebalance: f64,
        costs: Option<Box<dyn Fn(usize) -> u32 + Sync>>,
    ) -> (NativeEnv, SharedTree, World, Vec<crate::body::Body>, u64) {
        let env = NativeEnv::new(p);
        let bodies = model.generate(n, 55);
        let world = World::new(&env, &bodies);
        if let Some(f) = &costs {
            for i in 0..n {
                world.cost.poke(i, f(i));
            }
        }
        let tree = SharedTree::new(&env, n, k, TreeLayout::PerProcessor);
        let mut locks = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|proc| {
                    let (env, world, tree) = (&env, &world, &tree);
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(proc);
                        let cube = bounds_phase(env, &mut ctx, world, proc);
                        build(env, &mut ctx, tree, world, proc, cube, threshold, rebalance);
                        env.barrier(&mut ctx);
                        com_pass(env, &mut ctx, tree, world, proc, 0);
                        env.barrier(&mut ctx);
                        env.stats(&ctx).lock_acquires
                    })
                })
                .collect();
            for h in handles {
                locks += h.join().unwrap();
            }
        });
        (env, tree, world, bodies, locks)
    }

    fn check_with(
        n: usize,
        p: usize,
        k: usize,
        model: Model,
        threshold: usize,
        rebalance: f64,
        costs: Option<Box<dyn Fn(usize) -> u32 + Sync>>,
    ) -> u64 {
        let (_env, tree, world, bodies, locks) = run(n, p, k, model, threshold, rebalance, costs);
        validate::validate(&tree, &world.positions(), &world.masses(), true).unwrap_or_else(|e| {
            panic!("invalid SPACE tree (n={n} p={p} k={k} t={threshold}): {e}")
        });
        let reference = SeqTree::build(&bodies, k);
        validate::matches_reference(&tree, &reference).unwrap_or_else(|e| {
            panic!("SPACE structure mismatch (n={n} p={p} k={k} t={threshold}): {e}")
        });
        locks
    }

    fn check(n: usize, p: usize, k: usize, model: Model, threshold: usize) -> u64 {
        check_with(n, p, k, model, threshold, DEFAULT_REBALANCE, None)
    }

    #[test]
    fn matches_reference_single_proc() {
        check(600, 1, 8, Model::Plummer, 64);
    }

    #[test]
    fn matches_reference_parallel() {
        check(3000, 4, 8, Model::Plummer, default_threshold(3000, 4, 8));
    }

    #[test]
    fn matches_reference_k1() {
        check(800, 4, 1, Model::Plummer, 32);
    }

    #[test]
    fn matches_reference_clusters() {
        check(
            2000,
            8,
            4,
            Model::TwoClusterCollision,
            default_threshold(2000, 8, 4),
        );
    }

    #[test]
    fn threshold_larger_than_n() {
        // Everything fits in the root's eight octants.
        check(50, 4, 4, Model::UniformSphere, 1000);
    }

    #[test]
    fn tiny_inputs() {
        for n in [1usize, 2, 9] {
            check(n, 4, 2, Model::UniformSphere, 8);
        }
    }

    #[test]
    fn tree_build_is_lock_free() {
        // The defining property: zero lock acquisitions in the build phase
        // (the whole point of the algorithm on SVM platforms).
        let locks = check(2000, 4, 8, Model::Plummer, default_threshold(2000, 4, 8));
        assert_eq!(locks, 0, "SPACE must not lock; saw {locks} acquisitions");
    }

    #[test]
    fn rebalance_disabled_matches_reference() {
        check_with(
            2000,
            4,
            8,
            Model::Plummer,
            default_threshold(2000, 4, 8),
            0.0,
            None,
        );
    }

    #[test]
    fn aggressive_rebalance_preserves_structure() {
        // Heavily skewed costs plus a tiny cost ceiling force the extra
        // refinement round on many subspaces; the final tree must still be
        // the reference structure (refinement only fires on cubes holding
        // more than k bodies, which are cells in the reference tree anyway).
        for rb in [0.01, 0.1, 1.0] {
            check_with(
                2000,
                4,
                8,
                Model::TwoClusterCollision,
                default_threshold(2000, 4, 8),
                rb,
                Some(Box::new(|i| if i < 200 { 1000 } else { 1 })),
            );
        }
    }

    #[test]
    fn rebalance_splits_hot_subspaces() {
        // With skewed costs and a tight ceiling, the costliest subspace
        // after refinement must be smaller than the ceiling-free costliest.
        let n = 2000;
        let p = 4;
        let t = default_threshold(n, p, 8);
        let costs = || -> Option<Box<dyn Fn(usize) -> u32 + Sync>> {
            Some(Box::new(|i| if i < 200 { 1000 } else { 1 }))
        };
        let max_cost = |world: &World| -> u64 {
            let nsub = world.sp_nsub.peek(0) as usize;
            (0..nsub)
                .map(|id| world.sp_subspaces.peek(id).cost)
                .max()
                .unwrap()
        };
        let (_e0, _t0, w0, _b0, _l0) = run(n, p, 8, Model::Plummer, t, 0.0, costs());
        let (_e1, _t1, w1, _b1, _l1) = run(n, p, 8, Model::Plummer, t, 0.05, costs());
        assert!(
            max_cost(&w1) < max_cost(&w0),
            "rebalance did not split the hot subspace: {} vs {}",
            max_cost(&w1),
            max_cost(&w0)
        );
    }

    #[test]
    fn default_threshold_sane() {
        assert!(default_threshold(0, 16, 8) >= 1);
        assert!(default_threshold(1 << 20, 16, 8) > 1000);
        assert!(default_threshold(100, 1, 1) >= 4);
    }
}
