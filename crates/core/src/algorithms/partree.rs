//! The PARTREE tree-building algorithm (paper §2.4).
//!
//! Each processor first builds a *local* tree over its own bodies with no
//! synchronization at all, then merges the local tree into the global tree.
//! The unit of merge work is a whole cell or subtree rather than a single
//! particle, so the number of global (locked) insert operations — and hence
//! the number of lock acquisitions — drops dramatically, at the cost of some
//! redundant work. Local trees are pre-sized to the global root cube so that
//! a cell in one tree represents exactly the same subspace as the
//! corresponding cell in any other.

use crate::algorithms::common::{
    create_root, flush_forwards, insert_locked, insert_private, new_cell,
};
use crate::env::Env;
use crate::math::Cube;
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::World;

/// Tree-build phase of PARTREE for one processor.
pub fn build<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    cube: Cube,
) {
    tree.reset_for_rebuild(env, ctx, proc);
    env.barrier(ctx);
    if proc == 0 {
        create_root(env, ctx, tree, cube);
    }
    env.barrier(ctx);

    // Phase 1: build the local tree (InsertParticlesInTree) — lock-free.
    let arena = tree.arena_of(proc);
    let local_root = new_cell(env, ctx, tree, arena, proc, NodeRef::NULL, 0, cube);
    let (s, e) = world.zone(proc);
    let mut fwd = Vec::new();
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        insert_private(
            env, ctx, tree, world, arena, proc, b, local_root, cube, 0, &mut fwd,
        );
    }
    flush_forwards(env, ctx, world, &mut fwd);

    // Phase 2: MergeLocalTrees — attach whole subtrees into the global tree.
    let global_root = tree.root.load(env, ctx, 0);
    merge_cell_into(
        env,
        ctx,
        tree,
        world,
        arena,
        proc,
        local_root,
        global_root,
        cube,
    );
    // The local root itself is now an unreachable husk; mark it dead.
    tree.update_cell(env, ctx, local_root, |c| c.in_use = false);
}

/// Merge every child of local cell `lcell` into global cell `gcell` (both
/// represent `cube`). `lcell` itself is discarded.
#[allow(clippy::too_many_arguments)]
fn merge_cell_into<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    arena: usize,
    proc: usize,
    lcell: NodeRef,
    gcell: NodeRef,
    cube: Cube,
) {
    for oct in 0..8 {
        let lchild = tree.child(env, ctx, lcell, oct);
        if !lchild.is_null() {
            attach(
                env,
                ctx,
                tree,
                world,
                arena,
                proc,
                gcell,
                oct,
                cube.octant(oct),
                lchild,
            );
        }
    }
}

/// Attach private node `lnode` (a subtree the caller exclusively owns) as
/// the `oct` child of global cell `gcell`, merging with whatever is already
/// there. `sub_cube` is the octant's cube.
#[allow(clippy::too_many_arguments)]
fn attach<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    arena: usize,
    proc: usize,
    gcell: NodeRef,
    oct: usize,
    sub_cube: Cube,
    lnode: NodeRef,
) {
    {
        // Every merge decision is made while holding the global cell's lock,
        // as in the original MergeLocalTrees: the merge still locks far less
        // than per-particle loading (one lock per merge site, not per body),
        // which is exactly the trade-off the paper describes.
        env.lock(ctx, gcell.lock_id());
        let gchild = tree.child(env, ctx, gcell, oct);
        if gchild.is_null() {
            // Link the whole local subtree in one shot.
            reparent(env, ctx, tree, lnode, gcell, oct);
            tree.set_child(env, ctx, gcell, oct, lnode);
            tree.pending_add(env, ctx, gcell, 1);
            env.unlock(ctx, gcell.lock_id());
            return;
        }
        if gchild.is_cell() {
            env.unlock(ctx, gcell.lock_id());
            if lnode.is_cell() {
                // Same subspace, both internal: merge recursively; the local
                // cell is discarded. (The global child cell can never be
                // un-linked, so recursing outside the lock is safe.)
                merge_cell_into(env, ctx, tree, world, arena, proc, lnode, gchild, sub_cube);
                tree.update_cell(env, ctx, lnode, |c| c.in_use = false);
            } else {
                // Local leaf under a global cell: fall back to per-body
                // locked inserts below the global cell.
                let l = tree.load_leaf(env, ctx, lnode);
                for &b in l.body_slice() {
                    insert_locked(env, ctx, tree, world, arena, proc, b, gchild, sub_cube);
                }
                tree.retire_leaf(env, ctx, lnode);
            }
            return;
        }
        // Global child is a leaf: combine under the global cell's lock.
        let gleaf = gchild;
        if lnode.is_leaf() {
            let ll = tree.load_leaf(env, ctx, lnode);
            let gl = tree.load_leaf(env, ctx, gleaf);
            if (gl.n + ll.n) as usize <= tree.k {
                tree.update_leaf(env, ctx, gleaf, |g| {
                    for (i, &b) in ll.body_slice().iter().enumerate() {
                        g.bodies[g.n as usize + i] = b;
                    }
                    g.n += ll.n;
                });
                for &b in ll.body_slice() {
                    world.body_leaf.store(env, ctx, b as usize, gleaf.0);
                }
                tree.retire_leaf(env, ctx, lnode);
            } else {
                // Overflow: subdivide privately, then publish. Forwarding
                // pointers are flushed only after publication (still under
                // the global cell's lock) so the private subtree never
                // leaks through `body_leaf`.
                let sub = new_cell(env, ctx, tree, arena, proc, gcell, oct, sub_cube);
                let mut fwd = Vec::with_capacity((gl.n + ll.n) as usize);
                for &b in gl.body_slice() {
                    insert_private(
                        env, ctx, tree, world, arena, proc, b, sub, sub_cube, 0, &mut fwd,
                    );
                }
                for &b in ll.body_slice() {
                    insert_private(
                        env, ctx, tree, world, arena, proc, b, sub, sub_cube, 0, &mut fwd,
                    );
                }
                tree.retire_leaf(env, ctx, gleaf);
                tree.retire_leaf(env, ctx, lnode);
                tree.set_child(env, ctx, gcell, oct, sub);
                flush_forwards(env, ctx, world, &mut fwd);
            }
            env.unlock(ctx, gcell.lock_id());
            return;
        }
        // Local node is a cell, global child a leaf: push the global leaf's
        // bodies down into the (still private) local subtree, then swap the
        // subtree into place.
        let gl = tree.load_leaf(env, ctx, gleaf);
        let mut fwd = Vec::with_capacity(gl.n as usize);
        for &b in gl.body_slice() {
            insert_private(
                env, ctx, tree, world, arena, proc, b, lnode, sub_cube, 0, &mut fwd,
            );
        }
        tree.retire_leaf(env, ctx, gleaf);
        reparent(env, ctx, tree, lnode, gcell, oct);
        tree.set_child(env, ctx, gcell, oct, lnode);
        flush_forwards(env, ctx, world, &mut fwd);
        env.unlock(ctx, gcell.lock_id());
    }
}

/// Point a private node's parent link at its new global parent.
fn reparent<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    node: NodeRef,
    parent: NodeRef,
    oct: usize,
) {
    if node.is_cell() {
        tree.update_cell(env, ctx, node, |c| {
            c.parent = parent;
            c.octant_in_parent = oct as u8;
        });
    } else {
        tree.update_leaf(env, ctx, node, |l| {
            l.parent = parent;
            l.octant_in_parent = oct as u8;
        });
        tree.set_leaf_parent(env, ctx, node, parent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::{bounds_phase, com_pass};
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::tree::validate;
    use crate::tree::{SeqTree, SharedTree, TreeLayout};
    use crate::world::World;

    fn check(n: usize, p: usize, k: usize, model: Model) {
        let env = NativeEnv::new(p);
        let bodies = model.generate(n, 77);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, k, TreeLayout::PerProcessor);
        std::thread::scope(|s| {
            for proc in 0..p {
                let (env, world, tree) = (&env, &world, &tree);
                s.spawn(move || {
                    let mut ctx = env.make_ctx(proc);
                    let cube = bounds_phase(env, &mut ctx, world, proc);
                    build(env, &mut ctx, tree, world, proc, cube);
                    env.barrier(&mut ctx);
                    com_pass(env, &mut ctx, tree, world, proc, 0);
                    env.barrier(&mut ctx);
                });
            }
        });
        validate::validate(&tree, &world.positions(), &world.masses(), true)
            .unwrap_or_else(|e| panic!("invalid PARTREE tree (n={n} p={p} k={k}): {e}"));
        let reference = SeqTree::build(&bodies, k);
        validate::matches_reference(&tree, &reference)
            .unwrap_or_else(|e| panic!("PARTREE structure mismatch (n={n} p={p} k={k}): {e}"));
    }

    #[test]
    fn matches_reference_single_proc() {
        check(600, 1, 8, Model::Plummer);
    }

    #[test]
    fn matches_reference_parallel() {
        check(2000, 4, 8, Model::Plummer);
    }

    #[test]
    fn matches_reference_k1() {
        check(700, 4, 1, Model::Plummer);
    }

    #[test]
    fn matches_reference_k2_clusters() {
        check(1500, 8, 2, Model::TwoClusterCollision);
    }

    #[test]
    fn matches_reference_uniform() {
        check(2500, 6, 4, Model::UniformSphere);
    }

    #[test]
    fn tiny_inputs() {
        for n in [1usize, 3, 9] {
            check(n, 4, 2, Model::UniformSphere);
        }
    }

    #[test]
    fn merge_with_interleaved_assignment() {
        // Adversarial costzones: bodies assigned round-robin, so every
        // processor's local tree overlaps every other's everywhere and the
        // merge exercises all cases (cell-cell, leaf-leaf, leaf-cell,
        // cell-leaf, overflow subdivision).
        let n = 1200;
        let p = 4;
        let env = NativeEnv::new(p);
        let bodies = Model::Plummer.generate(n, 3);
        let world = World::new(&env, &bodies);
        // Round-robin order: proc q gets bodies with index % p == q.
        let mut idx = 0;
        for q in 0..p {
            world.zone_start.poke(q, idx);
            for b in (q..n).step_by(p) {
                world.order.poke(idx as usize, b as u32);
                idx += 1;
            }
        }
        world.zone_start.poke(p, n as u32);
        let tree = SharedTree::new(&env, n, 2, TreeLayout::PerProcessor);
        std::thread::scope(|s| {
            for proc in 0..p {
                let (env, world, tree) = (&env, &world, &tree);
                s.spawn(move || {
                    let mut ctx = env.make_ctx(proc);
                    let cube = bounds_phase(env, &mut ctx, world, proc);
                    build(env, &mut ctx, tree, world, proc, cube);
                    env.barrier(&mut ctx);
                    com_pass(env, &mut ctx, tree, world, proc, 0);
                    env.barrier(&mut ctx);
                });
            }
        });
        validate::validate(&tree, &world.positions(), &world.masses(), true).unwrap();
        let reference = SeqTree::build(&bodies, 2);
        validate::matches_reference(&tree, &reference).unwrap();
    }

    #[test]
    fn uses_fewer_locks_than_direct() {
        // The whole point of PARTREE: far fewer lock acquisitions than
        // loading bodies one by one into the shared tree. Measured after the
        // costzones partition has settled (the paper's warm-up protocol) —
        // only then do a processor's bodies cluster spatially and whole
        // subtrees merge in one lock.
        use crate::algorithms::Algorithm;
        use crate::app::{run_simulation, SimConfig};
        let n = 4000;
        let count_locks = |alg: Algorithm| -> u64 {
            let env = NativeEnv::new(4);
            let bodies = Model::Plummer.generate(n, 13);
            let mut cfg = SimConfig::new(alg);
            cfg.warmup_steps = 2;
            cfg.measured_steps = 1;
            let stats = run_simulation(&env, &cfg, &bodies);
            stats.assert_valid();
            stats.tree_locks_per_proc().iter().sum()
        };
        let direct = count_locks(Algorithm::Local);
        let partree = count_locks(Algorithm::Partree);
        assert!(
            partree * 3 < direct,
            "expected PARTREE ({partree} locks) to use far fewer locks than direct ({direct})"
        );
    }
}
