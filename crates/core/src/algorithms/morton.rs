//! MORTON: sort-based bulk tree construction.
//!
//! The five paper algorithms build the octree by inserting bodies one at a
//! time through linked cells; MORTON instead derives the tree from data
//! order. Each step it
//!
//! 1. computes a 63-bit Morton key per body (quantized against the exact
//!    global root cube from the bounds reduction),
//! 2. partially sorts the (key, body) pairs by the top [`SORT_BITS`] key
//!    bits with a cooperative LSD radix sort over the worker pool, and
//! 3. emits the [`crate::tree::flat::FlatTree`] **directly** from the
//!    sorted key array — leaves are maximal key ranges of at most `k`
//!    bodies, internal cells are ranges that still split, and centers of
//!    mass are computed bottom-up during emission.
//!
//! There is no linked [`crate::tree::SharedTree`] build, no flatten pass,
//! and **no locks or atomics anywhere**: every shared write in the sort and
//! in the emission has a single statically-determined owner (per-processor
//! element chunks, per-processor digit slices, per-entry output segments),
//! and phases are separated by barriers. Race freedom is certified by
//! `tests/race_freedom.rs` and the schedule matrix.
//!
//! # The radix sort
//!
//! Three stable passes of 8-bit digits order the pairs by the top 24 key
//! bits — exact tree structure down to depth [`MAX_PLAN_SPLIT_DEPTH`]` + 1`,
//! which is all the *shared* phases ever consume; deeper structure is
//! resolved exactly in private memory during emission (below). Sorting
//! only the bits the cooperative phases need is the algorithm's key
//! economy: a full 63-bit sort would nearly triple the sort's memory
//! traffic to buy resolution that per-range private sorts provide almost
//! for free. Per pass:
//!
//! * **count** — each processor histograms the digit over its contiguous
//!   element chunk privately and publishes the 256 counts into its own
//!   (locally homed) histogram row;
//! * **rank** — the digit space is split across processors; the owner of
//!   digit `d` computes the exclusive per-processor rank
//!   `rank[q][d] = Σ_{q' < q} hist[q'][d]` and the digit total;
//! * **scatter** — every processor privately prefix-sums the totals into
//!   global digit bases (identical on all processors) and copies its chunk
//!   to `base[d] + rank[proc][d] + seen`, a destination range disjoint
//!   from every other processor's by construction.
//!
//! The initial gather writes pairs in ascending body order, and every pass
//! is stable, so the result is ordered by (top sort bits, body id) — a
//! deterministic, processor-count-independent order.
//!
//! # Sort-then-emit
//!
//! The sorted key array determines the tree uniquely: the range `[0, n)`
//! is the root; a range splits into the eight sub-ranges sharing the next
//! 3-bit digit while it holds more than `k` bodies, bottoming out in a
//! leaf (or, past the 21-level key resolution, an oversized leaf of
//! key-identical bodies). Emission mirrors the flatten protocol of
//! [`crate::tree::flat`]: an identical plan on every processor expands
//! heavy ranges (by binary search over the shared sorted keys, never below
//! the sorted resolution) into a *spine* and assigns the frontier subtree
//! ranges greedy-LPT. Each owner then copies its ranges' (key, id) pairs
//! into private memory **once**, finishes the sort exactly on the full
//! 63-bit keys, derives and counts the subtree privately, publishes
//! per-entry totals, and — after a prefix sum of segment bases — emits its
//! subtrees into disjoint output segments; the root always lands at flat
//! index 0. Within a leaf, bodies are stored in ascending id order, which
//! makes the emitted tree — and therefore the forces — bitwise identical
//! to the sequential reference builder at every processor count.

use crate::env::{Env, Placement, Region};
use crate::math::morton::{key_in_cube, MORTON_BITS};
use crate::math::{Cube, Vec3};
use crate::shared::SharedVec;
use crate::tree::flat::{FlatNode, FlatTree, LEAF_TAG};
use crate::world::World;

/// Radix of one sort pass.
pub const RADIX: usize = 256;

/// Number of sort passes. Odd, so the sorted pairs land in buffer 1 (see
/// [`MortonScratch::sorted`]).
const PASSES: u32 = 3;

/// Number of top key bits the cooperative sort orders exactly.
pub const SORT_BITS: u32 = 8 * PASSES;

/// Lowest key bit the sort orders (bits `[SORT_LOW_BIT, 64)` are exact).
pub const SORT_LOW_BIT: u32 = 64 - SORT_BITS;

/// Deepest range depth the shared plan may split: splitting at depth `d`
/// reads key bits `[3*(20-d), 3*(21-d))`, which lie within the sorted bits
/// iff `d <= MAX_PLAN_SPLIT_DEPTH`. Emission owners resolve deeper
/// structure privately on the full keys.
const MAX_PLAN_SPLIT_DEPTH: u32 = (3 * (MORTON_BITS - 1) - SORT_LOW_BIT) / 3;

/// Hard cap on emission-plan size (spine cells + frontier entries); same
/// role as the flatten plan's cap.
const PLAN_CAP: usize = 4096;

/// Rough instruction cost of computing one Morton key (3 quantizations +
/// 3 bit spreads).
const KEY_CYCLES: u64 = 40;

/// Rough per-element instruction cost of one counting or scatter pass.
const PASS_CYCLES: u64 = 4;

/// Rough instruction cost of one binary-search probe during range
/// splitting.
const PROBE_CYCLES: u64 = 4;

/// The contiguous element chunk of processor `proc` out of `p` over `n`
/// items (also used to slice the digit space).
#[inline]
fn chunk(n: usize, p: usize, proc: usize) -> (usize, usize) {
    (n * proc / p, n * (proc + 1) / p)
}

/// Instruction charge for privately comparison-sorting `m` pairs (the cost
/// model the Morton zone reorder uses).
#[inline]
fn sort_cost(m: usize) -> u64 {
    let m = m as u64;
    if m == 0 {
        return 0;
    }
    m * (24 + 4 * (64 - m.leading_zeros() as u64))
}

/// Shared workspace of the MORTON builder: sort buffers, histogram /
/// rank arrays, and the emission plan's publication arrays. Allocated once
/// per run (untimed setup); every slot is overwritten before it is read
/// within each step, so no per-step reset is needed.
pub struct MortonScratch {
    /// Ping-pong (key, id) buffers; pass `t` reads `t % 2`, writes the
    /// other. With an odd pass count the sorted result is in buffer 1.
    keys: [SharedVec<u64>; 2],
    ids: [SharedVec<u32>; 2],
    /// Per-processor digit histogram rows, homed locally.
    hist: Vec<SharedVec<u32>>,
    /// Exclusive per-(processor, digit) scatter ranks (`proc * RADIX + d`).
    rank: SharedVec<u32>,
    /// Per-digit totals of the current pass.
    totals: SharedVec<u32>,
    /// Published per-entry (node, kid-slot) counts of the emission plan.
    ent_counts: SharedVec<u32>,
    /// Published per-entry (mass, com.x, com.y, com.z) aggregates, read by
    /// processor 0 to summarize the spine.
    ent_mass: SharedVec<f64>,
    /// Per-processor chunk cost sums for the cost-cut partition.
    chunk_cost: SharedVec<u64>,
}

impl MortonScratch {
    /// Allocate the workspace for `n` bodies (untimed setup).
    pub fn new<E: Env>(env: &E, n: usize) -> MortonScratch {
        let p = env.num_procs();
        let n = n.max(1);
        let g = Placement::Global;
        let s = MortonScratch {
            keys: [SharedVec::new(env, n, 0, g), SharedVec::new(env, n, 0, g)],
            ids: [SharedVec::new(env, n, 0, g), SharedVec::new(env, n, 0, g)],
            hist: (0..p)
                .map(|q| SharedVec::new(env, RADIX, 0, Placement::Local(q)))
                .collect(),
            rank: SharedVec::new(env, p * RADIX, 0, g),
            totals: SharedVec::new(env, RADIX, 0, g),
            ent_counts: SharedVec::new(env, 2 * PLAN_CAP, 0, g),
            ent_mass: SharedVec::new(env, 4 * PLAN_CAP, 0.0, g),
            chunk_cost: SharedVec::new(env, p, 0, g),
        };
        for v in &s.keys {
            v.tag(env, Region::SortScratch);
        }
        for v in &s.ids {
            v.tag(env, Region::SortScratch);
        }
        for v in &s.hist {
            v.tag(env, Region::SortScratch);
        }
        s.rank.tag(env, Region::SortScratch);
        s.totals.tag(env, Region::SortScratch);
        s.ent_counts.tag(env, Region::SortScratch);
        s.ent_mass.tag(env, Region::SortScratch);
        s.chunk_cost.tag(env, Region::SortScratch);
        s
    }

    /// The (keys, ids) buffers holding the sorted pairs after
    /// [`sort_keys`].
    fn sorted(&self) -> (&SharedVec<u64>, &SharedVec<u32>) {
        let b = (PASSES % 2) as usize;
        (&self.keys[b], &self.ids[b])
    }

    /// Reset the workspace to its freshly-allocated state (untimed,
    /// single-threaded engine setup between jobs). Like
    /// [`FlatTree::reset`], this exists so reused-engine runs are
    /// indistinguishable from fresh ones — each step overwrites every slot
    /// it reads.
    pub fn reset(&self) {
        for v in &self.keys {
            for i in 0..v.len() {
                v.poke(i, 0);
            }
        }
        for v in &self.ids {
            for i in 0..v.len() {
                v.poke(i, 0);
            }
        }
        for v in &self.hist {
            for i in 0..v.len() {
                v.poke(i, 0);
            }
        }
        for i in 0..self.rank.len() {
            self.rank.poke(i, 0);
        }
        for i in 0..self.totals.len() {
            self.totals.poke(i, 0);
        }
        for i in 0..self.ent_counts.len() {
            self.ent_counts.poke(i, 0);
        }
        for i in 0..self.ent_mass.len() {
            self.ent_mass.poke(i, 0.0);
        }
        for i in 0..self.chunk_cost.len() {
            self.chunk_cost.poke(i, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel LSD radix sort
// ---------------------------------------------------------------------------

/// Sort the (Morton key, body id) pairs of all bodies by the top
/// [`SORT_BITS`] key bits (ties in ascending id order) into the scratch's
/// buffer 1. Cooperative: every processor must call this; internally
/// barriers `1 + 3 * PASSES` times.
pub fn sort_keys<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    world: &World,
    scratch: &MortonScratch,
    cube: &Cube,
    proc: usize,
) {
    let n = world.n;
    let p = env.num_procs();
    let (lo, hi) = chunk(n, p, proc);

    // Gather: key each body of the chunk, in ascending id order (the
    // stable passes below then keep top-bit ties in id order).
    for i in lo..hi {
        let pos = world.pos.load(env, ctx, i);
        scratch.keys[0].store(env, ctx, i, key_in_cube(pos, cube));
        scratch.ids[0].store(env, ctx, i, i as u32);
    }
    env.compute(ctx, (hi - lo) as u64 * KEY_CYCLES);
    env.barrier(ctx);

    for pass in 0..PASSES {
        let src = (pass % 2) as usize;
        let dst = 1 - src;
        let shift = SORT_LOW_BIT + 8 * pass;

        // Count: private histogram over the chunk, published once into
        // this processor's own row.
        let mut h = [0u32; RADIX];
        for i in lo..hi {
            let k = scratch.keys[src].load(env, ctx, i);
            h[((k >> shift) & 0xff) as usize] += 1;
        }
        for (d, &c) in h.iter().enumerate() {
            scratch.hist[proc].store(env, ctx, d, c);
        }
        env.compute(ctx, (hi - lo) as u64 * PASS_CYCLES);
        env.barrier(ctx);

        // Rank: the owner of each digit computes the exclusive
        // per-processor ranks and the digit total.
        let (dlo, dhi) = chunk(RADIX, p, proc);
        for d in dlo..dhi {
            let mut running = 0u32;
            for (q, row) in scratch.hist.iter().enumerate() {
                scratch.rank.store(env, ctx, q * RADIX + d, running);
                running += row.load(env, ctx, d);
            }
            scratch.totals.store(env, ctx, d, running);
        }
        env.compute(ctx, ((dhi - dlo) * p) as u64 * 2);
        env.barrier(ctx);

        // Scatter: identical private prefix sum of the totals gives the
        // global digit bases; each processor's destinations are the
        // disjoint range [base[d] + rank[proc][d], ...) per digit.
        let mut cur = [0u32; RADIX];
        let mut acc = 0u32;
        for (d, slot) in cur.iter_mut().enumerate() {
            *slot = acc + scratch.rank.load(env, ctx, proc * RADIX + d);
            acc += scratch.totals.load(env, ctx, d);
        }
        for i in lo..hi {
            let k = scratch.keys[src].load(env, ctx, i);
            let id = scratch.ids[src].load(env, ctx, i);
            let d = ((k >> shift) & 0xff) as usize;
            let dest = cur[d] as usize;
            cur[d] += 1;
            scratch.keys[dst].store(env, ctx, dest, k);
            scratch.ids[dst].store(env, ctx, dest, id);
        }
        env.compute(ctx, (hi - lo) as u64 * PASS_CYCLES + RADIX as u64);
        env.barrier(ctx);
    }
}

// ---------------------------------------------------------------------------
// Sort-then-emit: derive the flat tree from the sorted key array
// ---------------------------------------------------------------------------

/// One range of the sorted key array: a subtree root at `depth` covering
/// sorted positions `[lo, hi)` inside `cube`.
#[derive(Debug, Clone, Copy)]
struct Range {
    lo: u32,
    hi: u32,
    depth: u32,
    cube: Cube,
}

impl Range {
    #[inline]
    fn count(&self) -> usize {
        (self.hi - self.lo) as usize
    }
}

/// A child of a spine cell in the emission plan.
#[derive(Debug, Clone, Copy)]
enum SpineKid {
    /// Another spine cell, by pre-order index (== its flat node index).
    Spine(u32),
    /// A frontier entry, by entry index.
    Sub(u32),
}

/// The deterministic emission plan; identical on every processor (all
/// inputs are the post-barrier sorted keys).
pub struct MortonPlan {
    /// Frontier subtree ranges in discovery (pre-order) order.
    subs: Vec<Range>,
    /// Upper-tree cells in pre-order; `spine[0]` is the root (empty when
    /// the root itself is the only frontier entry).
    spine: Vec<(Range, Vec<SpineKid>)>,
    spine_kids_total: usize,
    owner: Vec<u8>,
}

impl MortonPlan {
    /// Number of frontier entries.
    pub fn entries(&self) -> usize {
        self.subs.len()
    }
}

/// First sorted index in `[lo, hi)` whose key is `>= bound` (binary search
/// over timed loads). Only valid for bounds whose distinguishing bits are
/// within the sorted top bits.
fn lower_bound<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    keys: &SharedVec<u64>,
    mut lo: usize,
    mut hi: usize,
    bound: u64,
) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        env.compute(ctx, PROBE_CYCLES);
        if keys.load(env, ctx, mid) < bound {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The eight octant sub-ranges of `r`, in octant order, empty ones
/// skipped. `r.depth` must be at most [`MAX_PLAN_SPLIT_DEPTH`] — the
/// partial sort resolves no deeper.
fn split<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    keys: &SharedVec<u64>,
    r: &Range,
) -> Vec<(usize, Range)> {
    debug_assert!(r.depth <= MAX_PLAN_SPLIT_DEPTH);
    let shift = 3 * (MORTON_BITS - 1 - r.depth);
    // The common key prefix of the range, low (unconsumed) bits cleared.
    let first = keys.load(env, ctx, r.lo as usize);
    let prefix = first & !(((1u64 << 3) << shift) - 1);
    let mut out = Vec::with_capacity(8);
    let mut start = r.lo as usize;
    for oct in 0..8usize {
        let end = if oct == 7 {
            r.hi as usize
        } else {
            let bound = prefix + ((oct as u64 + 1) << shift);
            lower_bound(env, ctx, keys, start, r.hi as usize, bound)
        };
        if end > start {
            out.push((
                oct,
                Range {
                    lo: start as u32,
                    hi: end as u32,
                    depth: r.depth + 1,
                    cube: r.cube.octant(oct),
                },
            ));
        }
        start = end;
    }
    out
}

/// Phase 1 of the emission: compute the deterministic plan. Identical on
/// every processor.
pub fn plan<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    scratch: &MortonScratch,
    n: usize,
    k: usize,
    cube: Cube,
) -> MortonPlan {
    let p = env.num_procs();
    // Same granularity target as the flatten plan: a handful of subtrees
    // per processor.
    let limit = (n / (8 * p)).max(k).max(1);
    let root = Range {
        lo: 0,
        hi: n as u32,
        depth: 0,
        cube,
    };
    let mut plan = MortonPlan {
        subs: Vec::new(),
        spine: Vec::new(),
        spine_kids_total: 0,
        owner: Vec::new(),
    };
    if root.count() > limit && root.depth <= MAX_PLAN_SPLIT_DEPTH {
        expand(env, ctx, scratch.sorted().0, limit, &mut plan, root);
    } else {
        plan.subs.push(root);
    }
    plan.spine_kids_total = plan.spine.iter().map(|(_, kids)| kids.len()).sum();
    assert!(
        plan.subs.len() <= PLAN_CAP,
        "morton emission plan overflow ({} entries)",
        plan.subs.len()
    );

    // Greedy LPT by body count, deterministic tie-breaking (the flatten
    // plan's scheme).
    let mut by_weight: Vec<(u32, u32)> = plan
        .subs
        .iter()
        .enumerate()
        .map(|(i, r)| (r.hi - r.lo, i as u32))
        .collect();
    by_weight.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; p];
    plan.owner = vec![0u8; plan.subs.len()];
    for &(w, i) in &by_weight {
        let q = (0..p).min_by_key(|&q| (load[q], q)).unwrap();
        load[q] += w as u64;
        plan.owner[i as usize] = q as u8;
        env.compute(ctx, 8);
    }
    plan
}

/// Expand the spine: `r` splits and is heavier than `limit`; record it as
/// a spine cell and classify its children. Returns the cell's spine index.
fn expand<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    keys: &SharedVec<u64>,
    limit: usize,
    plan: &mut MortonPlan,
    r: Range,
) -> u32 {
    let j = plan.spine.len() as u32;
    plan.spine.push((r, Vec::new()));
    for (_, child) in split(env, ctx, keys, &r) {
        let room = plan.spine.len() + plan.subs.len() + 16 <= PLAN_CAP;
        let kid = if child.count() > limit && child.depth <= MAX_PLAN_SPLIT_DEPTH && room {
            SpineKid::Spine(expand(env, ctx, keys, limit, plan, child))
        } else {
            let i = plan.subs.len() as u32;
            plan.subs.push(child);
            SpineKid::Sub(i)
        };
        plan.spine[j as usize].1.push(kid);
    }
    j
}

// ---------------------------------------------------------------------------
// Private subtree derivation (full key resolution)
// ---------------------------------------------------------------------------

/// One frontier entry's private working state: its exactly-sorted
/// (key, id) pairs, copied out of the shared buffers once by the owner and
/// reused from the counting phase through the emission phase.
struct OwnedEntry {
    idx: usize,
    pairs: Vec<(u64, u32)>,
}

/// Per-processor private emission state carried from [`publish_counts`]
/// to [`fill`].
pub struct OwnedEntries {
    entries: Vec<OwnedEntry>,
}

/// The nonempty octant sub-slices of a privately-held, exactly-sorted
/// pair slice, in octant order.
fn child_slices(pairs: &[(u64, u32)], depth: u32) -> Vec<(usize, std::ops::Range<usize>)> {
    let shift = 3 * (MORTON_BITS - 1 - depth);
    let prefix = pairs[0].0 & !(((1u64 << 3) << shift) - 1);
    let mut out = Vec::with_capacity(8);
    let mut start = 0usize;
    for oct in 0..8usize {
        let end = if oct == 7 {
            pairs.len()
        } else {
            let bound = prefix + ((oct as u64 + 1) << shift);
            start + pairs[start..].partition_point(|&(key, _)| key < bound)
        };
        if end > start {
            out.push((oct, start..end));
        }
        start = end;
    }
    out
}

/// Whether a pair slice derives to a leaf: at most `k` bodies, or past the
/// key resolution (key-identical bodies cannot be split — the leaf is
/// emitted oversized; the CSR body array has no per-leaf cap).
#[inline]
fn is_leaf_slice(pairs: &[(u64, u32)], depth: u32, k: usize) -> bool {
    pairs.len() <= k || depth >= MORTON_BITS
}

/// Count (nodes, kid slots) of the subtree a pair slice derives to
/// (private memory; the caller charges the traversal as compute).
fn count_pairs(pairs: &[(u64, u32)], depth: u32, k: usize) -> (u32, u32) {
    if is_leaf_slice(pairs, depth, k) {
        return (1, 0);
    }
    let (mut nn, mut nk) = (1u32, 0u32);
    for (_, range) in child_slices(pairs, depth) {
        let (a, b) = count_pairs(&pairs[range], depth + 1, k);
        nn += a;
        nk += b + 1;
    }
    (nn, nk)
}

/// Phase 2: each owner copies its claimed ranges' pairs into private
/// memory (the only shared reads of the emission), finishes the sort on
/// the full 63-bit keys, counts the derived subtrees, and publishes the
/// per-entry totals. The caller barriers afterwards; the returned private
/// state feeds [`fill`].
pub fn publish_counts<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    scratch: &MortonScratch,
    plan: &MortonPlan,
    k: usize,
    proc: usize,
) -> OwnedEntries {
    let (keys, ids) = scratch.sorted();
    let mut entries = Vec::new();
    for (i, r) in plan.subs.iter().enumerate() {
        if plan.owner[i] as usize != proc {
            continue;
        }
        let mut pairs = Vec::with_capacity(r.count());
        for j in r.lo..r.hi {
            let j = j as usize;
            pairs.push((keys.load(env, ctx, j), ids.load(env, ctx, j)));
        }
        // The cooperative sort ordered the top SORT_BITS only; resolve the
        // full (key, id) order privately. Already nearly sorted, but the
        // charge model assumes nothing.
        pairs.sort_unstable();
        env.compute(ctx, sort_cost(pairs.len()));
        let (nn, nk) = count_pairs(&pairs, r.depth, k);
        env.compute(ctx, 2 * pairs.len() as u64);
        scratch.ent_counts.store(env, ctx, 2 * i, nn);
        scratch.ent_counts.store(env, ctx, 2 * i + 1, nk);
        entries.push(OwnedEntry { idx: i, pairs });
    }
    OwnedEntries { entries }
}

/// Running output cursors for one processor's segment.
struct Cursors {
    node: u32,
    kid: u32,
    body: u32,
}

/// Emit one privately-derived subtree in pre-order, children in octant
/// order, centers of mass computed bottom-up with exactly the summarize
/// arithmetic of the linked-tree CoM pass. Returns (flat index, mass,
/// com).
#[allow(clippy::too_many_arguments)]
fn emit_pairs<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    pairs: &[(u64, u32)],
    depth: u32,
    cube: Cube,
    k: usize,
    cur: &mut Cursors,
) -> (u32, f64, Vec3) {
    let my = cur.node;
    cur.node += 1;
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    if is_leaf_slice(pairs, depth, k) {
        // Leaf: bodies in ascending id order — the order the sequential
        // reference builder accumulates them in, making leaf summaries
        // (and forces) bitwise reproducible at any processor count.
        let first = cur.body;
        let mut bs: Vec<u32> = pairs.iter().map(|&(_, id)| id).collect();
        bs.sort_unstable();
        for &b in &bs {
            flat.put_body(env, ctx, cur.body as usize, b);
            cur.body += 1;
            let m = world.mass.load(env, ctx, b as usize);
            mass += m;
            weighted += world.pos.load(env, ctx, b as usize) * m;
        }
        env.compute(ctx, 8 * pairs.len() as u64);
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        flat.put_node(
            env,
            ctx,
            my as usize,
            FlatNode {
                com,
                mass,
                half: cube.half,
                first,
                tag: LEAF_TAG | pairs.len() as u32,
            },
        );
        (my, mass, com)
    } else {
        let children = child_slices(pairs, depth);
        let nkids = children.len() as u32;
        let first = cur.kid;
        cur.kid += nkids;
        for (off, (oct, range)) in children.into_iter().enumerate() {
            let (idx, m, com) = emit_pairs(
                env,
                ctx,
                flat,
                world,
                &pairs[range],
                depth + 1,
                cube.octant(oct),
                k,
                cur,
            );
            flat.put_kid(env, ctx, first as usize + off, idx);
            mass += m;
            weighted += com * m;
        }
        env.compute(ctx, 40);
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        flat.put_node(
            env,
            ctx,
            my as usize,
            FlatNode {
                com,
                mass,
                half: cube.half,
                first,
                tag: nkids,
            },
        );
        (my, mass, com)
    }
}

/// Phase 3: prefix-sum the published counts into disjoint segments and
/// emit the owned subtrees from their private pair copies, publishing each
/// entry's (mass, com) aggregate. The root always lands at flat index 0.
/// Returns the total node count. A barrier must separate this from
/// [`fill_spine`].
#[allow(clippy::too_many_arguments)]
pub fn fill<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    scratch: &MortonScratch,
    plan: &MortonPlan,
    owned: &OwnedEntries,
    k: usize,
) -> u32 {
    let bases = segment_bases(env, ctx, flat, scratch, plan);
    for e in &owned.entries {
        let i = e.idx;
        let r = &plan.subs[i];
        let (bn, bk, bb) = bases[i];
        let mut cur = Cursors {
            node: bn,
            kid: bk,
            body: bb,
        };
        let (at, mass, com) = emit_pairs(
            env, ctx, flat, world, &e.pairs, r.depth, r.cube, k, &mut cur,
        );
        debug_assert_eq!(at, bn);
        scratch.ent_mass.store(env, ctx, 4 * i, mass);
        scratch.ent_mass.store(env, ctx, 4 * i + 1, com.x);
        scratch.ent_mass.store(env, ctx, 4 * i + 2, com.y);
        scratch.ent_mass.store(env, ctx, 4 * i + 3, com.z);
    }
    bases
        .last()
        .map(|&(bn, _, _)| bn)
        .unwrap_or(plan.spine.len() as u32)
}

/// Segment bases of every frontier entry plus a final (total nodes, total
/// kid slots, total bodies) sentinel; spine first, so the root is flat
/// index 0. Identical on every processor. Asserts snapshot capacity.
fn segment_bases<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    scratch: &MortonScratch,
    plan: &MortonPlan,
) -> Vec<(u32, u32, u32)> {
    let ns = plan.subs.len();
    let mut bases = Vec::with_capacity(ns + 1);
    let mut nn = plan.spine.len() as u32;
    let mut nk = plan.spine_kids_total as u32;
    let mut nb = 0u32;
    for (i, r) in plan.subs.iter().enumerate() {
        bases.push((nn, nk, nb));
        nn += scratch.ent_counts.load(env, ctx, 2 * i);
        nk += scratch.ent_counts.load(env, ctx, 2 * i + 1);
        nb += r.hi - r.lo;
    }
    bases.push((nn, nk, nb));
    assert!(
        (nn as usize) <= flat.node_capacity() && (nk as usize) <= flat.kid_capacity(),
        "flat snapshot capacity exceeded ({nn} nodes, {nk} kid slots)"
    );
    bases
}

/// Phase 4 (processor 0, after the post-`fill` barrier): emit the spine
/// cells, combining the published entry aggregates and already-summarized
/// spine children bottom-up (reverse pre-order) with the summarize-cell
/// arithmetic.
pub fn fill_spine<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    scratch: &MortonScratch,
    plan: &MortonPlan,
) {
    if plan.spine.is_empty() {
        return;
    }
    let bases = segment_bases(env, ctx, flat, scratch, plan);
    // Kid-slot offsets of each spine cell, in pre-order.
    let mut firsts = Vec::with_capacity(plan.spine.len());
    let mut kid_cur = 0u32;
    for (_, kids) in &plan.spine {
        firsts.push(kid_cur);
        kid_cur += kids.len() as u32;
    }
    // Reverse pre-order: every spine child (index > parent) is summarized
    // before its parent combines it.
    let mut agg: Vec<(f64, Vec3)> = vec![(0.0, Vec3::ZERO); plan.spine.len()];
    for j in (0..plan.spine.len()).rev() {
        let (r, kids) = &plan.spine[j];
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for (off, kid) in kids.iter().enumerate() {
            let (idx, m, com) = match *kid {
                SpineKid::Spine(j2) => {
                    let (m, com) = agg[j2 as usize];
                    (j2, m, com)
                }
                SpineKid::Sub(i) => {
                    let i = i as usize;
                    let m = scratch.ent_mass.load(env, ctx, 4 * i);
                    let com = Vec3::new(
                        scratch.ent_mass.load(env, ctx, 4 * i + 1),
                        scratch.ent_mass.load(env, ctx, 4 * i + 2),
                        scratch.ent_mass.load(env, ctx, 4 * i + 3),
                    );
                    (bases[i].0, m, com)
                }
            };
            flat.put_kid(env, ctx, (firsts[j] + off as u32) as usize, idx);
            mass += m;
            weighted += com * m;
        }
        env.compute(ctx, 40);
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        agg[j] = (mass, com);
        flat.put_node(
            env,
            ctx,
            j,
            FlatNode {
                com,
                mass,
                half: r.cube.half,
                first: firsts[j],
                tag: kids.len() as u32,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Cost-cut partition over the emitted body order
// ---------------------------------------------------------------------------

/// The MORTON partition pass: the flat tree's CSR body array *is* the
/// tree-traversal body order, so partitioning is a cost-weighted cut of
/// that order — the costzones idea without the tree walk. Each processor
/// copies its chunk of the order into `world.order`, publishes its chunk
/// cost sum, and after one barrier writes the `zone_start` entries whose
/// cost threshold is crossed inside its chunk (a unique writer per entry,
/// determined by the shared chunk-cost prefix alone). Caller barriers
/// afterwards.
pub fn partition<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    scratch: &MortonScratch,
    proc: usize,
) {
    let n = world.n;
    let p = env.num_procs();
    let (lo, hi) = chunk(n, p, proc);

    // Copy the chunk of the DFS body order out of the snapshot, caching
    // the per-body costs privately for the second scan.
    let mut costs = Vec::with_capacity(hi - lo);
    let mut sum = 0u64;
    for i in lo..hi {
        let b = flat.bodies.load(env, ctx, i);
        world.order.store(env, ctx, i, b);
        let c = world.cost.load(env, ctx, b as usize).max(1) as u64;
        costs.push(c);
        sum += c;
    }
    scratch.chunk_cost.store(env, ctx, proc, sum);
    env.compute(ctx, (hi - lo) as u64 * 2);
    env.barrier(ctx);

    // Identical private prefix of the chunk sums.
    let mut cbase = 0u64;
    let mut total = 0u64;
    for q in 0..p {
        let s = scratch.chunk_cost.load(env, ctx, q);
        if q < proc {
            cbase += s;
        }
        total += s;
    }
    let total = total.max(1);
    let zone_of = |prefix: u64| -> u64 {
        ((prefix as u128 * p as u128) / total as u128).min(p as u128 - 1) as u64
    };

    // A zone starts at the first body whose inclusive cost prefix reaches
    // its threshold; that body is in this chunk exactly when the zone of
    // the chunk-entry prefix is below it and the zone of the chunk-exit
    // prefix is not — so each `zone_start` entry has a unique writer.
    let mut prefix = cbase;
    let mut zprev = zone_of(prefix);
    for (off, &c) in costs.iter().enumerate() {
        prefix += c;
        let z = zone_of(prefix);
        for q in (zprev + 1)..=z {
            world
                .zone_start
                .store(env, ctx, q as usize, (lo + off) as u32);
        }
        zprev = z;
    }
    env.compute(ctx, (hi - lo) as u64 * 2);
    if proc == 0 {
        world.zone_start.store(env, ctx, 0, 0);
        world.zone_start.store(env, ctx, p, n as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::env::NativeEnv;
    use crate::harness::spmd;
    use crate::model::Model;

    fn sorted_pairs(env: &NativeEnv, bodies: &[Body]) -> Vec<(u64, u32)> {
        let world = World::new(env, bodies);
        let scratch = MortonScratch::new(env, bodies.len());
        let cube = {
            let bbox = crate::math::Aabb::from_points(bodies.iter().map(|b| b.pos));
            Cube::enclosing(&bbox)
        };
        spmd(env, |proc, ctx| {
            sort_keys(env, ctx, &world, &scratch, &cube, proc);
        });
        let (keys, ids) = scratch.sorted();
        (0..bodies.len())
            .map(|i| (keys.peek(i), ids.peek(i)))
            .collect()
    }

    #[test]
    fn radix_sort_orders_top_bits_at_any_proc_count() {
        let bodies = Model::Plummer.generate(257, 42);
        // The cooperative sort guarantees (top SORT_BITS, id) order.
        let reference: Vec<(u64, u32)> = {
            let bbox = crate::math::Aabb::from_points(bodies.iter().map(|b| b.pos));
            let cube = Cube::enclosing(&bbox);
            let mut v: Vec<(u64, u32)> = bodies
                .iter()
                .enumerate()
                .map(|(i, b)| (key_in_cube(b.pos, &cube), i as u32))
                .collect();
            v.sort_unstable_by_key(|&(key, id)| (key >> SORT_LOW_BIT, id));
            v
        };
        for procs in [1, 2, 3, 8] {
            let env = NativeEnv::new(procs);
            assert_eq!(
                sorted_pairs(&env, &bodies),
                reference,
                "radix sort diverged at {procs} procs"
            );
        }
    }

    #[test]
    fn split_partitions_a_range_exactly() {
        let env = NativeEnv::new(1);
        let bodies = Model::Plummer.generate(100, 7);
        let world = World::new(&env, &bodies);
        let scratch = MortonScratch::new(&env, bodies.len());
        let bbox = crate::math::Aabb::from_points(bodies.iter().map(|b| b.pos));
        let cube = Cube::enclosing(&bbox);
        let mut ctx = env.make_ctx(0);
        spmd(&env, |proc, ctx| {
            sort_keys(&env, ctx, &world, &scratch, &cube, proc);
        });
        let root = Range {
            lo: 0,
            hi: bodies.len() as u32,
            depth: 0,
            cube,
        };
        let (keys, _) = scratch.sorted();
        let parts = split(&env, &mut ctx, keys, &root);
        // The sub-ranges tile [0, n) in order and agree with each key's
        // top digit.
        let mut at = 0u32;
        for (oct, r) in &parts {
            assert_eq!(r.lo, at);
            for i in r.lo..r.hi {
                let k = keys.peek(i as usize);
                assert_eq!((k >> (3 * (MORTON_BITS - 1))) as usize, *oct);
            }
            at = r.hi;
        }
        assert_eq!(at, bodies.len() as u32);
    }

    #[test]
    fn private_derivation_tiles_and_counts_consistently() {
        // child_slices over an exactly-sorted pair list tiles the slice in
        // octant order at every depth down to a leaf, and count_pairs
        // agrees with an independent traversal.
        let bodies = Model::UniformSphere.generate(200, 3);
        let bbox = crate::math::Aabb::from_points(bodies.iter().map(|b| b.pos));
        let cube = Cube::enclosing(&bbox);
        let mut pairs: Vec<(u64, u32)> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (key_in_cube(b.pos, &cube), i as u32))
            .collect();
        pairs.sort_unstable();
        fn check(pairs: &[(u64, u32)], depth: u32, k: usize) -> (u32, u32) {
            if is_leaf_slice(pairs, depth, k) {
                return (1, 0);
            }
            let slices = child_slices(pairs, depth);
            let mut covered = 0;
            let (mut nn, mut nk) = (1, 0);
            for (_, range) in &slices {
                assert_eq!(range.start, covered, "child slices must tile");
                covered = range.end;
                let (a, b) = check(&pairs[range.clone()], depth + 1, k);
                nn += a;
                nk += b + 1;
            }
            assert_eq!(covered, pairs.len());
            (nn, nk)
        }
        assert_eq!(check(&pairs, 0, 8), count_pairs(&pairs, 0, 8));
    }
}
