//! The ORIG and LOCAL tree-building algorithms.
//!
//! Both load bodies *directly* into the single shared tree, locking cells as
//! they are modified (paper §2.1–2.2). They differ only in data structures:
//!
//! * **ORIG** (SPLASH): one contiguous global cell/leaf array shared by all
//!   processors, with the allocation counters and per-processor bookkeeping
//!   variables adjacent in shared memory — heavy false sharing and no
//!   allocation locality ([`TreeLayout::GlobalArena`]).
//! * **LOCAL** (SPLASH-2): each processor allocates from its own arena kept
//!   contiguous in its local memory, with private counters
//!   ([`TreeLayout::PerProcessor`]).
//!
//! The insertion algorithm itself is identical, which is exactly the paper's
//! point: on hardware-coherent machines the data-structure change alone
//! closes most of the gap, while on SVM platforms both are hopeless because
//! of lock frequency.

use crate::algorithms::common::{create_root, insert_locked};
use crate::env::Env;
use crate::math::Cube;
use crate::tree::types::SharedTree;
use crate::world::World;

/// Tree-build phase of ORIG/LOCAL for one processor. The caller has already
/// run the bounds phase; `cube` is the global root cube. Ends un-barriered:
/// the application driver barriers after every build phase.
pub fn build<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    proc: usize,
    cube: Cube,
) {
    // Reset this processor's allocation bookkeeping, publish the root.
    tree.reset_for_rebuild(env, ctx, proc);
    env.barrier(ctx);
    if proc == 0 {
        create_root(env, ctx, tree, cube);
    }
    env.barrier(ctx);

    let root = tree.root.load(env, ctx, 0);
    let arena = tree.arena_of(proc);
    let (s, e) = world.zone(proc);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        insert_locked(env, ctx, tree, world, arena, proc, b, root, cube);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::{bounds_phase, com_pass};
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::tree::validate;
    use crate::tree::{SeqTree, SharedTree, TreeLayout};
    use crate::world::World;

    fn run_build(
        n: usize,
        p: usize,
        k: usize,
        layout: TreeLayout,
    ) -> (NativeEnv, SharedTree, World, Vec<crate::body::Body>) {
        let env = NativeEnv::new(p);
        let bodies = Model::Plummer.generate(n, 99);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, k, layout);
        std::thread::scope(|s| {
            for proc in 0..p {
                let (env, world, tree) = (&env, &world, &tree);
                s.spawn(move || {
                    let mut ctx = env.make_ctx(proc);
                    let cube = bounds_phase(env, &mut ctx, world, proc);
                    build(env, &mut ctx, tree, world, proc, cube);
                    env.barrier(&mut ctx);
                    com_pass(env, &mut ctx, tree, world, proc, 0);
                    env.barrier(&mut ctx);
                });
            }
        });
        (env, tree, world, bodies)
    }

    fn check(n: usize, p: usize, k: usize, layout: TreeLayout) {
        let (_env, tree, world, bodies) = run_build(n, p, k, layout);
        let summary = validate::validate(&tree, &world.positions(), &world.masses(), true)
            .unwrap_or_else(|e| panic!("invalid tree (n={n} p={p} k={k} {layout:?}): {e}"));
        assert_eq!(summary.bodies, n);
        let reference = SeqTree::build(&bodies, k);
        validate::matches_reference(&tree, &reference)
            .unwrap_or_else(|e| panic!("structure mismatch (n={n} p={p} k={k} {layout:?}): {e}"));
    }

    #[test]
    fn local_matches_reference_single_proc() {
        check(500, 1, 8, TreeLayout::PerProcessor);
    }

    #[test]
    fn local_matches_reference_parallel() {
        check(2000, 4, 8, TreeLayout::PerProcessor);
    }

    #[test]
    fn orig_matches_reference_parallel() {
        check(2000, 4, 8, TreeLayout::GlobalArena);
    }

    #[test]
    fn works_with_k1() {
        check(800, 4, 1, TreeLayout::PerProcessor);
    }

    #[test]
    fn works_with_many_procs() {
        check(3000, 8, 4, TreeLayout::GlobalArena);
    }

    #[test]
    fn tiny_inputs() {
        for n in [1usize, 2, 7] {
            check(n, 4, 2, TreeLayout::PerProcessor);
        }
    }

    #[test]
    fn repeated_builds_reuse_storage() {
        // Two consecutive builds (as in a multi-step run) must both validate.
        let p = 4;
        let n = 1500;
        let env = NativeEnv::new(p);
        let bodies = Model::TwoClusterCollision.generate(n, 5);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, 8, TreeLayout::PerProcessor);
        for step in 0..3u32 {
            std::thread::scope(|s| {
                for proc in 0..p {
                    let (env, world, tree) = (&env, &world, &tree);
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(proc);
                        let cube = bounds_phase(env, &mut ctx, world, proc);
                        build(env, &mut ctx, tree, world, proc, cube);
                        env.barrier(&mut ctx);
                        com_pass(env, &mut ctx, tree, world, proc, step);
                        env.barrier(&mut ctx);
                    });
                }
            });
            validate::validate(&tree, &world.positions(), &world.masses(), true)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
}
