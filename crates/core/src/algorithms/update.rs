//! The UPDATE tree-building algorithm (paper §2.3).
//!
//! Particle distributions evolve slowly, so instead of rebuilding the tree
//! every time step the tree is updated incrementally: each processor checks
//! its bodies against the (rescaled) bounds of the leaf that held them last
//! step and moves only the bodies that crossed a boundary — walking up from
//! the old leaf until an enclosing cell is found, then reinserting downward
//! with locks. Empty leaves are reclaimed. The whole space grows or shrinks
//! each step, so all node bounds are first rescaled by the affine map from
//! the old root cube to the new one (the relative positions that cells
//! represent stay fixed, as the paper describes).
//!
//! Reclamation can leave *husk* cells (internal cells whose children were
//! all removed); they stay in the tree as valid empty cells, are recorded in
//! per-processor husk lists, and are completed explicitly during the CoM
//! pass so that upward propagation still terminates.

use crate::algorithms::common::{com_pass, insert_locked, propagate_com};
use crate::algorithms::direct;
use crate::env::{Env, Placement};
use crate::math::{Cube, Vec3};
use crate::shared::{SharedAtomicVec, SharedVec};
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::World;

/// Per-run scratch state of the UPDATE algorithm.
pub struct UpdateScratch {
    /// Per-processor lists of husk cells (encoded refs). Entries persist —
    /// a husk that regains children is simply skipped.
    pub husk_list: Vec<SharedVec<u32>>,
    pub husk_len: Vec<SharedAtomicVec>,
}

impl UpdateScratch {
    pub fn new<E: Env>(env: &E, n: usize) -> UpdateScratch {
        let p = env.num_procs();
        let cap = (n.max(64) * 2 / p.max(1) + 1024).min(1 << 24);
        UpdateScratch {
            husk_list: (0..p)
                .map(|q| SharedVec::new(env, cap, 0u32, Placement::Local(q)))
                .collect(),
            husk_len: (0..p)
                .map(|q| SharedAtomicVec::new(env, 1, 0, Placement::Local(q)))
                .collect(),
        }
    }
}

/// Tree-build phase of UPDATE for one processor. Step 0 performs a full
/// LOCAL-style build; later steps rescale and move.
#[allow(clippy::too_many_arguments)]
pub fn build<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    scratch: &UpdateScratch,
    proc: usize,
    step: u32,
    cube: Cube,
) {
    if step == 0 {
        if proc == 0 {
            scratch.husk_len.iter().for_each(|h| h.poke(0, 0));
        }
        direct::build(env, ctx, tree, world, proc, cube);
        return;
    }

    // ---- Choose the step's root cube. Recentering the root every step
    // would translate every node's bounds and turn stationary bodies into
    // artificial "movers", so keep the previous cube whenever it still
    // contains the new one and is not wastefully oversized (the relative
    // positions that cells represent then stay *exactly* the same and the
    // rescale pass degenerates to a no-op).
    let old = tree.root_cube.load(env, ctx, 0);
    let off = cube.center - old.center;
    // Smallest half-size of an old-centered cube covering the new one.
    let needed = off.x.abs().max(off.y.abs()).max(off.z.abs()) + cube.half;
    let cube = if needed <= old.half && old.half <= 2.5 * cube.half {
        old
    } else {
        // Grow (or shrink) about the *same* center with 10% slack, so the
        // expensive rescale-everything step happens once per many steps and
        // never translates the tree.
        Cube::new(old.center, needed * 1.10)
    };
    if cube == old {
        env.barrier(ctx);
        env.barrier(ctx);
        let (s, e) = world.zone(proc);
        for i in s..e {
            let b = world.order.load(env, ctx, i);
            move_body(env, ctx, tree, world, scratch, proc, b);
        }
        return;
    }

    // ---- Rescale every node of my arena by the old-root -> new-root map.
    let scale = cube.half / old.half;
    let remap = |c: Vec3| cube.center + (c - old.center) * scale;
    let arena = &tree.arenas[tree.arena_of(proc)];
    let ncells = arena.next_cell.load(env, ctx, 0) as usize;
    for i in 0..ncells {
        arena.cells.update(env, ctx, i, |c| {
            c.center = remap(c.center);
            c.half *= scale;
        });
        env.compute(ctx, 6);
    }
    let nleaves = arena.next_leaf.load(env, ctx, 0) as usize;
    let arena_id = tree.arena_of(proc);
    for i in 0..nleaves {
        let cube = arena.leaves.update(env, ctx, i, |l| {
            l.center = remap(l.center);
            l.half *= scale;
            l.cube()
        });
        tree.set_leaf_bounds(
            env,
            ctx,
            crate::tree::types::NodeRef::leaf(arena_id, i),
            cube,
        );
        env.compute(ctx, 6);
    }
    env.barrier(ctx);
    if proc == 0 {
        tree.root_cube.store(env, ctx, 0, cube);
    }
    env.barrier(ctx);

    // ---- Move bodies that crossed their leaf boundary.
    let (s, e) = world.zone(proc);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        move_body(env, ctx, tree, world, scratch, proc, b);
    }
}

/// Check one body against its leaf; relocate it if it moved out.
fn move_body<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    scratch: &UpdateScratch,
    proc: usize,
    body: u32,
) {
    let pos = world.pos.load(env, ctx, body as usize);
    // Lock-free containment check (the common case: the body did not cross
    // its leaf boundary). The bounds mirror of a leaf is only rewritten
    // after all of its bodies' `body_leaf` forwarding pointers have been
    // updated, so re-reading `body_leaf` after the bounds read detects any
    // concurrent retirement/reuse of the slot.
    let leaf0 = NodeRef(world.body_leaf.load(env, ctx, body as usize));
    if leaf0.is_leaf() {
        let cube = tree.leaf_bounds(env, ctx, leaf0);
        if NodeRef(world.body_leaf.load(env, ctx, body as usize)) == leaf0 && cube.contains(pos) {
            return;
        }
    }
    loop {
        let leaf = NodeRef(world.body_leaf.load(env, ctx, body as usize));
        debug_assert!(leaf.is_leaf(), "body {body} has no leaf");
        let parent = tree.leaf_parent(env, ctx, leaf);
        if parent.is_null() {
            // The leaf was retired under us (concurrent subdivision moved
            // the body); re-read the forwarding pointer.
            continue;
        }
        env.lock(ctx, parent.lock_id());
        // Re-verify the chain under the lock.
        if tree.leaf_parent(env, ctx, leaf) != parent
            || NodeRef(world.body_leaf.load(env, ctx, body as usize)) != leaf
        {
            env.unlock(ctx, parent.lock_id());
            continue;
        }
        let l = tree.load_leaf(env, ctx, leaf);
        debug_assert!(l.in_use);
        if l.cube().contains(pos) {
            env.unlock(ctx, parent.lock_id());
            return; // still home — the common case
        }
        // Remove the body from the leaf.
        tree.update_leaf(env, ctx, leaf, |out| {
            let slot = out
                .body_slice()
                .iter()
                .position(|&x| x == body)
                .expect("body missing from its leaf");
            out.bodies[slot] = out.bodies[out.n as usize - 1];
            out.n -= 1;
        });
        let now_empty = l.n == 1;
        if now_empty {
            // Reclaim the leaf and unlink it from its parent.
            let oct = l.octant_in_parent as usize;
            debug_assert_eq!(tree.child(env, ctx, parent, oct), leaf);
            tree.set_child(env, ctx, parent, oct, NodeRef::NULL);
            let before = tree.pending_sub(env, ctx, parent, 1);
            tree.free_leaf(env, ctx, leaf);
            if before == 1 {
                // Parent lost its last child: record it as a husk so the CoM
                // pass can still complete it.
                let listed = tree.update_cell(env, ctx, parent, |c| {
                    let was = c.husk_listed;
                    c.husk_listed = true;
                    was
                });
                if !listed {
                    let len = scratch.husk_len[proc].fetch_add(env, ctx, 0, 1) as usize;
                    assert!(len < scratch.husk_list[proc].len(), "husk list overflow");
                    scratch.husk_list[proc].store(env, ctx, len, parent.0);
                }
            }
        }
        env.unlock(ctx, parent.lock_id());

        // Walk up to the first ancestor whose (rescaled) cube contains the
        // body, then reinsert downward with locks.
        let mut cell = parent;
        loop {
            // Unordered read: another processor may concurrently set
            // `husk_listed` on this cell under its lock. The walk-up only
            // uses the geometric fields and the parent link, which are fixed
            // for the lifetime of the cell; `insert_locked` re-validates
            // under the proper locks before mutating anything.
            let c = tree.load_cell_relaxed(env, ctx, cell);
            if c.cube().contains(pos) {
                insert_locked(
                    env,
                    ctx,
                    tree,
                    world,
                    tree.arena_of(proc),
                    proc,
                    body,
                    cell,
                    c.cube(),
                );
                return;
            }
            if c.parent.is_null() {
                // Numerical edge: fall back to the root cube.
                let cube = tree.root_cube.load(env, ctx, 0);
                insert_locked(
                    env,
                    ctx,
                    tree,
                    world,
                    tree.arena_of(proc),
                    proc,
                    body,
                    cell,
                    cube,
                );
                return;
            }
            cell = c.parent;
            env.compute(ctx, 8);
        }
    }
}

/// Center-of-mass phase for UPDATE: the regular leaf-triggered pass plus the
/// explicit completion of childless husk cells.
pub fn com_phase<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    scratch: &UpdateScratch,
    proc: usize,
    step: u32,
) {
    // Husks first: their parents' pending counters include them, so they
    // must contribute a completion exactly once per step.
    let len = scratch.husk_len[proc].load(env, ctx, 0) as usize;
    for i in 0..len {
        let cell = NodeRef(scratch.husk_list[proc].load(env, ctx, i));
        let has_children = (0..8).any(|oct| !tree.child(env, ctx, cell, oct).is_null());
        if has_children {
            continue; // regained children; completes via the normal path
        }
        tree.update_cell(env, ctx, cell, |c| {
            c.mass = 0.0;
            c.com = Vec3::ZERO;
            c.cost = 0;
            c.count = 0;
        });
        let parent = tree.peek_cell(cell).parent;
        propagate_com(env, ctx, tree, parent, step);
    }
    com_pass(env, ctx, tree, world, proc, step);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::bounds_phase;
    use crate::env::NativeEnv;
    use crate::model::Model;
    use crate::rng::SmallRng;
    use crate::tree::validate::{validate_with, ValidateOpts};
    use crate::tree::{SharedTree, TreeLayout};
    use crate::world::World;

    /// Drive `steps` UPDATE tree builds, randomly perturbing positions
    /// between steps to force movement.
    fn run_steps(n: usize, p: usize, k: usize, steps: u32, drift: f64) {
        let env = NativeEnv::new(p);
        let bodies = Model::Plummer.generate(n, 31);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, k, TreeLayout::PerProcessor);
        let scratch = UpdateScratch::new(&env, n);
        let mut rng = SmallRng::seed_from_u64(4);
        for step in 0..steps {
            std::thread::scope(|s| {
                for proc in 0..p {
                    let (env, world, tree, scratch) = (&env, &world, &tree, &scratch);
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(proc);
                        let cube = bounds_phase(env, &mut ctx, world, proc);
                        build(env, &mut ctx, tree, world, scratch, proc, step, cube);
                        env.barrier(&mut ctx);
                        com_phase(env, &mut ctx, tree, world, scratch, proc, step);
                        env.barrier(&mut ctx);
                    });
                }
            });
            let summary = validate_with(
                &tree,
                &world.positions(),
                &world.masses(),
                ValidateOpts {
                    check_summaries: true,
                    allow_empty_cells: step > 0,
                },
            )
            .unwrap_or_else(|e| panic!("step {step}: invalid UPDATE tree: {e}"));
            assert_eq!(summary.bodies, n, "step {step}");
            // Perturb for the next step.
            if drift > 0.0 {
                for i in 0..n {
                    let jitter = crate::math::Vec3::new(
                        rng.gen_range(-drift, drift),
                        rng.gen_range(-drift, drift),
                        rng.gen_range(-drift, drift),
                    );
                    world.pos.poke(i, world.pos.peek(i) + jitter);
                }
            }
        }
    }

    #[test]
    fn containment_fast_path_avoids_locks() {
        use crate::algorithms::common::bounds_phase;
        use crate::env::{Env as _, NativeEnv};
        use crate::model::Model;
        use crate::tree::{SharedTree, TreeLayout};
        use crate::world::World;
        // Build once, then run a no-motion incremental step: the containment
        // fast path must take zero locks.
        let env = NativeEnv::new(2);
        let n = 400;
        let bodies = Model::Plummer.generate(n, 99);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, 8, TreeLayout::PerProcessor);
        let scratch = UpdateScratch::new(&env, n);
        for step in 0..2u32 {
            let locks: u64 = std::thread::scope(|s| {
                (0..2)
                    .map(|proc| {
                        let (env, world, tree, scratch) = (&env, &world, &tree, &scratch);
                        s.spawn(move || {
                            let mut ctx = env.make_ctx(proc);
                            let before = env.stats(&ctx).lock_acquires;
                            let cube = bounds_phase(env, &mut ctx, world, proc);
                            build(env, &mut ctx, tree, world, scratch, proc, step, cube);
                            env.barrier(&mut ctx);
                            com_phase(env, &mut ctx, tree, world, scratch, proc, step);
                            env.barrier(&mut ctx);
                            env.stats(&ctx).lock_acquires - before
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            if step > 0 {
                assert_eq!(locks, 0, "no-motion incremental step took {locks} locks");
            }
        }
    }

    #[test]
    fn step_zero_is_full_build() {
        run_steps(800, 4, 8, 1, 0.0);
    }

    #[test]
    fn small_drift_multiple_steps() {
        run_steps(1000, 4, 8, 4, 0.01);
    }

    #[test]
    fn large_drift_forces_many_moves() {
        run_steps(600, 4, 4, 4, 0.3);
    }

    #[test]
    fn k1_update() {
        run_steps(400, 4, 1, 3, 0.05);
    }

    #[test]
    fn single_proc_update() {
        run_steps(500, 1, 8, 3, 0.1);
    }

    #[test]
    fn no_drift_means_no_structure_change() {
        // With zero drift, step 1 must not move anything: the tree still
        // matches the fresh reference build.
        let env = NativeEnv::new(4);
        let n = 900;
        let bodies = Model::Plummer.generate(n, 8);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, n, 8, TreeLayout::PerProcessor);
        let scratch = UpdateScratch::new(&env, n);
        for step in 0..2u32 {
            std::thread::scope(|s| {
                for proc in 0..4 {
                    let (env, world, tree, scratch) = (&env, &world, &tree, &scratch);
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(proc);
                        let cube = bounds_phase(env, &mut ctx, world, proc);
                        build(env, &mut ctx, tree, world, scratch, proc, step, cube);
                        env.barrier(&mut ctx);
                        com_phase(env, &mut ctx, tree, world, scratch, proc, step);
                        env.barrier(&mut ctx);
                    });
                }
            });
        }
        let reference = crate::tree::SeqTree::build(&bodies, 8);
        crate::tree::validate::matches_reference(&tree, &reference).unwrap();
    }
}
