//! The five parallel tree-building algorithms of Shan & Singh (IPPS 1998),
//! a sixth sort-based bulk builder (MORTON), plus shared machinery and a
//! uniform dispatch layer.

pub mod common;
pub mod direct;
pub mod morton;
pub mod partree;
pub mod space;
pub mod update;

use crate::env::Env;
use crate::math::Cube;
use crate::tree::types::{SharedTree, TreeLayout};
use crate::world::World;

/// Which tree-building algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// SPLASH: shared global arrays, lock per modification.
    Orig,
    /// SPLASH-2: per-processor arenas, lock per modification.
    Local,
    /// Incremental tree update instead of rebuild.
    Update,
    /// Local trees merged into the global tree.
    Partree,
    /// Spatial re-partitioning; lock-free build.
    Space,
    /// Sort-based bulk construction: parallel radix sort of Morton keys,
    /// then the flat tree is derived directly from the sorted key array —
    /// no linked tree, no locks, no flatten pass.
    Morton,
}

impl Algorithm {
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Orig,
        Algorithm::Local,
        Algorithm::Update,
        Algorithm::Partree,
        Algorithm::Space,
        Algorithm::Morton,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Orig => "ORIG",
            Algorithm::Local => "LOCAL",
            Algorithm::Update => "UPDATE",
            Algorithm::Partree => "PARTREE",
            Algorithm::Space => "SPACE",
            Algorithm::Morton => "MORTON",
        }
    }

    /// The storage layout each algorithm historically uses. MORTON never
    /// builds the linked tree at all; its (unused) `SharedTree` is sized
    /// per-processor like the other scalable algorithms.
    pub fn layout(self) -> TreeLayout {
        match self {
            Algorithm::Orig => TreeLayout::GlobalArena,
            _ => TreeLayout::PerProcessor,
        }
    }

    /// Parse a case-insensitive name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_uppercase().as_str() {
            "ORIG" => Some(Algorithm::Orig),
            "LOCAL" => Some(Algorithm::Local),
            "UPDATE" => Some(Algorithm::Update),
            "PARTREE" | "MERGE" => Some(Algorithm::Partree),
            "SPACE" => Some(Algorithm::Space),
            "MORTON" => Some(Algorithm::Morton),
            _ => None,
        }
    }

    /// MORTON builds the flat snapshot directly and never populates the
    /// linked `SharedTree`; it requires the flat force walk and bypasses
    /// the build/com/flatten pipeline of the other five algorithms.
    pub fn builds_flat_directly(self) -> bool {
        self == Algorithm::Morton
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-run state of the selected algorithm (scratch arrays and parameters).
pub struct Builder {
    pub alg: Algorithm,
    pub space_threshold: usize,
    pub space_rebalance: f64,
    update_scratch: Option<update::UpdateScratch>,
    morton_scratch: Option<morton::MortonScratch>,
}

impl Builder {
    /// Create the builder for `alg` over `n` bodies; allocates any scratch
    /// the algorithm needs from `env`.
    pub fn new<E: Env>(env: &E, alg: Algorithm, n: usize, k: usize) -> Builder {
        let p = env.num_procs();
        Builder {
            alg,
            space_threshold: space::default_threshold(n, p, k),
            space_rebalance: space::DEFAULT_REBALANCE,
            update_scratch: match alg {
                Algorithm::Update => Some(update::UpdateScratch::new(env, n)),
                _ => None,
            },
            morton_scratch: match alg {
                Algorithm::Morton => Some(morton::MortonScratch::new(env, n)),
                _ => None,
            },
        }
    }

    /// The MORTON sort workspace; panics for other algorithms.
    pub fn morton_scratch(&self) -> &morton::MortonScratch {
        self.morton_scratch.as_ref().expect("MORTON scratch")
    }

    /// Override the SPACE subdivision threshold (ablation studies).
    pub fn with_space_threshold(mut self, threshold: usize) -> Builder {
        self.space_threshold = threshold.max(1);
        self
    }

    /// Override the SPACE cost-rebalance factor (`0.0` disables the extra
    /// refinement round for costly subspaces).
    pub fn with_space_rebalance(mut self, rebalance: f64) -> Builder {
        self.space_rebalance = rebalance.max(0.0);
        self
    }

    /// Execute the tree-build phase for one processor. Internally barriers
    /// as the algorithm requires; the caller barriers once more afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn build<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        tree: &SharedTree,
        world: &World,
        proc: usize,
        step: u32,
        cube: Cube,
    ) {
        match self.alg {
            Algorithm::Orig | Algorithm::Local => direct::build(env, ctx, tree, world, proc, cube),
            Algorithm::Partree => partree::build(env, ctx, tree, world, proc, cube),
            Algorithm::Space => space::build(
                env,
                ctx,
                tree,
                world,
                proc,
                cube,
                self.space_threshold,
                self.space_rebalance,
            ),
            Algorithm::Update => {
                let scratch = self.update_scratch.as_ref().expect("UPDATE scratch");
                update::build(env, ctx, tree, world, scratch, proc, step, cube)
            }
            Algorithm::Morton => {
                unreachable!("MORTON builds the flat tree directly (see MortonTreeStage)")
            }
        }
    }

    /// Execute the center-of-mass phase for one processor (between
    /// barriers).
    pub fn com<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        tree: &SharedTree,
        world: &World,
        proc: usize,
        step: u32,
    ) {
        match self.alg {
            Algorithm::Update => {
                let scratch = self.update_scratch.as_ref().expect("UPDATE scratch");
                update::com_phase(env, ctx, tree, world, scratch, proc, step)
            }
            Algorithm::Morton => {
                unreachable!("MORTON computes centers of mass during emission")
            }
            _ => common::com_pass(env, ctx, tree, world, proc, step),
        }
    }

    /// Whether validation should tolerate empty husk cells.
    pub fn may_leave_husks(&self) -> bool {
        self.alg == Algorithm::Update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
            assert_eq!(Algorithm::parse(&alg.name().to_lowercase()), Some(alg));
        }
        assert_eq!(Algorithm::parse("MERGE"), Some(Algorithm::Partree));
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn layouts() {
        assert_eq!(Algorithm::Orig.layout(), TreeLayout::GlobalArena);
        for alg in [
            Algorithm::Local,
            Algorithm::Update,
            Algorithm::Partree,
            Algorithm::Space,
            Algorithm::Morton,
        ] {
            assert_eq!(alg.layout(), TreeLayout::PerProcessor);
        }
    }

    #[test]
    fn only_morton_builds_flat_directly() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.builds_flat_directly(), alg == Algorithm::Morton);
        }
    }
}
