//! The best sequential version of the application — no locks, no shared
//! memory bookkeeping — used as the baseline for every speedup the
//! experiments report (the paper's Table 1), and as the physics oracle.

use crate::body::Body;
use crate::force::{seq_accel, ForceParams};
use crate::math::Vec3;
use crate::tree::seq::SeqTree;
use std::time::Instant;

/// Wall-clock time (nanoseconds) spent in each phase of a sequential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqTimes {
    pub tree: u64,
    pub force: u64,
    pub update: u64,
}

impl SeqTimes {
    pub fn total(&self) -> u64 {
        self.tree + self.force + self.update
    }
}

/// Advance `bodies` by one time step sequentially; returns phase times.
pub fn seq_step(bodies: &mut [Body], k: usize, params: &ForceParams, dt: f64) -> SeqTimes {
    let t0 = Instant::now();
    let tree = SeqTree::build(bodies, k);
    let t1 = Instant::now();
    let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let accs: Vec<Vec3> = (0..bodies.len() as u32)
        .map(|b| seq_accel(&tree, &pos, &mass, b, params).0)
        .collect();
    let t2 = Instant::now();
    for (b, acc) in bodies.iter_mut().zip(accs) {
        b.vel += acc * dt;
        b.pos += b.vel * dt;
    }
    let t3 = Instant::now();
    SeqTimes {
        tree: (t1 - t0).as_nanos() as u64,
        force: (t2 - t1).as_nanos() as u64,
        update: (t3 - t2).as_nanos() as u64,
    }
}

/// Run `steps` sequential time steps; returns the summed phase times.
pub fn seq_run(
    bodies: &mut [Body],
    k: usize,
    params: &ForceParams,
    dt: f64,
    steps: usize,
) -> SeqTimes {
    let mut acc = SeqTimes::default();
    for _ in 0..steps {
        let t = seq_step(bodies, k, params, dt);
        acc.tree += t.tree;
        acc.force += t.force;
        acc.update += t.update;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::total_energy;
    use crate::model::Model;

    #[test]
    fn tree_build_is_small_fraction_sequentially() {
        // The paper's premise: tree building takes < a few percent of a
        // sequential step (force calculation dominates).
        let mut bodies = Model::Plummer.generate(4000, 5);
        let params = ForceParams {
            theta: 0.8,
            ..Default::default()
        };
        let t = seq_run(&mut bodies, 8, &params, 0.01, 2);
        let frac = t.tree as f64 / t.total() as f64;
        assert!(
            frac < 0.25,
            "sequential tree fraction {frac} unexpectedly high"
        );
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut bodies = Model::Plummer.generate(600, 12);
        let params = ForceParams {
            theta: 0.5,
            eps: 0.05,
            gravity: 1.0,
        };
        let e0 = total_energy(&bodies, params.gravity, params.eps);
        seq_run(&mut bodies, 8, &params, 0.005, 10);
        let e1 = total_energy(&bodies, params.gravity, params.eps);
        let drift = ((e1 - e0) / e0.abs()).abs();
        assert!(drift < 0.05, "energy drift {drift} over 10 steps");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut bodies = Model::Plummer.generate(500, 3);
        let params = ForceParams::default();
        let p0: crate::math::Vec3 = bodies.iter().map(|b| b.vel * b.mass).sum();
        seq_run(&mut bodies, 8, &params, 0.01, 5);
        let p1: crate::math::Vec3 = bodies.iter().map(|b| b.vel * b.mass).sum();
        // BH forces are not exactly pairwise-symmetric, so allow a small drift.
        assert!((p1 - p0).norm() < 0.02, "momentum drift {:?}", p1 - p0);
    }
}
