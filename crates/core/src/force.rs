//! The Barnes-Hut force-computation phase.
//!
//! Each body traverses the summarized octree from the root: a cell far
//! enough away (opening criterion `side/dist < θ`) is approximated by its
//! center of mass; otherwise its children are visited recursively. Gravity
//! is Plummer-softened. The per-body interaction count is recorded as the
//! body's cost for the next step's costzones partitioning — force
//! computation is >97% of sequential time, which is exactly why the paper's
//! tree-building bottleneck on commodity platforms is so surprising.
//!
//! Two kernels implement the phase over the flat snapshot:
//!
//! * [`force_phase`] — the reference one-body-at-a-time explicit-stack
//!   walk (kept as the `group_size = 0` ablation);
//! * [`force_phase_grouped`] — the batched traversal/evaluation split:
//!   one tree walk per group of `group_size` consecutive bodies in the
//!   Morton-sorted zone order emits a shared interaction list into
//!   per-processor [`ForceScratch`], then a branch-free
//!   structure-of-arrays loop applies the list to every member.

use crate::env::{Env, Placement, Region};
use crate::math::Vec3;
use crate::shared::SharedVec;
use crate::tree::flat::FlatTree;
use crate::tree::seq::{SeqNode, SeqTree};
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::World;

/// Physics and accuracy parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForceParams {
    /// Barnes-Hut opening angle θ; smaller is more accurate and more work.
    pub theta: f64,
    /// Plummer softening length ε.
    pub eps: f64,
    /// Gravitational constant G.
    pub gravity: f64,
}

impl Default for ForceParams {
    fn default() -> Self {
        ForceParams {
            theta: 1.0,
            eps: 0.05,
            gravity: 1.0,
        }
    }
}

/// Cycle cost charged per body-body or body-cell interaction.
const INTERACT_CYCLES: u64 = 45;
/// Cycle cost charged per visited (opened) cell.
const VISIT_CYCLES: u64 = 10;

/// Pairwise softened-gravity acceleration with a precomputed ε² — the form
/// the hot loop uses (ε² and θ² are hoisted out of the walk; the arithmetic
/// is identical to computing `eps * eps` in place, so results stay bitwise
/// equal to the historical formula).
#[inline]
pub fn pair_accel_eps2(pos: Vec3, src: Vec3, m: f64, gravity: f64, eps2: f64) -> Vec3 {
    let d = src - pos;
    let r2 = d.norm_sq() + eps2;
    let r = r2.sqrt();
    d * (gravity * m / (r2 * r))
}

/// Pairwise softened-gravity acceleration on a body at `pos` from mass `m`
/// at `src`.
#[inline]
pub fn pair_accel(pos: Vec3, src: Vec3, m: f64, params: &ForceParams) -> Vec3 {
    pair_accel_eps2(pos, src, m, params.gravity, params.eps * params.eps)
}

/// The Barnes-Hut opening criterion every walker shares: a cell of side
/// `side` whose center of mass lies at squared distance `d2` is accepted
/// (approximated by its monopole) iff `side² < θ²·d2`.
#[inline]
fn cell_accepted(side: f64, theta2: f64, d2: f64) -> bool {
    side * side < theta2 * d2
}

/// Opening criterion plus monopole interaction in one place, so
/// [`force_phase`], [`force_phase_recursive`]'s `body_force` and
/// `seq_walk` cannot drift: `Some(accel)` if the cell is accepted under
/// θ², `None` if it must be opened. The arithmetic (squared distance,
/// criterion, then [`pair_accel_eps2`]) is exactly the historical inline
/// sequence, so accepted-cell accelerations stay bitwise identical.
#[inline]
fn cell_interaction(
    pos: Vec3,
    com: Vec3,
    mass: f64,
    side: f64,
    theta2: f64,
    gravity: f64,
    eps2: f64,
) -> Option<Vec3> {
    let d2 = pos.dist_sq(com);
    if cell_accepted(side, theta2, d2) {
        Some(pair_accel_eps2(pos, com, mass, gravity, eps2))
    } else {
        None
    }
}

/// Force phase for one processor over the flat snapshot: an iterative,
/// explicit-stack walk with ε² and θ² hoisted out of the loop. Visits
/// children in octant order (pushed in reverse), i.e. the exact pre-order
/// DFS of [`force_phase_recursive`], so accelerations are bitwise
/// identical. Kept as the `group_size = 0` ablation/reference for
/// [`force_phase_grouped`]. Caller barriers afterwards.
pub fn force_phase<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    params: &ForceParams,
    proc: usize,
) {
    let theta2 = params.theta * params.theta;
    let eps2 = params.eps * params.eps;
    let (s, e) = world.zone(proc);
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let pos = world.pos.load(env, ctx, b as usize);
        let mut acc = Vec3::ZERO;
        let mut interactions = 0u32;
        stack.clear();
        stack.push(0); // the root is always flat index 0
        while let Some(idx) = stack.pop() {
            let node = flat.nodes.load(env, ctx, idx as usize);
            if node.is_leaf() {
                let first = node.first as usize;
                for j in first..first + node.count() as usize {
                    let ob = flat.bodies.load(env, ctx, j);
                    if ob == b {
                        continue;
                    }
                    let opos = world.pos.load(env, ctx, ob as usize);
                    let om = world.mass.load(env, ctx, ob as usize);
                    acc += pair_accel_eps2(pos, opos, om, params.gravity, eps2);
                    interactions += 1;
                    env.compute(ctx, INTERACT_CYCLES);
                }
                continue;
            }
            env.compute(ctx, VISIT_CYCLES);
            let side = 2.0 * node.half;
            if let Some(a) =
                cell_interaction(pos, node.com, node.mass, side, theta2, params.gravity, eps2)
            {
                acc += a;
                interactions += 1;
                env.compute(ctx, INTERACT_CYCLES);
                continue;
            }
            let first = node.first as usize;
            for j in (first..first + node.count() as usize).rev() {
                stack.push(flat.kids.load(env, ctx, j));
            }
        }
        world.acc.store(env, ctx, b as usize, acc);
        // Exact interaction count: costzones guards against zero at read
        // time, so no floor is applied here.
        world.cost.store(env, ctx, b as usize, interactions);
    }
}

// ---------------------------------------------------------------------------
// Batched traversal/evaluation kernel.
// ---------------------------------------------------------------------------

/// Safety margin on the group-box squared distance bounds: the accept-all
/// threshold shrinks by this factor and the open-all threshold grows by
/// it, so floating-point rounding in the box clamp arithmetic can never
/// contradict a member's own (exact, squared-form) criterion. Cells
/// inside the margin band fall into the mixed case, which resolves every
/// member exactly — the margin affects performance only, never results.
const GROUP_MARGIN: f64 = 1e-9;

/// Accumulator-lane width of the batched evaluation loop. The default 4
/// matches one AVX2 `f64` vector; the `simd` feature widens it to 8 (two
/// vectors in flight). The lane count only changes the summation grouping
/// at `group_size > 1`, so builds with different widths agree to the same
/// tolerance as any other group size — and `group_size ≤ 1` is bitwise
/// identical in both.
#[cfg(not(feature = "simd"))]
pub const EVAL_LANES: usize = 4;
/// Accumulator-lane width of the batched evaluation loop (`simd` build).
#[cfg(feature = "simd")]
pub const EVAL_LANES: usize = 8;

/// Aggregate statistics of one processor's batched force phase:
/// `interactions / list_entries` is the list-reuse factor (approaches the
/// group size for spatially compact groups) and `list_entries / groups`
/// the mean interaction-list length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForceListStats {
    /// Group traversals performed (interaction lists built).
    pub groups: u64,
    /// Total entries emitted across all lists.
    pub list_entries: u64,
    /// Total pair interactions evaluated from the lists.
    pub interactions: u64,
}

impl ForceListStats {
    /// Merge another processor's (or stage's) statistics into this one.
    pub fn accumulate(&mut self, other: &ForceListStats) {
        self.groups += other.groups;
        self.list_entries += other.list_entries;
        self.interactions += other.interactions;
    }
}

/// Reusable per-processor SoA scratch for the batched force kernel's
/// interaction lists, tagged [`Region::ForceList`] so attribution charges
/// list traffic to its own region. Capacity is `node_capacity + n`: a
/// traversal emits at most one entry per tree node (accepted cells) plus
/// one per body (leaf members), so a list can never overflow.
pub struct ForceScratch {
    rows: Vec<ForceRow>,
    cap: usize,
}

/// One processor's shared interaction list, structure-of-arrays
/// `(x, y, z, mass)`. One buffer holds both halves of a group's list:
/// **dense** entries (every member applies them) grow up from index 0 and
/// **partial** entries (some members apply them, per a bitmask kept at the
/// emitting processor) grow down from the capacity — their sum is bounded
/// by `nodes + bodies`, so the halves can never collide. Entries carry no
/// id: a member's own body in the dense half contributes exactly zero
/// (`dx = dy = dz = 0`, and the `r2` guard keeps the scale finite).
struct ForceRow {
    xs: SharedVec<f64>,
    ys: SharedVec<f64>,
    zs: SharedVec<f64>,
    ms: SharedVec<f64>,
}

impl ForceScratch {
    /// Allocate one list row per processor, placed processor-local.
    pub fn new<E: Env>(env: &E, flat: &FlatTree, n: usize, procs: usize) -> Self {
        let cap = flat.node_capacity() + n;
        let rows: Vec<ForceRow> = (0..procs)
            .map(|q| {
                let row = ForceRow {
                    xs: SharedVec::new(env, cap, 0.0, Placement::Local(q)),
                    ys: SharedVec::new(env, cap, 0.0, Placement::Local(q)),
                    zs: SharedVec::new(env, cap, 0.0, Placement::Local(q)),
                    ms: SharedVec::new(env, cap, 0.0, Placement::Local(q)),
                };
                row.xs.tag(env, Region::ForceList);
                row.ys.tag(env, Region::ForceList);
                row.zs.tag(env, Region::ForceList);
                row.ms.tag(env, Region::ForceList);
                row
            })
            .collect();
        ForceScratch { rows, cap }
    }

    /// Entry capacity of each per-processor list.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Zero every list — allocation hygiene for engine reuse across jobs.
    pub fn reset(&self) {
        for row in &self.rows {
            for k in 0..self.cap {
                row.xs.poke(k, 0.0);
                row.ys.poke(k, 0.0);
                row.zs.poke(k, 0.0);
                row.ms.poke(k, 0.0);
            }
        }
    }
}

/// Store one emitted interaction-list entry's four SoA components at slot
/// `k` of the processor's scratch row. The stores are timed — simulated
/// platforms see the emission traffic under [`Region::ForceList`] — and
/// the evaluation loops later stream the same slots back as plain slices
/// ([`SharedVec::peek_slice`]), so the list is written exactly once.
#[inline]
fn emit_entry<E: Env>(env: &E, ctx: &mut E::Ctx, row: &ForceRow, k: usize, p: Vec3, m: f64) {
    row.xs.store(env, ctx, k, p.x);
    row.ys.store(env, ctx, k, p.y);
    row.zs.store(env, ctx, k, p.z);
    row.ms.store(env, ctx, k, m);
}

/// The widest group the kernel supports: one bit per member in the
/// per-entry `u64` application mask. Larger configured sizes are clamped.
pub const MAX_GROUP_SIZE: usize = 64;

/// The half-open order-index window of the interaction-list group
/// containing order index `i`: groups are aligned to absolute multiples
/// of `group_size` (clamped to [`MAX_GROUP_SIZE`]) and clipped to `n`,
/// independent of any zone boundary. Which bodies share a list is
/// therefore a function of `(i, group_size, n)` alone — the property
/// `tests/flat_force.rs` fuzzes.
pub fn group_window(i: usize, group_size: usize, n: usize) -> (usize, usize) {
    let gs = group_size.clamp(1, MAX_GROUP_SIZE);
    let w0 = i - i % gs;
    (w0, (w0 + gs).min(n))
}

/// The group windows a zone `[s, e)` participates in, as `(w0, w1, a0,
/// a1)`: the full window `[w0, w1)` the traversal covers and the
/// sub-range `[a0, a1)` this zone's owner applies the list to. A zone cut
/// can split a window; both owners then traverse the identical full
/// window (reads only, barrier-separated from the writes that produced
/// them) and apply disjoint halves — group membership never depends on
/// the partition, which keeps grouped runs processor-count independent
/// whenever the underlying tree is.
pub fn zone_group_windows(
    s: usize,
    e: usize,
    group_size: usize,
    n: usize,
) -> Vec<(usize, usize, usize, usize)> {
    let gs = group_size.clamp(1, MAX_GROUP_SIZE);
    let mut out = Vec::new();
    if s >= e {
        return out;
    }
    let mut w0 = s - s % gs;
    while w0 < e {
        let w1 = (w0 + gs).min(n);
        out.push((w0, w1, w0.max(s), w1.min(e)));
        w0 += gs;
    }
    out
}

/// Batched force phase for one processor: the traversal/evaluation split
/// over the flat snapshot.
///
/// **Traversal** walks the tree once per group of `group_size` consecutive
/// bodies in zone order (Morton-sorted every `morton_every` steps, so
/// groups are spatially compact). Every stack entry carries a bitmask of
/// the members still *active* at that node — exactly the members whose own
/// walk would visit it. A cell is first classified against the group's
/// bounding box via the squared distances from the cell's center of mass
/// to the box's nearest (`dmin²`) and farthest (`dmax²`) points, which
/// bracket every member distance:
///
/// * **accept-all** — `side² < θ²·dmin²` (shrunk by [`GROUP_MARGIN`]):
///   every active member's own criterion accepts, so one `(com, mass)`
///   entry joins the list with the current mask;
/// * **open-all** — `side² ≥ θ²·dmax²` (grown by the margin): every
///   active member opens, so the children are pushed with the same mask;
/// * **mixed** — the band in between: each active member is tested with
///   its own exact criterion; the accepting subset takes the entry and the
///   complement descends into the children.
///
/// Emission routes by acceptance: an entry every member applies (full
/// mask) joins the **dense** shared list; a partially-accepted entry is
/// pushed once onto the **partial** list together with its acceptance
/// bitmask. Because the band is resolved with each member's exact
/// criterion and the box bounds are conservative, every body's
/// interaction *multiset* — and its visit count, which the kernel
/// charges as [`VISIT_CYCLES`] × popcount — is identical to
/// [`force_phase`]'s; only the summation order differs. At
/// `group_size = 1` the box is a point, the group test *is* the
/// member's own criterion, the self-entry is skipped at emission, and the
/// sequential evaluation replays the DFS order — bitwise identical to the
/// per-body walk.
///
/// **Evaluation** streams the dense list once per member in a
/// structure-of-arrays loop with no masks or branches at all
/// ([`EVAL_LANES`] independent accumulator lanes): a member's own body in
/// the dense list contributes exactly zero, because `dx = dy = dz = 0`
/// and the `r2` guard keeps the scale finite — so every evaluated flop is
/// a real interaction and the loop auto-vectorizes cleanly. The partial
/// list follows in the same packed shape with the member's mask bit
/// blended in as a 0/1 weight (and summed for the interaction count).
/// Exact per-body interaction counts (dense length plus the member's
/// partial entries, minus its self appearances) are stored for costzones
/// and debug-asserted to tile the group total. Caller barriers
/// afterwards.
#[allow(clippy::too_many_arguments)]
pub fn force_phase_grouped<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    params: &ForceParams,
    scratch: &ForceScratch,
    group_size: usize,
    proc: usize,
) -> ForceListStats {
    let theta2 = params.theta * params.theta;
    let eps2 = params.eps * params.eps;
    let (s, e) = world.zone(proc);
    let n = world.n;
    let gs = group_size.clamp(1, MAX_GROUP_SIZE);
    let row = &scratch.rows[proc];
    let cap = scratch.cap;
    let mut stack: Vec<(u32, u64)> = Vec::with_capacity(64);
    let mut members: Vec<u32> = Vec::with_capacity(gs);
    let mut mpos: Vec<Vec3> = Vec::with_capacity(gs);
    // Partially-accepted entries carry a per-entry member bitmask instead
    // of being scattered into per-member buffers: emission stays one store
    // per entry, and the evaluation blends the mask bit into the packed
    // loop as a 0/1 weight. `pmasks[k]` is the mask of the entry in row
    // slot `k` (only the partial half, at the top of the row, is read).
    let mut pmasks: Vec<u64> = vec![0; cap];
    // O(1) self-lookup: `inv[b] = 1 + member-slot of body b` for current
    // group members, 0 otherwise (unmarked again at group end).
    let mut inv: Vec<u32> = vec![0; n];
    let mut stats = ForceListStats::default();

    for (w0, w1, a0, a1) in zone_group_windows(s, e, gs, n) {
        let len = w1 - w0;
        members.clear();
        mpos.clear();
        for i in w0..w1 {
            let b = world.order.load(env, ctx, i);
            members.push(b);
            mpos.push(world.pos.load(env, ctx, b as usize));
        }
        // Group bounding box: Morton-consecutive members span a compact
        // AABB, whose squared distance bounds to a cell are much tighter
        // than a centroid sphere's for elongated runs — and need no sqrt.
        let mut lo = mpos[0];
        let mut hi = mpos[0];
        for &p in &mpos[1..] {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            lo.z = lo.z.min(p.z);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
            hi.z = hi.z.max(p.z);
        }
        let single = len == 1;
        let full: u64 = if len == 64 { !0 } else { (1u64 << len) - 1 };
        for (mi, &b) in members.iter().enumerate() {
            inv[b as usize] = mi as u32 + 1;
        }

        // Dense entries fill the row from the bottom, partial entries from
        // the top; `dlen + plen ≤ nodes + bodies = cap`, so they never meet.
        let mut dlen = 0usize;
        let mut plen = 0usize;
        // Bit `m` set: member `m`'s own body sits in that half (its
        // contribution there is exactly zero; only the count subtracts it).
        let mut self_in_dense = 0u64;
        let mut self_in_partial = 0u64;
        stack.clear();
        stack.push((0, full)); // the root is always flat index 0
        while let Some((idx, mask)) = stack.pop() {
            let node = flat.nodes.load(env, ctx, idx as usize);
            if node.is_leaf() {
                let first = node.first as usize;
                for j in first..first + node.count() as usize {
                    let ob = flat.bodies.load(env, ctx, j);
                    if single && ob == members[0] {
                        continue; // keeps group_size = 1 bitwise-exact
                    }
                    let opos = world.pos.load(env, ctx, ob as usize);
                    let om = world.mass.load(env, ctx, ob as usize);
                    let mi = inv[ob as usize];
                    if mask == full {
                        if !single && mi != 0 {
                            self_in_dense |= 1 << (mi - 1);
                        }
                        emit_entry(env, ctx, row, dlen, opos, om);
                        dlen += 1;
                    } else {
                        if mi != 0 {
                            self_in_partial |= (mask >> (mi - 1) & 1) << (mi - 1);
                        }
                        plen += 1;
                        emit_entry(env, ctx, row, cap - plen, opos, om);
                        pmasks[cap - plen] = mask;
                    }
                }
                continue;
            }
            // The members active here are exactly those whose own walk
            // visits this cell, so the visit charge matches force_phase.
            env.compute(ctx, VISIT_CYCLES * u64::from(mask.count_ones()));
            let side = 2.0 * node.half;
            if single {
                // A point box: the group test is the member's own
                // criterion, in the same squared form as `force_phase`.
                if cell_accepted(side, theta2, mpos[0].dist_sq(node.com)) {
                    emit_entry(env, ctx, row, dlen, node.com, node.mass);
                    dlen += 1;
                } else {
                    let first = node.first as usize;
                    for j in (first..first + node.count() as usize).rev() {
                        stack.push((flat.kids.load(env, ctx, j), full));
                    }
                }
                continue;
            }
            // Squared distance from the cell's com to the nearest and
            // farthest points of the member box: every member distance
            // d_m satisfies dmin² ≤ d_m² ≤ dmax².
            let nx = (lo.x - node.com.x).max(node.com.x - hi.x).max(0.0);
            let ny = (lo.y - node.com.y).max(node.com.y - hi.y).max(0.0);
            let nz = (lo.z - node.com.z).max(node.com.z - hi.z).max(0.0);
            let dmin2 = nx * nx + ny * ny + nz * nz;
            let fx = (node.com.x - lo.x).abs().max((hi.x - node.com.x).abs());
            let fy = (node.com.y - lo.y).abs().max((hi.y - node.com.y).abs());
            let fz = (node.com.z - lo.z).abs().max((hi.z - node.com.z).abs());
            let dmax2 = fx * fx + fy * fy + fz * fz;
            let accept_mask =
                if dmin2 > 0.0 && cell_accepted(side, theta2, dmin2 * (1.0 - GROUP_MARGIN)) {
                    mask // accept-all: every member's criterion holds
                } else if !cell_accepted(side, theta2, dmax2 * (1.0 + GROUP_MARGIN)) {
                    0 // open-all: every member opens
                } else {
                    // Mixed band: each active member decides exactly.
                    let mut am = 0u64;
                    let mut rem = mask;
                    while rem != 0 {
                        let m = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        if cell_accepted(side, theta2, mpos[m].dist_sq(node.com)) {
                            am |= 1 << m;
                        }
                    }
                    am
                };
            if accept_mask != 0 {
                if accept_mask == full {
                    emit_entry(env, ctx, row, dlen, node.com, node.mass);
                    dlen += 1;
                } else {
                    plen += 1;
                    emit_entry(env, ctx, row, cap - plen, node.com, node.mass);
                    pmasks[cap - plen] = accept_mask;
                }
            }
            let open_mask = mask & !accept_mask;
            if open_mask != 0 {
                let first = node.first as usize;
                for j in (first..first + node.count() as usize).rev() {
                    stack.push((flat.kids.load(env, ctx, j), open_mask));
                }
            }
        }

        stats.groups += 1;
        stats.list_entries += (dlen + plen) as u64;

        // Evaluation: stream the row's two halves straight from the scratch
        // (untimed borrows — the list was charged at emission) and apply
        // them to the members this zone owns.
        let xs = row.xs.peek_slice(0..dlen);
        let ys = row.ys.peek_slice(0..dlen);
        let zs = row.zs.peek_slice(0..dlen);
        let ms = row.ms.peek_slice(0..dlen);
        let pxs = row.xs.peek_slice(cap - plen..cap);
        let pys = row.ys.peek_slice(cap - plen..cap);
        let pzs = row.zs.peek_slice(cap - plen..cap);
        let pms = row.ms.peek_slice(cap - plen..cap);
        let pmk = &pmasks[cap - plen..cap];
        #[cfg(debug_assertions)]
        let before = stats.interactions;
        for i in a0..a1 {
            let m = i - w0;
            let b = members[m];
            let (acc, cnt) = if single {
                eval_list_seq(xs, ys, zs, ms, mpos[m], params.gravity, eps2)
            } else {
                let dense =
                    eval_list_lanes::<EVAL_LANES>(xs, ys, zs, ms, mpos[m], params.gravity, eps2);
                let (part, pcnt) = eval_masked_lanes::<EVAL_LANES>(
                    pxs,
                    pys,
                    pzs,
                    pms,
                    pmk,
                    m as u32,
                    mpos[m],
                    params.gravity,
                    eps2,
                );
                let cnt = dlen as u32 + pcnt
                    - ((self_in_dense >> m) & 1) as u32
                    - ((self_in_partial >> m) & 1) as u32;
                (dense + part, cnt)
            };
            env.compute(ctx, INTERACT_CYCLES * u64::from(cnt));
            world.acc.store(env, ctx, b as usize, acc);
            // Exact count (no floor): costzones guards zero at read time.
            world.cost.store(env, ctx, b as usize, cnt);
            stats.interactions += u64::from(cnt);
        }
        #[cfg(debug_assertions)]
        {
            // Per-body counts must tile the group total: dense entries
            // plus the partial entries whose mask names the member, minus
            // the member's own appearances (recounted from the raw masks,
            // independently of the evaluation loop's running count).
            let mut expect = 0u64;
            for i in a0..a1 {
                let m = i - w0;
                let mut per = dlen as u64;
                if !single {
                    for &pm in pmk {
                        per += (pm >> m) & 1;
                    }
                    per -= (self_in_dense >> m) & 1;
                    per -= (self_in_partial >> m) & 1;
                }
                expect += per;
            }
            debug_assert_eq!(
                stats.interactions - before,
                expect,
                "per-body interaction counts must tile the group total"
            );
        }
        for &b in &members {
            inv[b as usize] = 0;
        }
    }
    stats
}

/// Sequential list evaluation — the `group_size = 1` path. Entries are
/// applied in emission (DFS pre-)order with the same arithmetic as the
/// per-body walk, so the result is bitwise identical to [`force_phase`].
fn eval_list_seq(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    pos: Vec3,
    gravity: f64,
    eps2: f64,
) -> (Vec3, u32) {
    let mut acc = Vec3::ZERO;
    for k in 0..xs.len() {
        let src = Vec3::new(xs[k], ys[k], zs[k]);
        acc += pair_accel_eps2(pos, src, ms[k], gravity, eps2);
    }
    (acc, xs.len() as u32)
}

/// One pair interaction in the lane loop's fused shape, identical
/// arithmetic to `pair_accel_eps2`. No self-exclusion is needed: a
/// member's own dense entry has `dx = dy = dz = 0`, the
/// `max(MIN_POSITIVE)` guard keeps `sca` finite even at `eps = 0`, and
/// `0 · sca` contributes exactly zero; the guard is the identity for
/// every real pair.
#[inline]
#[allow(clippy::too_many_arguments)]
fn accum_pair(
    dx: f64,
    dy: f64,
    dz: f64,
    m: f64,
    gravity: f64,
    eps2: f64,
    ax: &mut f64,
    ay: &mut f64,
    az: &mut f64,
) {
    let r2 = (dx * dx + dy * dy + dz * dz + eps2).max(f64::MIN_POSITIVE);
    let r = r2.sqrt();
    let sca = gravity * m / (r2 * r);
    *ax += dx * sca;
    *ay += dy * sca;
    *az += dz * sca;
}

/// Structure-of-arrays evaluation of one member against the dense half of
/// the list: `L` independent accumulator lanes (no loop-carried
/// dependence, no masks, no branches — every lane is a real interaction,
/// so the loop auto-vectorizes to packed sqrt/divide), and a fixed
/// pairwise lane combine so results are deterministic for a given `L`.
/// The caller derives the interaction count from the list lengths.
///
/// `inline(never)`: compiled as its own function the SLP vectorizer
/// reliably turns into packed sqrt/divide — inlined into the (large,
/// `Env`-generic) traversal body it stays scalar, which costs ~2-4x on
/// the kernel's throughput bound. One call per member per list is noise.
#[inline(never)]
fn eval_list_lanes<const L: usize>(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    pos: Vec3,
    gravity: f64,
    eps2: f64,
) -> Vec3 {
    let n = xs.len();
    let mut axl = [0.0f64; L];
    let mut ayl = [0.0f64; L];
    let mut azl = [0.0f64; L];
    let mut k = 0;
    while k + L <= n {
        let xc = &xs[k..k + L];
        let yc = &ys[k..k + L];
        let zc = &zs[k..k + L];
        let mc = &ms[k..k + L];
        for l in 0..L {
            accum_pair(
                xc[l] - pos.x,
                yc[l] - pos.y,
                zc[l] - pos.z,
                mc[l],
                gravity,
                eps2,
                &mut axl[l],
                &mut ayl[l],
                &mut azl[l],
            );
        }
        k += L;
    }
    // Remainder entries round-robin into the lanes.
    let mut lane = 0;
    while k < n {
        accum_pair(
            xs[k] - pos.x,
            ys[k] - pos.y,
            zs[k] - pos.z,
            ms[k],
            gravity,
            eps2,
            &mut axl[lane],
            &mut ayl[lane],
            &mut azl[lane],
        );
        lane = (lane + 1) % L;
        k += 1;
    }
    Vec3::new(fold_lanes(&axl), fold_lanes(&ayl), fold_lanes(&azl))
}

/// Mask-blended variant of [`eval_list_lanes`] for the partial list: the
/// entry's mask bit for member `m` becomes a 0/1 weight on the scale
/// factor (`1.0 ·` is exact, `0.0 ·` contributes nothing, and the `r2`
/// guard keeps the scale finite), so the loop stays branch-free and
/// vectorizes to packed sqrt/divide with the bit extraction folded in as
/// integer lanes. Returns the accumulated acceleration and the number of
/// entries whose mask named the member — the member's own body, if
/// present, is included and must be subtracted by the caller.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn eval_masked_lanes<const L: usize>(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    masks: &[u64],
    m: u32,
    pos: Vec3,
    gravity: f64,
    eps2: f64,
) -> (Vec3, u32) {
    let n = xs.len().min(masks.len());
    let mut axl = [0.0f64; L];
    let mut ayl = [0.0f64; L];
    let mut azl = [0.0f64; L];
    let mut cntl = [0u64; L];
    let mut k = 0;
    while k + L <= n {
        let xc = &xs[k..k + L];
        let yc = &ys[k..k + L];
        let zc = &zs[k..k + L];
        let mc = &ms[k..k + L];
        let mks = &masks[k..k + L];
        for l in 0..L {
            let bit = (mks[l] >> m) & 1;
            let dx = xc[l] - pos.x;
            let dy = yc[l] - pos.y;
            let dz = zc[l] - pos.z;
            let r2 = (dx * dx + dy * dy + dz * dz + eps2).max(f64::MIN_POSITIVE);
            let r = r2.sqrt();
            let sca = bit as f64 * gravity * mc[l] / (r2 * r);
            axl[l] += dx * sca;
            ayl[l] += dy * sca;
            azl[l] += dz * sca;
            cntl[l] += bit;
        }
        k += L;
    }
    let mut cnt: u64 = cntl.iter().sum();
    // Remainder entries round-robin into the lanes.
    let mut lane = 0;
    while k < n {
        let bit = (masks[k] >> m) & 1;
        let dx = xs[k] - pos.x;
        let dy = ys[k] - pos.y;
        let dz = zs[k] - pos.z;
        let r2 = (dx * dx + dy * dy + dz * dz + eps2).max(f64::MIN_POSITIVE);
        let r = r2.sqrt();
        let sca = bit as f64 * gravity * ms[k] / (r2 * r);
        axl[lane] += dx * sca;
        ayl[lane] += dy * sca;
        azl[lane] += dz * sca;
        cnt += bit;
        lane = (lane + 1) % L;
        k += 1;
    }
    (
        Vec3::new(fold_lanes(&axl), fold_lanes(&ayl), fold_lanes(&azl)),
        cnt as u32,
    )
}

/// Fixed-order pairwise reduction of the accumulator lanes.
#[inline]
fn fold_lanes(lanes: &[f64]) -> f64 {
    match lanes.len() {
        4 => (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]),
        8 => {
            ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        }
        _ => lanes.iter().sum(),
    }
}

/// Force phase for one processor walking the shared tree recursively — the
/// pre-snapshot traversal, kept as the reference for the flat walk's
/// bitwise-equivalence test (and for `flat_force = false` ablations).
/// Caller barriers afterwards.
pub fn force_phase_recursive<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    params: &ForceParams,
    proc: usize,
) {
    let root = tree.root.load(env, ctx, 0);
    let (s, e) = world.zone(proc);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let pos = world.pos.load(env, ctx, b as usize);
        let mut acc = Vec3::ZERO;
        let mut interactions = 0u32;
        body_force(
            env,
            ctx,
            tree,
            world,
            params,
            b,
            pos,
            root,
            &mut acc,
            &mut interactions,
        );
        world.acc.store(env, ctx, b as usize, acc);
        world.cost.store(env, ctx, b as usize, interactions);
    }
}

#[allow(clippy::too_many_arguments)]
fn body_force<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    params: &ForceParams,
    body: u32,
    pos: Vec3,
    node: NodeRef,
    acc: &mut Vec3,
    interactions: &mut u32,
) {
    if node.is_leaf() {
        let l = tree.load_leaf(env, ctx, node);
        for &ob in l.body_slice() {
            if ob == body {
                continue;
            }
            let opos = world.pos.load(env, ctx, ob as usize);
            let om = world.mass.load(env, ctx, ob as usize);
            *acc += pair_accel(pos, opos, om, params);
            *interactions += 1;
            env.compute(ctx, INTERACT_CYCLES);
        }
        return;
    }
    let c = tree.load_cell(env, ctx, node);
    if c.count == 0 || c.mass == 0.0 {
        return; // husk cell (UPDATE) — contributes nothing
    }
    env.compute(ctx, VISIT_CYCLES);
    let side = 2.0 * c.half;
    if let Some(a) = cell_interaction(
        pos,
        c.com,
        c.mass,
        side,
        params.theta * params.theta,
        params.gravity,
        params.eps * params.eps,
    ) {
        *acc += a;
        *interactions += 1;
        env.compute(ctx, INTERACT_CYCLES);
        return;
    }
    for ch in tree.children(env, ctx, node) {
        if !ch.is_null() {
            body_force(
                env,
                ctx,
                tree,
                world,
                params,
                body,
                pos,
                ch,
                acc,
                interactions,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential reference force computation (same criterion, on SeqTree).
// ---------------------------------------------------------------------------

/// Compute the acceleration on a single position over the sequential tree.
pub fn seq_accel(
    tree: &SeqTree,
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    params: &ForceParams,
) -> (Vec3, u32) {
    let pos = bodies_pos[body as usize];
    let mut acc = Vec3::ZERO;
    let mut interactions = 0;
    seq_walk(
        tree,
        tree.root,
        bodies_pos,
        bodies_mass,
        body,
        pos,
        params,
        &mut acc,
        &mut interactions,
    );
    (acc, interactions)
}

#[allow(clippy::too_many_arguments)]
fn seq_walk(
    tree: &SeqTree,
    node: i32,
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    pos: Vec3,
    params: &ForceParams,
    acc: &mut Vec3,
    interactions: &mut u32,
) {
    match &tree.nodes[node as usize] {
        SeqNode::Leaf { bodies, .. } => {
            for &ob in bodies {
                if ob == body {
                    continue;
                }
                *acc += pair_accel(
                    pos,
                    bodies_pos[ob as usize],
                    bodies_mass[ob as usize],
                    params,
                );
                *interactions += 1;
            }
        }
        SeqNode::Cell {
            child,
            com,
            mass,
            cube,
            ..
        } => {
            if *mass == 0.0 {
                return;
            }
            let side = cube.side();
            if let Some(a) = cell_interaction(
                pos,
                *com,
                *mass,
                side,
                params.theta * params.theta,
                params.gravity,
                params.eps * params.eps,
            ) {
                *acc += a;
                *interactions += 1;
                return;
            }
            for &ch in child {
                if ch != -1 {
                    seq_walk(
                        tree,
                        ch,
                        bodies_pos,
                        bodies_mass,
                        body,
                        pos,
                        params,
                        acc,
                        interactions,
                    );
                }
            }
        }
    }
}

/// Direct O(n²) summation — the accuracy oracle for tests.
pub fn direct_accel(
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    params: &ForceParams,
) -> Vec3 {
    let pos = bodies_pos[body as usize];
    let mut acc = Vec3::ZERO;
    for (i, (&p, &m)) in bodies_pos.iter().zip(bodies_mass.iter()).enumerate() {
        if i as u32 == body {
            continue;
        }
        acc += pair_accel(pos, p, m, params);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::model::Model;

    #[test]
    fn pair_accel_points_toward_source() {
        let params = ForceParams {
            theta: 1.0,
            eps: 0.0,
            gravity: 1.0,
        };
        let a = pair_accel(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 8.0, &params);
        assert!(a.x > 0.0 && a.y == 0.0 && a.z == 0.0);
        // |a| = G m / r^2 = 8 / 4 = 2.
        assert!((a.norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let params = ForceParams {
            theta: 1.0,
            eps: 0.1,
            gravity: 1.0,
        };
        let a = pair_accel(Vec3::ZERO, Vec3::new(1e-12, 0.0, 0.0), 1.0, &params);
        assert!(
            a.norm() < 1.0 / (0.1 * 0.1),
            "softened force must stay bounded"
        );
    }

    #[test]
    fn barnes_hut_approximates_direct_sum() {
        let bodies: Vec<Body> = Model::Plummer.generate(600, 42);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 8);
        let params = ForceParams {
            theta: 0.5,
            eps: 0.05,
            gravity: 1.0,
        };
        let mut worst = 0.0f64;
        for b in (0..600).step_by(17) {
            let (bh, _) = seq_accel(&tree, &pos, &mass, b, &params);
            let exact = direct_accel(&pos, &mass, b, &params);
            let rel = (bh - exact).norm() / exact.norm().max(1e-12);
            worst = worst.max(rel);
        }
        assert!(worst < 0.05, "worst relative force error {worst}");
    }

    #[test]
    fn theta_zero_equals_direct_sum() {
        // θ→0 never accepts a cell, so BH degenerates to the direct sum.
        let bodies: Vec<Body> = Model::UniformSphere.generate(100, 9);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 4);
        let params = ForceParams {
            theta: 1e-9,
            eps: 0.05,
            gravity: 1.0,
        };
        for b in [0u32, 13, 57, 99] {
            let (bh, ints) = seq_accel(&tree, &pos, &mass, b, &params);
            let exact = direct_accel(&pos, &mass, b, &params);
            assert!((bh - exact).norm() < 1e-9);
            assert_eq!(ints, 99);
        }
    }

    #[test]
    fn larger_theta_means_fewer_interactions() {
        let bodies: Vec<Body> = Model::Plummer.generate(2000, 7);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 8);
        let loose = ForceParams {
            theta: 1.2,
            ..Default::default()
        };
        let tight = ForceParams {
            theta: 0.3,
            ..Default::default()
        };
        let (_, n_loose) = seq_accel(&tree, &pos, &mass, 0, &loose);
        let (_, n_tight) = seq_accel(&tree, &pos, &mass, 0, &tight);
        assert!(n_loose < n_tight, "loose {n_loose} vs tight {n_tight}");
    }

    #[test]
    fn group_windows_are_zone_independent() {
        // Every order index lands in the window `group_window` names, no
        // matter how the zone boundaries fall.
        let n = 103;
        let gs = 16;
        for cut in [0usize, 1, 7, 16, 17, 40, 102, 103] {
            for (w0, w1, a0, a1) in zone_group_windows(0, cut, gs, n)
                .into_iter()
                .chain(zone_group_windows(cut, n, gs, n))
            {
                for i in a0..a1 {
                    assert_eq!(group_window(i, gs, n), (w0, w1));
                }
            }
        }
    }

    #[test]
    fn zone_group_windows_tile_the_zone() {
        let n = 64;
        for gs in [1, 3, 16, 100] {
            let windows = zone_group_windows(10, 50, gs, n);
            let mut next = 10;
            for (w0, w1, a0, a1) in windows {
                assert!(w0 <= a0 && a1 <= w1);
                assert_eq!(next, a0);
                next = a1;
            }
            assert_eq!(next, 50);
        }
        assert!(zone_group_windows(5, 5, 4, 64).is_empty());
    }
}
