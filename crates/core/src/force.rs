//! The Barnes-Hut force-computation phase.
//!
//! Each body traverses the summarized octree from the root: a cell far
//! enough away (opening criterion `side/dist < θ`) is approximated by its
//! center of mass; otherwise its children are visited recursively. Gravity
//! is Plummer-softened. The per-body interaction count is recorded as the
//! body's cost for the next step's costzones partitioning — force
//! computation is >97% of sequential time, which is exactly why the paper's
//! tree-building bottleneck on commodity platforms is so surprising.

use crate::env::Env;
use crate::math::Vec3;
use crate::tree::flat::FlatTree;
use crate::tree::seq::{SeqNode, SeqTree};
use crate::tree::types::{NodeRef, SharedTree};
use crate::world::World;

/// Physics and accuracy parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForceParams {
    /// Barnes-Hut opening angle θ; smaller is more accurate and more work.
    pub theta: f64,
    /// Plummer softening length ε.
    pub eps: f64,
    /// Gravitational constant G.
    pub gravity: f64,
}

impl Default for ForceParams {
    fn default() -> Self {
        ForceParams {
            theta: 1.0,
            eps: 0.05,
            gravity: 1.0,
        }
    }
}

/// Cycle cost charged per body-body or body-cell interaction.
const INTERACT_CYCLES: u64 = 45;
/// Cycle cost charged per visited (opened) cell.
const VISIT_CYCLES: u64 = 10;

/// Pairwise softened-gravity acceleration with a precomputed ε² — the form
/// the hot loop uses (ε² and θ² are hoisted out of the walk; the arithmetic
/// is identical to computing `eps * eps` in place, so results stay bitwise
/// equal to the historical formula).
#[inline]
pub fn pair_accel_eps2(pos: Vec3, src: Vec3, m: f64, gravity: f64, eps2: f64) -> Vec3 {
    let d = src - pos;
    let r2 = d.norm_sq() + eps2;
    let r = r2.sqrt();
    d * (gravity * m / (r2 * r))
}

/// Pairwise softened-gravity acceleration on a body at `pos` from mass `m`
/// at `src`.
#[inline]
pub fn pair_accel(pos: Vec3, src: Vec3, m: f64, params: &ForceParams) -> Vec3 {
    pair_accel_eps2(pos, src, m, params.gravity, params.eps * params.eps)
}

/// Force phase for one processor over the flat snapshot: an iterative,
/// explicit-stack walk with ε² and θ² hoisted out of the loop. Visits
/// children in octant order (pushed in reverse), i.e. the exact pre-order
/// DFS of [`force_phase_recursive`], so accelerations are bitwise
/// identical. Caller barriers afterwards.
pub fn force_phase<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    flat: &FlatTree,
    world: &World,
    params: &ForceParams,
    proc: usize,
) {
    let theta2 = params.theta * params.theta;
    let eps2 = params.eps * params.eps;
    let (s, e) = world.zone(proc);
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let pos = world.pos.load(env, ctx, b as usize);
        let mut acc = Vec3::ZERO;
        let mut interactions = 0u32;
        stack.clear();
        stack.push(0); // the root is always flat index 0
        while let Some(idx) = stack.pop() {
            let node = flat.nodes.load(env, ctx, idx as usize);
            if node.is_leaf() {
                let first = node.first as usize;
                for j in first..first + node.count() as usize {
                    let ob = flat.bodies.load(env, ctx, j);
                    if ob == b {
                        continue;
                    }
                    let opos = world.pos.load(env, ctx, ob as usize);
                    let om = world.mass.load(env, ctx, ob as usize);
                    acc += pair_accel_eps2(pos, opos, om, params.gravity, eps2);
                    interactions += 1;
                    env.compute(ctx, INTERACT_CYCLES);
                }
                continue;
            }
            env.compute(ctx, VISIT_CYCLES);
            let d2 = pos.dist_sq(node.com);
            let side = 2.0 * node.half;
            if side * side < theta2 * d2 {
                acc += pair_accel_eps2(pos, node.com, node.mass, params.gravity, eps2);
                interactions += 1;
                env.compute(ctx, INTERACT_CYCLES);
                continue;
            }
            let first = node.first as usize;
            for j in (first..first + node.count() as usize).rev() {
                stack.push(flat.kids.load(env, ctx, j));
            }
        }
        world.acc.store(env, ctx, b as usize, acc);
        world.cost.store(env, ctx, b as usize, interactions.max(1));
    }
}

/// Force phase for one processor walking the shared tree recursively — the
/// pre-snapshot traversal, kept as the reference for the flat walk's
/// bitwise-equivalence test (and for `flat_force = false` ablations).
/// Caller barriers afterwards.
pub fn force_phase_recursive<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    params: &ForceParams,
    proc: usize,
) {
    let root = tree.root.load(env, ctx, 0);
    let (s, e) = world.zone(proc);
    for i in s..e {
        let b = world.order.load(env, ctx, i);
        let pos = world.pos.load(env, ctx, b as usize);
        let mut acc = Vec3::ZERO;
        let mut interactions = 0u32;
        body_force(
            env,
            ctx,
            tree,
            world,
            params,
            b,
            pos,
            root,
            &mut acc,
            &mut interactions,
        );
        world.acc.store(env, ctx, b as usize, acc);
        world.cost.store(env, ctx, b as usize, interactions.max(1));
    }
}

#[allow(clippy::too_many_arguments)]
fn body_force<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    world: &World,
    params: &ForceParams,
    body: u32,
    pos: Vec3,
    node: NodeRef,
    acc: &mut Vec3,
    interactions: &mut u32,
) {
    if node.is_leaf() {
        let l = tree.load_leaf(env, ctx, node);
        for &ob in l.body_slice() {
            if ob == body {
                continue;
            }
            let opos = world.pos.load(env, ctx, ob as usize);
            let om = world.mass.load(env, ctx, ob as usize);
            *acc += pair_accel(pos, opos, om, params);
            *interactions += 1;
            env.compute(ctx, INTERACT_CYCLES);
        }
        return;
    }
    let c = tree.load_cell(env, ctx, node);
    if c.count == 0 || c.mass == 0.0 {
        return; // husk cell (UPDATE) — contributes nothing
    }
    env.compute(ctx, VISIT_CYCLES);
    let d2 = pos.dist_sq(c.com);
    let side = 2.0 * c.half;
    if side * side < params.theta * params.theta * d2 {
        *acc += pair_accel(pos, c.com, c.mass, params);
        *interactions += 1;
        env.compute(ctx, INTERACT_CYCLES);
        return;
    }
    for ch in tree.children(env, ctx, node) {
        if !ch.is_null() {
            body_force(
                env,
                ctx,
                tree,
                world,
                params,
                body,
                pos,
                ch,
                acc,
                interactions,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential reference force computation (same criterion, on SeqTree).
// ---------------------------------------------------------------------------

/// Compute the acceleration on a single position over the sequential tree.
pub fn seq_accel(
    tree: &SeqTree,
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    params: &ForceParams,
) -> (Vec3, u32) {
    let pos = bodies_pos[body as usize];
    let mut acc = Vec3::ZERO;
    let mut interactions = 0;
    seq_walk(
        tree,
        tree.root,
        bodies_pos,
        bodies_mass,
        body,
        pos,
        params,
        &mut acc,
        &mut interactions,
    );
    (acc, interactions)
}

#[allow(clippy::too_many_arguments)]
fn seq_walk(
    tree: &SeqTree,
    node: i32,
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    pos: Vec3,
    params: &ForceParams,
    acc: &mut Vec3,
    interactions: &mut u32,
) {
    match &tree.nodes[node as usize] {
        SeqNode::Leaf { bodies, .. } => {
            for &ob in bodies {
                if ob == body {
                    continue;
                }
                *acc += pair_accel(
                    pos,
                    bodies_pos[ob as usize],
                    bodies_mass[ob as usize],
                    params,
                );
                *interactions += 1;
            }
        }
        SeqNode::Cell {
            child,
            com,
            mass,
            cube,
            ..
        } => {
            if *mass == 0.0 {
                return;
            }
            let d2 = pos.dist_sq(*com);
            let side = cube.side();
            if side * side < params.theta * params.theta * d2 {
                *acc += pair_accel(pos, *com, *mass, params);
                *interactions += 1;
                return;
            }
            for &ch in child {
                if ch != -1 {
                    seq_walk(
                        tree,
                        ch,
                        bodies_pos,
                        bodies_mass,
                        body,
                        pos,
                        params,
                        acc,
                        interactions,
                    );
                }
            }
        }
    }
}

/// Direct O(n²) summation — the accuracy oracle for tests.
pub fn direct_accel(
    bodies_pos: &[Vec3],
    bodies_mass: &[f64],
    body: u32,
    params: &ForceParams,
) -> Vec3 {
    let pos = bodies_pos[body as usize];
    let mut acc = Vec3::ZERO;
    for (i, (&p, &m)) in bodies_pos.iter().zip(bodies_mass.iter()).enumerate() {
        if i as u32 == body {
            continue;
        }
        acc += pair_accel(pos, p, m, params);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::model::Model;

    #[test]
    fn pair_accel_points_toward_source() {
        let params = ForceParams {
            theta: 1.0,
            eps: 0.0,
            gravity: 1.0,
        };
        let a = pair_accel(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 8.0, &params);
        assert!(a.x > 0.0 && a.y == 0.0 && a.z == 0.0);
        // |a| = G m / r^2 = 8 / 4 = 2.
        assert!((a.norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let params = ForceParams {
            theta: 1.0,
            eps: 0.1,
            gravity: 1.0,
        };
        let a = pair_accel(Vec3::ZERO, Vec3::new(1e-12, 0.0, 0.0), 1.0, &params);
        assert!(
            a.norm() < 1.0 / (0.1 * 0.1),
            "softened force must stay bounded"
        );
    }

    #[test]
    fn barnes_hut_approximates_direct_sum() {
        let bodies: Vec<Body> = Model::Plummer.generate(600, 42);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 8);
        let params = ForceParams {
            theta: 0.5,
            eps: 0.05,
            gravity: 1.0,
        };
        let mut worst = 0.0f64;
        for b in (0..600).step_by(17) {
            let (bh, _) = seq_accel(&tree, &pos, &mass, b, &params);
            let exact = direct_accel(&pos, &mass, b, &params);
            let rel = (bh - exact).norm() / exact.norm().max(1e-12);
            worst = worst.max(rel);
        }
        assert!(worst < 0.05, "worst relative force error {worst}");
    }

    #[test]
    fn theta_zero_equals_direct_sum() {
        // θ→0 never accepts a cell, so BH degenerates to the direct sum.
        let bodies: Vec<Body> = Model::UniformSphere.generate(100, 9);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 4);
        let params = ForceParams {
            theta: 1e-9,
            eps: 0.05,
            gravity: 1.0,
        };
        for b in [0u32, 13, 57, 99] {
            let (bh, ints) = seq_accel(&tree, &pos, &mass, b, &params);
            let exact = direct_accel(&pos, &mass, b, &params);
            assert!((bh - exact).norm() < 1e-9);
            assert_eq!(ints, 99);
        }
    }

    #[test]
    fn larger_theta_means_fewer_interactions() {
        let bodies: Vec<Body> = Model::Plummer.generate(2000, 7);
        let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = SeqTree::build(&bodies, 8);
        let loose = ForceParams {
            theta: 1.2,
            ..Default::default()
        };
        let tight = ForceParams {
            theta: 0.3,
            ..Default::default()
        };
        let (_, n_loose) = seq_accel(&tree, &pos, &mass, 0, &loose);
        let (_, n_tight) = seq_accel(&tree, &pos, &mass, 0, &tight);
        assert!(n_loose < n_tight, "loose {n_loose} vs tight {n_tight}");
    }
}
