//! Untimed tree traversal, invariant validation, and structural comparison
//! with the sequential reference tree. Used by tests and by the experiment
//! harness's self-checks (every platform run validates the tree it built).

use crate::math::morton::{key_in_cube, MORTON_BITS};
use crate::math::{Aabb, Cube, Vec3};
use crate::tree::flat::FlatTree;
use crate::tree::seq::SeqTree;
use crate::tree::types::{NodeRef, SharedTree};

/// Summary of a validated tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSummary {
    pub cells: usize,
    pub leaves: usize,
    pub bodies: usize,
    pub depth: usize,
    pub mass: f64,
}

/// Validation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOpts {
    /// Verify center-of-mass quantities (only valid after the CoM phase).
    pub check_summaries: bool,
    /// Tolerate internal cells with zero children. The UPDATE algorithm's
    /// leaf reclamation can leave such "husk" cells in the tree; all other
    /// algorithms must never produce them.
    pub allow_empty_cells: bool,
}

/// Walk the shared tree and check every structural invariant. Returns a
/// summary or a description of the first violation. `positions`/`masses`
/// give current body state; `check_summaries` additionally verifies the
/// center-of-mass quantities (only valid after the CoM phase).
pub fn validate(
    tree: &SharedTree,
    positions: &[Vec3],
    masses: &[f64],
    check_summaries: bool,
) -> Result<TreeSummary, String> {
    validate_with(
        tree,
        positions,
        masses,
        ValidateOpts {
            check_summaries,
            allow_empty_cells: false,
        },
    )
}

/// [`validate`] with explicit options.
pub fn validate_with(
    tree: &SharedTree,
    positions: &[Vec3],
    masses: &[f64],
    opts: ValidateOpts,
) -> Result<TreeSummary, String> {
    let root = tree.root.peek(0);
    if root.is_null() {
        return Err("root is NULL".into());
    }
    if !root.is_cell() {
        return Err("root is not a cell".into());
    }
    let mut seen = vec![false; positions.len()];
    let mut summary = TreeSummary {
        cells: 0,
        leaves: 0,
        bodies: 0,
        depth: 0,
        mass: 0.0,
    };
    let (mass, _com, count) = walk(
        tree,
        root,
        NodeRef::NULL,
        0,
        positions,
        masses,
        opts,
        &mut seen,
        &mut summary,
    )?;
    if count as usize != positions.len() {
        return Err(format!(
            "tree holds {count} bodies, expected {}",
            positions.len()
        ));
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!("body {missing} missing from tree"));
    }
    summary.mass = mass;
    Ok(summary)
}

#[allow(clippy::too_many_arguments)]
fn walk(
    tree: &SharedTree,
    node: NodeRef,
    parent: NodeRef,
    depth: usize,
    positions: &[Vec3],
    masses: &[f64],
    opts: ValidateOpts,
    seen: &mut [bool],
    summary: &mut TreeSummary,
) -> Result<(f64, Vec3, u32), String> {
    let check_summaries = opts.check_summaries;
    summary.depth = summary.depth.max(depth);
    if node.is_leaf() {
        let l = tree.peek_leaf(node);
        summary.leaves += 1;
        if !l.in_use {
            return Err(format!("leaf {node:?} reachable but not in use"));
        }
        if l.parent != parent {
            return Err(format!(
                "leaf {node:?} parent pointer wrong: {:?} != {parent:?}",
                l.parent
            ));
        }
        if l.n as usize > tree.k {
            return Err(format!("leaf {node:?} holds {} bodies > k={}", l.n, tree.k));
        }
        if l.n == 0 {
            return Err(format!("leaf {node:?} is empty"));
        }
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for &b in l.body_slice() {
            let b = b as usize;
            if b >= positions.len() {
                return Err(format!("leaf {node:?} holds invalid body id {b}"));
            }
            if seen[b] {
                return Err(format!("body {b} appears twice"));
            }
            seen[b] = true;
            if !l.cube().contains(positions[b]) {
                return Err(format!(
                    "body {b} at {:?} outside leaf cube {:?}",
                    positions[b],
                    l.cube()
                ));
            }
            mass += masses[b];
            weighted += positions[b] * masses[b];
        }
        summary.bodies += l.n as usize;
        if check_summaries {
            if (l.mass - mass).abs() > 1e-9 * mass.abs().max(1.0) {
                return Err(format!("leaf {node:?} mass {} != {}", l.mass, mass));
            }
            let com = weighted / mass;
            if (l.com - com).norm() > 1e-9 * (1.0 + com.norm()) {
                return Err(format!("leaf {node:?} com {:?} != {:?}", l.com, com));
            }
        }
        return Ok((
            mass,
            if mass > 0.0 {
                weighted / mass
            } else {
                Vec3::ZERO
            },
            l.n,
        ));
    }
    if !node.is_cell() {
        return Err(format!("dangling reference {node:?}"));
    }
    let c = tree.peek_cell(node);
    let children = tree.peek_children(node);
    summary.cells += 1;
    if !c.in_use {
        return Err(format!("cell {node:?} reachable but not in use"));
    }
    if c.parent != parent {
        return Err(format!(
            "cell {node:?} parent pointer wrong: {:?} != {parent:?}",
            c.parent
        ));
    }
    let nchild = children.iter().filter(|ch| !ch.is_null()).count();
    if nchild == 0 && !opts.allow_empty_cells {
        return Err(format!("cell {node:?} has no children"));
    }
    let pending = tree.pending_peek(node);
    if pending != nchild as u32 {
        return Err(format!(
            "cell {node:?} pending={} != non-null children {}",
            pending, nchild
        ));
    }
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    let mut count = 0;
    for (oct, &ch) in children.iter().enumerate() {
        if ch.is_null() {
            continue;
        }
        // Geometry: the child must represent exactly this octant of the cell.
        let expect = c.cube().octant(oct);
        let (ch_center, ch_half, ch_oct) = if ch.is_cell() {
            let cc = tree.peek_cell(ch);
            (cc.center, cc.half, cc.octant_in_parent)
        } else {
            let ll = tree.peek_leaf(ch);
            (ll.center, ll.half, ll.octant_in_parent)
        };
        if ch_oct as usize != oct {
            return Err(format!(
                "child {ch:?} octant_in_parent={} stored in slot {oct}",
                ch_oct
            ));
        }
        let tol = 1e-9 * (1.0 + expect.half);
        if (ch_center - expect.center).norm() > tol || (ch_half - expect.half).abs() > tol {
            return Err(format!(
                "child {ch:?} cube ({ch_center:?}, {ch_half}) != expected octant ({:?}, {})",
                expect.center, expect.half
            ));
        }
        let (m, com, n) = walk(
            tree,
            ch,
            node,
            depth + 1,
            positions,
            masses,
            opts,
            seen,
            summary,
        )?;
        mass += m;
        weighted += com * m;
        count += n;
    }
    if check_summaries {
        if (c.mass - mass).abs() > 1e-9 * mass.abs().max(1.0) {
            return Err(format!("cell {node:?} mass {} != {}", c.mass, mass));
        }
        if c.count != count {
            return Err(format!("cell {node:?} count {} != {}", c.count, count));
        }
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        if (c.com - com).norm() > 1e-9 * (1.0 + com.norm()) {
            return Err(format!("cell {node:?} com {:?} != {:?}", c.com, com));
        }
    }
    Ok((
        mass,
        if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        },
        count,
    ))
}

/// Validate a flat snapshot built *directly* by the MORTON sort-then-emit
/// path against a sequential reference derived the same way: sort the
/// (quantized Morton key, body id) pairs, then the tree is the unique
/// recursive range partition that splits ranges of more than `k` bodies.
/// Using the same quantized routing as the parallel builder (rather than
/// the floating-point `SeqTree` descent) keeps the comparison exact — the
/// two routings can disagree for bodies within rounding distance of an
/// octant plane.
///
/// Checks, per node walked from flat index 0 (always the root):
/// leaf/cell decision matches the split rule, leaves hold exactly the
/// reference range's bodies in ascending id order at CSR offset `lo`,
/// cells have one child per nonempty octant sub-range in octant order,
/// cube geometry follows `octant()` subdivision from the enclosing root
/// cube, and mass / center-of-mass summaries recompute bottom-up.
pub fn validate_flat_morton(
    flat: &FlatTree,
    positions: &[Vec3],
    masses: &[f64],
    k: usize,
) -> Result<TreeSummary, String> {
    let n = positions.len();
    if n == 0 {
        return Err("MORTON validation needs at least one body".into());
    }
    // Bitwise identical to the parallel bounds reduction: min/max are exact
    // and order-independent.
    let cube = Cube::enclosing(&Aabb::from_points(positions.iter().copied()));
    let mut pairs: Vec<(u64, u32)> = positions
        .iter()
        .enumerate()
        .map(|(i, p)| (key_in_cube(*p, &cube), i as u32))
        .collect();
    pairs.sort_unstable();

    let mut summary = TreeSummary {
        cells: 0,
        leaves: 0,
        bodies: 0,
        depth: 0,
        mass: 0.0,
    };
    let r = FlatMortonRef {
        flat,
        pairs: &pairs,
        positions,
        masses,
        k,
    };
    let (mass, _com) = r.walk(0, 0, n, 0, cube, &mut summary)?;
    summary.mass = mass;
    if summary.bodies != n {
        return Err(format!(
            "flat tree holds {} bodies, expected {n}",
            summary.bodies
        ));
    }
    Ok(summary)
}

struct FlatMortonRef<'a> {
    flat: &'a FlatTree,
    pairs: &'a [(u64, u32)],
    positions: &'a [Vec3],
    masses: &'a [f64],
    k: usize,
}

impl FlatMortonRef<'_> {
    /// Walk flat node `idx`, expected to cover sorted range `[lo, hi)` at
    /// `depth` inside `cube`. Returns (mass, com).
    fn walk(
        &self,
        idx: usize,
        lo: usize,
        hi: usize,
        depth: u32,
        cube: Cube,
        summary: &mut TreeSummary,
    ) -> Result<(f64, Vec3), String> {
        if idx >= self.flat.node_capacity() {
            return Err(format!("flat node index {idx} out of bounds"));
        }
        summary.depth = summary.depth.max(depth as usize);
        let node = self.flat.nodes.peek(idx);
        let count = hi - lo;
        let tol = 1e-9 * (1.0 + cube.half);
        if (node.half - cube.half).abs() > tol {
            return Err(format!(
                "flat node {idx} half {} != expected {}",
                node.half, cube.half
            ));
        }
        let should_be_leaf = count <= self.k || depth >= MORTON_BITS;
        if node.is_leaf() != should_be_leaf {
            return Err(format!(
                "flat node {idx} is_leaf={} but range [{lo}, {hi}) at depth {depth} \
                 expects leaf={should_be_leaf} (k={})",
                node.is_leaf(),
                self.k
            ));
        }
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        if node.is_leaf() {
            summary.leaves += 1;
            summary.bodies += count;
            if node.count() as usize != count {
                return Err(format!(
                    "flat leaf {idx} count {} != range size {count}",
                    node.count()
                ));
            }
            if node.first as usize != lo {
                return Err(format!(
                    "flat leaf {idx} CSR offset {} != sorted range start {lo}",
                    node.first
                ));
            }
            let mut expect: Vec<u32> = self.pairs[lo..hi].iter().map(|&(_, id)| id).collect();
            expect.sort_unstable();
            for (j, &id) in expect.iter().enumerate() {
                let got = self.flat.bodies.peek(lo + j);
                if got != id {
                    return Err(format!(
                        "flat leaf {idx} body slot {} holds {got}, expected {id} \
                         (ascending id order)",
                        lo + j
                    ));
                }
                mass += self.masses[id as usize];
                weighted += self.positions[id as usize] * self.masses[id as usize];
            }
        } else {
            summary.cells += 1;
            // Reference octant sub-ranges of [lo, hi).
            let shift = 3 * (MORTON_BITS - 1 - depth);
            let prefix = self.pairs[lo].0 & !(((1u64 << 3) << shift) - 1);
            let mut subs: Vec<(usize, usize, usize)> = Vec::new();
            let mut start = lo;
            for oct in 0..8usize {
                let end = if oct == 7 {
                    hi
                } else {
                    let bound = prefix + ((oct as u64 + 1) << shift);
                    start + self.pairs[start..hi].partition_point(|&(key, _)| key < bound)
                };
                if end > start {
                    subs.push((oct, start, end));
                }
                start = end;
            }
            if node.count() as usize != subs.len() {
                return Err(format!(
                    "flat cell {idx} has {} children, expected {} nonempty octants",
                    node.count(),
                    subs.len()
                ));
            }
            for (off, &(oct, clo, chi)) in subs.iter().enumerate() {
                let slot = node.first as usize + off;
                if slot >= self.flat.kid_capacity() {
                    return Err(format!("flat cell {idx} kid slot {slot} out of bounds"));
                }
                let kid = self.flat.kids.peek(slot) as usize;
                let (m, com) = self.walk(kid, clo, chi, depth + 1, cube.octant(oct), summary)?;
                mass += m;
                weighted += com * m;
            }
        }
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            Vec3::ZERO
        };
        if (node.mass - mass).abs() > 1e-9 * mass.abs().max(1.0) {
            return Err(format!("flat node {idx} mass {} != {mass}", node.mass));
        }
        if (node.com - com).norm() > 1e-9 * (1.0 + com.norm()) {
            return Err(format!("flat node {idx} com {:?} != {com:?}", node.com));
        }
        Ok((mass, com))
    }
}

/// Canonical structural signature of the shared tree (same format as
/// [`SeqTree::signature`]).
pub fn signature(tree: &SharedTree) -> Vec<(Vec<u8>, Vec<u32>)> {
    let mut out = Vec::new();
    let root = tree.root.peek(0);
    if root.is_null() {
        return out;
    }
    let mut path = Vec::new();
    walk_signature(tree, root, &mut path, &mut out);
    out.sort();
    out
}

fn walk_signature(
    tree: &SharedTree,
    node: NodeRef,
    path: &mut Vec<u8>,
    out: &mut Vec<(Vec<u8>, Vec<u32>)>,
) {
    if node.is_leaf() {
        let l = tree.peek_leaf(node);
        let mut ids: Vec<u32> = l.body_slice().to_vec();
        ids.sort_unstable();
        out.push((path.clone(), ids));
        return;
    }
    for (oct, ch) in tree.peek_children(node).into_iter().enumerate() {
        if !ch.is_null() {
            path.push(oct as u8);
            walk_signature(tree, ch, path, out);
            path.pop();
        }
    }
}

/// Check that the shared tree is structurally identical to the sequential
/// reference tree over the same bodies.
pub fn matches_reference(tree: &SharedTree, reference: &SeqTree) -> Result<(), String> {
    let a = signature(tree);
    let b = reference.signature();
    if a.len() != b.len() {
        return Err(format!(
            "leaf count differs: {} vs reference {}",
            a.len(),
            b.len()
        ));
    }
    for (x, y) in a.iter().zip(b.iter()) {
        if x != y {
            return Err(format!("first differing leaf: {x:?} vs reference {y:?}"));
        }
    }
    Ok(())
}
