//! Sequential reference octree.
//!
//! This is the "best sequential version of the application" the paper uses
//! as the baseline for all speedups: a plain single-threaded Barnes-Hut tree
//! with no locks, no shared-memory bookkeeping, and no environment plumbing.
//! It doubles as the correctness oracle for the parallel algorithms —
//! for a given body set and leaf threshold the octree structure is unique,
//! so the parallel trees must match it exactly.

use crate::body::Body;
use crate::math::{Aabb, Cube, Vec3};
use crate::tree::types::{MAX_DEPTH, MAX_LEAF_BODIES};

/// A node of the sequential tree.
#[derive(Debug, Clone)]
pub enum SeqNode {
    Cell {
        child: [i32; 8],
        com: Vec3,
        mass: f64,
        count: u32,
        cube: Cube,
    },
    Leaf {
        bodies: Vec<u32>,
        com: Vec3,
        mass: f64,
        cube: Cube,
    },
}

/// Sequential reference octree.
#[derive(Debug, Clone)]
pub struct SeqTree {
    pub nodes: Vec<SeqNode>,
    pub root: i32,
    pub cube: Cube,
    pub k: usize,
}

const NIL: i32 = -1;

impl SeqTree {
    /// Build the octree over `bodies` with leaf threshold `k`.
    pub fn build(bodies: &[Body], k: usize) -> SeqTree {
        assert!(
            (1..=MAX_LEAF_BODIES).contains(&k),
            "leaf threshold k={k} out of range"
        );
        let bbox = Aabb::from_points(bodies.iter().map(|b| b.pos));
        let cube = if bbox.is_empty() {
            Cube::new(Vec3::ZERO, 1.0)
        } else {
            Cube::enclosing(&bbox)
        };
        Self::build_in_cube(bodies, k, cube)
    }

    /// Build within a caller-chosen root cube (must contain all bodies).
    pub fn build_in_cube(bodies: &[Body], k: usize, cube: Cube) -> SeqTree {
        let mut t = SeqTree {
            nodes: Vec::new(),
            root: NIL,
            cube,
            k,
        };
        t.root = t.new_cell(cube);
        for (i, b) in bodies.iter().enumerate() {
            debug_assert!(
                cube.contains(b.pos),
                "body {i} at {:?} outside root cube",
                b.pos
            );
            t.insert(t.root, i as u32, b.pos, bodies, 0);
        }
        t.summarize(t.root, bodies);
        t
    }

    fn new_cell(&mut self, cube: Cube) -> i32 {
        self.nodes.push(SeqNode::Cell {
            child: [NIL; 8],
            com: Vec3::ZERO,
            mass: 0.0,
            count: 0,
            cube,
        });
        (self.nodes.len() - 1) as i32
    }

    fn new_leaf(&mut self, cube: Cube) -> i32 {
        self.nodes.push(SeqNode::Leaf {
            bodies: Vec::new(),
            com: Vec3::ZERO,
            mass: 0.0,
            cube,
        });
        (self.nodes.len() - 1) as i32
    }

    fn insert(&mut self, cell: i32, body: u32, pos: Vec3, bodies: &[Body], depth: usize) {
        assert!(
            depth < MAX_DEPTH,
            "tree depth limit exceeded: >k coincident bodies?"
        );
        let (oct, child_idx, cube) = match &self.nodes[cell as usize] {
            SeqNode::Cell { child, cube, .. } => {
                let oct = cube.octant_of(pos);
                (oct, child[oct], *cube)
            }
            SeqNode::Leaf { .. } => unreachable!("insert target must be a cell"),
        };
        if child_idx == NIL {
            let leaf = self.new_leaf(cube.octant(oct));
            self.set_child(cell, oct, leaf);
            self.leaf_push(leaf, body);
            return;
        }
        match &self.nodes[child_idx as usize] {
            SeqNode::Cell { .. } => self.insert(child_idx, body, pos, bodies, depth + 1),
            SeqNode::Leaf { bodies: held, .. } => {
                if held.len() < self.k {
                    self.leaf_push(child_idx, body);
                } else {
                    // Subdivide: replace the leaf with a cell and reinsert.
                    let held = held.clone();
                    let sub = self.new_cell(cube.octant(oct));
                    self.set_child(cell, oct, sub);
                    for &b in &held {
                        self.insert(sub, b, bodies[b as usize].pos, bodies, depth + 1);
                    }
                    self.insert(sub, body, pos, bodies, depth + 1);
                }
            }
        }
    }

    fn set_child(&mut self, cell: i32, oct: usize, v: i32) {
        if let SeqNode::Cell { child, .. } = &mut self.nodes[cell as usize] {
            child[oct] = v;
        }
    }

    fn leaf_push(&mut self, leaf: i32, body: u32) {
        if let SeqNode::Leaf { bodies, .. } = &mut self.nodes[leaf as usize] {
            bodies.push(body);
        }
    }

    /// Bottom-up pass filling mass, center of mass and counts.
    fn summarize(&mut self, node: i32, bodies: &[Body]) -> (f64, Vec3, u32) {
        match self.nodes[node as usize].clone() {
            SeqNode::Leaf { bodies: held, .. } => {
                let mass: f64 = held.iter().map(|&b| bodies[b as usize].mass).sum();
                let com = if mass > 0.0 {
                    held.iter()
                        .map(|&b| bodies[b as usize].pos * bodies[b as usize].mass)
                        .sum::<Vec3>()
                        / mass
                } else {
                    Vec3::ZERO
                };
                if let SeqNode::Leaf {
                    com: c, mass: m, ..
                } = &mut self.nodes[node as usize]
                {
                    *c = com;
                    *m = mass;
                }
                (mass, com, held.len() as u32)
            }
            SeqNode::Cell { child, .. } => {
                let mut mass = 0.0;
                let mut weighted = Vec3::ZERO;
                let mut count = 0;
                for c in child.iter().copied().filter(|&c| c != NIL) {
                    let (m, com, n) = self.summarize(c, bodies);
                    mass += m;
                    weighted += com * m;
                    count += n;
                }
                let com = if mass > 0.0 {
                    weighted / mass
                } else {
                    Vec3::ZERO
                };
                if let SeqNode::Cell {
                    com: c,
                    mass: m,
                    count: n,
                    ..
                } = &mut self.nodes[node as usize]
                {
                    *c = com;
                    *m = mass;
                    *n = count;
                }
                (mass, com, count)
            }
        }
    }

    /// Total number of bodies in the tree.
    pub fn body_count(&self) -> u32 {
        match &self.nodes[self.root as usize] {
            SeqNode::Cell { count, .. } => *count,
            SeqNode::Leaf { bodies, .. } => bodies.len() as u32,
        }
    }

    /// Number of internal cells / leaves.
    pub fn cell_and_leaf_counts(&self) -> (usize, usize) {
        let mut cells = 0;
        let mut leaves = 0;
        for n in &self.nodes {
            match n {
                SeqNode::Cell { .. } => cells += 1,
                SeqNode::Leaf { .. } => leaves += 1,
            }
        }
        (cells, leaves)
    }

    /// Canonical structural signature: for every leaf, the octant path from
    /// the root paired with the sorted body ids it holds. Two octrees over
    /// the same bodies are structurally identical iff their signatures match.
    pub fn signature(&self) -> Vec<(Vec<u8>, Vec<u32>)> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.walk_signature(self.root, &mut path, &mut out);
        out.sort();
        out
    }

    fn walk_signature(&self, node: i32, path: &mut Vec<u8>, out: &mut Vec<(Vec<u8>, Vec<u32>)>) {
        match &self.nodes[node as usize] {
            SeqNode::Leaf { bodies, .. } => {
                let mut ids = bodies.clone();
                ids.sort_unstable();
                out.push((path.clone(), ids));
            }
            SeqNode::Cell { child, .. } => {
                for (oct, &c) in child.iter().enumerate() {
                    if c != NIL {
                        path.push(oct as u8);
                        self.walk_signature(c, path, out);
                        path.pop();
                    }
                }
            }
        }
    }

    /// Maximum leaf depth.
    pub fn depth(&self) -> usize {
        fn go(t: &SeqTree, n: i32, d: usize) -> usize {
            match &t.nodes[n as usize] {
                SeqNode::Leaf { .. } => d,
                SeqNode::Cell { child, .. } => child
                    .iter()
                    .filter(|&&c| c != NIL)
                    .map(|&c| go(t, c, d + 1))
                    .max()
                    .unwrap_or(d),
            }
        }
        go(self, self.root, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn bodies(n: usize) -> Vec<Body> {
        Model::Plummer.generate(n, 17)
    }

    #[test]
    fn all_bodies_inserted() {
        let bs = bodies(500);
        let t = SeqTree::build(&bs, 8);
        assert_eq!(t.body_count(), 500);
        let sig = t.signature();
        let total: usize = sig.iter().map(|(_, ids)| ids.len()).sum();
        assert_eq!(total, 500);
        // Every body appears exactly once.
        let mut seen = vec![false; 500];
        for (_, ids) in &sig {
            for &b in ids {
                assert!(!seen[b as usize], "body {b} duplicated");
                seen[b as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaves_respect_threshold() {
        for k in [1usize, 2, 4, 8] {
            let bs = bodies(300);
            let t = SeqTree::build(&bs, k);
            for n in &t.nodes {
                if let SeqNode::Leaf { bodies, .. } = n {
                    assert!(bodies.len() <= k, "leaf over threshold k={k}");
                    assert!(!bodies.is_empty(), "empty leaf in fresh build");
                }
            }
        }
    }

    #[test]
    fn leaf_cubes_contain_their_bodies() {
        let bs = bodies(400);
        let t = SeqTree::build(&bs, 4);
        for n in &t.nodes {
            if let SeqNode::Leaf { bodies, cube, .. } = n {
                for &b in bodies {
                    assert!(cube.contains(bs[b as usize].pos));
                }
            }
        }
    }

    #[test]
    fn total_mass_preserved() {
        let bs = bodies(256);
        let t = SeqTree::build(&bs, 8);
        if let SeqNode::Cell { mass, .. } = &t.nodes[t.root as usize] {
            let expect: f64 = bs.iter().map(|b| b.mass).sum();
            assert!((mass - expect).abs() < 1e-12);
        } else {
            panic!("root is not a cell");
        }
    }

    #[test]
    fn smaller_k_gives_deeper_tree() {
        let bs = bodies(1000);
        let t1 = SeqTree::build(&bs, 1);
        let t8 = SeqTree::build(&bs, 8);
        assert!(t1.depth() >= t8.depth());
        let (c1, _) = t1.cell_and_leaf_counts();
        let (c8, _) = t8.cell_and_leaf_counts();
        assert!(c1 > c8, "k=1 must create more cells ({c1} vs {c8})");
    }

    #[test]
    fn signature_is_insertion_order_independent() {
        let bs = bodies(200);
        let t1 = SeqTree::build(&bs, 4);
        // Reversed insertion order: same structure.
        let mut rev: Vec<Body> = bs.clone();
        rev.reverse();
        let t2 = SeqTree::build(&rev, 4);
        // Map t2's body ids back to t1's numbering.
        let n = bs.len() as u32;
        let sig2: Vec<_> = t2
            .signature()
            .into_iter()
            .map(|(p, ids)| {
                let mut ids: Vec<u32> = ids.into_iter().map(|b| n - 1 - b).collect();
                ids.sort_unstable();
                (p, ids)
            })
            .collect();
        let mut sig2 = sig2;
        sig2.sort();
        assert_eq!(t1.signature(), sig2);
    }

    #[test]
    fn single_body_tree() {
        let bs = vec![Body::new(Vec3::new(0.1, 0.2, 0.3), Vec3::ZERO, 2.0)];
        let t = SeqTree::build(&bs, 8);
        assert_eq!(t.body_count(), 1);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn empty_tree() {
        let t = SeqTree::build(&[], 8);
        assert_eq!(t.body_count(), 0);
        assert_eq!(t.signature().len(), 0);
    }
}
