//! Octree data structures: the shared parallel tree, the sequential
//! reference tree, and validation utilities.

pub mod flat;
pub mod seq;
pub mod types;
pub mod validate;

pub use flat::{FlatNode, FlatPlan, FlatTree};
pub use seq::{SeqNode, SeqTree};
pub use types::{
    Arena, Cell, Leaf, NodeRef, SharedTree, TreeCapacity, TreeLayout, MAX_DEPTH, MAX_LEAF_BODIES,
};
