//! Flat traversal snapshot of the shared octree.
//!
//! After the summarization barrier the tree is immutable until the next
//! rebuild, so the force phase does not need the pointer-chasing
//! `SharedTree` representation at all. The processors cooperatively copy
//! the live tree into a compact structure-of-arrays snapshot — one 48-byte
//! record per node (center of mass, mass, half side, CSR child range) in
//! depth-first order, with husk cells and empty leaves pruned — and the
//! force walk becomes an iterative, explicit-stack scan over plain arrays.
//!
//! The snapshot is still stored in [`SharedVec`]s so every access is
//! reported to the environment: under `NativeEnv` the accounting inlines to
//! nothing and the walk runs at memory speed, while under `ssmp` the
//! flatten pass is charged as a real one-time cost and the walk's smaller
//! records (48 bytes vs a ~100-byte cell plus a 32-byte child vector)
//! show up as genuinely cheaper traffic.
//!
//! # Cooperative flatten protocol
//!
//! Flattening is deterministic and atomics-free:
//!
//! 1. **Plan** (every processor, identical result): walk the top of the
//!    tree, expanding cells with more than `n/(8P)` bodies into a *spine*
//!    and collecting the subtrees hanging off it as *frontier entries*;
//!    assign entries to processors greedy-LPT by body count.
//! 2. **Publish** (owners): each processor walks its claimed subtrees once,
//!    counting nodes / child slots / bodies, and publishes the three counts
//!    per entry.
//! 3. Barrier (the caller's), then **fill**: every processor prefix-sums
//!    the published counts into disjoint segment bases (spine first, so
//!    the root is always flat index 0), then emits its claimed subtrees
//!    into its segments; processor 0 emits the spine, pointing at the
//!    segment bases. The caller's next barrier (end of the partition
//!    phase) separates these writes from the force phase's reads.
//!
//! Child order within a node is octant order, exactly the order the
//! recursive walk visits children in, so the flat walk performs the same
//! floating-point operations in the same order and produces bitwise
//! identical accelerations (enforced by `tests/flat_force.rs`).

use crate::env::{Env, Placement};
use crate::math::Vec3;
use crate::shared::SharedVec;
use crate::tree::types::{Cell, Leaf, NodeRef, SharedTree, TreeCapacity};

/// Hard cap on plan size (spine cells + frontier entries). Expansion stops
/// at the cap; correctness is unaffected, balance degrades gracefully.
const PLAN_CAP: usize = 4096;

/// Tag bit marking a leaf record; the low bits hold the child/body count.
pub const LEAF_TAG: u32 = 1 << 31;

/// One snapshot node: summary quantities plus a CSR range — `first` indexes
/// [`FlatTree::kids`] for cells and [`FlatTree::bodies`] for leaves.
#[derive(Debug, Clone, Copy)]
pub struct FlatNode {
    pub com: Vec3,
    pub mass: f64,
    /// Half side length of the node's cube (the opening test needs `2*half`).
    pub half: f64,
    pub first: u32,
    /// `LEAF_TAG | body count` for leaves, child count for cells.
    pub tag: u32,
}

impl FlatNode {
    fn zero() -> FlatNode {
        FlatNode {
            com: Vec3::ZERO,
            mass: 0.0,
            half: 0.0,
            first: 0,
            tag: 0,
        }
    }

    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.tag & LEAF_TAG != 0
    }

    /// Child count (cells) or body count (leaves).
    #[inline]
    pub fn count(&self) -> u32 {
        self.tag & !LEAF_TAG
    }
}

/// A child of a spine cell in the flatten plan.
#[derive(Debug, Clone, Copy)]
enum SpineKid {
    /// Another spine cell, by pre-order index (== its flat node index).
    Spine(u32),
    /// A frontier subtree, by entry index.
    Sub(u32),
}

struct SpineCell {
    node: NodeRef,
    kids: Vec<SpineKid>,
}

/// The deterministic flatten plan. Every processor computes an identical
/// plan from the (immutable) summarized tree; `owner` assigns frontier
/// entries greedy-LPT by body count.
pub struct FlatPlan {
    /// Frontier subtree roots in discovery (pre-order) order.
    subs: Vec<NodeRef>,
    /// Upper-tree cells in pre-order; `spine[0]` is the root (empty when
    /// the root itself is the only frontier entry).
    spine: Vec<SpineCell>,
    spine_kids_total: usize,
    owner: Vec<u8>,
}

impl FlatPlan {
    /// Number of frontier subtrees.
    pub fn entries(&self) -> usize {
        self.subs.len()
    }
}

/// The flat snapshot storage. Allocated once per run and refilled every
/// step; sized like the tree arenas it mirrors.
pub struct FlatTree {
    pub nodes: SharedVec<FlatNode>,
    pub kids: SharedVec<u32>,
    pub bodies: SharedVec<u32>,
    /// Published per-entry counts: `[3i] = nodes, [3i+1] = kid slots,
    /// [3i+2] = bodies` of frontier entry `i`.
    sub_counts: SharedVec<u32>,
}

/// Running output cursors for one processor's segment.
struct Cursors {
    node: u32,
    kid: u32,
    body: u32,
}

/// A preloaded node record (loaded once to decide inclusion, then reused
/// for emission).
enum Rec {
    L(Leaf),
    C(Cell),
}

impl FlatTree {
    /// Allocate snapshot storage for up to `n` bodies with leaf threshold
    /// `k` on `p` processors (untimed setup, like the tree arenas).
    pub fn new<E: Env>(env: &E, n: usize, k: usize, layout: crate::tree::TreeLayout) -> FlatTree {
        let p = env.num_procs();
        let cap = TreeCapacity::plan(n, k, p, layout);
        let arenas = match layout {
            crate::tree::TreeLayout::GlobalArena => 1,
            crate::tree::TreeLayout::PerProcessor => p,
        };
        // Every live node appears once; every node except the root is a
        // child slot exactly once; every body lives in exactly one leaf.
        let nodes_cap = (cap.cells_per_arena + cap.leaves_per_arena) * arenas;
        let g = Placement::Global;
        let flat = FlatTree {
            nodes: SharedVec::new(env, nodes_cap, FlatNode::zero(), g),
            kids: SharedVec::new(env, nodes_cap, 0, g),
            bodies: SharedVec::new(env, n.max(1), 0, g),
            sub_counts: SharedVec::new(env, 3 * PLAN_CAP, 0, g),
        };
        for v in [&flat.kids, &flat.bodies, &flat.sub_counts] {
            v.tag(env, crate::env::Region::FlatTree);
        }
        flat.nodes.tag(env, crate::env::Region::FlatTree);
        flat
    }

    /// Reset the snapshot storage to its freshly-allocated state (untimed,
    /// single-threaded engine setup between jobs). The per-step flatten
    /// protocol overwrites every slot it later reads, so this exists to
    /// make reused-engine runs bitwise indistinguishable from
    /// fresh-allocation runs, not for per-step correctness.
    pub fn reset(&self) {
        for i in 0..self.nodes.len() {
            self.nodes.poke(i, FlatNode::zero());
        }
        for i in 0..self.kids.len() {
            self.kids.poke(i, 0);
        }
        for i in 0..self.bodies.len() {
            self.bodies.poke(i, 0);
        }
        for i in 0..self.sub_counts.len() {
            self.sub_counts.poke(i, 0);
        }
    }

    /// Construct-in-place entry point: store one node record (timed).
    /// Used by builders that emit the snapshot directly (MORTON) instead
    /// of flattening a linked tree.
    #[inline]
    pub fn put_node<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, node: FlatNode) {
        self.nodes.store(env, ctx, i, node);
    }

    /// Construct-in-place entry point: store one CSR child slot (timed).
    #[inline]
    pub fn put_kid<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, kid: u32) {
        self.kids.store(env, ctx, i, kid);
    }

    /// Construct-in-place entry point: store one CSR leaf body (timed).
    #[inline]
    pub fn put_body<E: Env>(&self, env: &E, ctx: &mut E::Ctx, i: usize, body: u32) {
        self.bodies.store(env, ctx, i, body);
    }

    /// Capacity of the node array (direct builders assert against it).
    pub fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Capacity of the CSR child-slot array.
    pub fn kid_capacity(&self) -> usize {
        self.kids.len()
    }

    /// Capacity of the CSR leaf-body array.
    pub fn body_capacity(&self) -> usize {
        self.bodies.len()
    }

    /// Phase 1 of the flatten: compute the deterministic plan. Identical on
    /// every processor (all inputs are post-barrier immutable tree state).
    pub fn plan<E: Env>(&self, env: &E, ctx: &mut E::Ctx, tree: &SharedTree) -> FlatPlan {
        let p = env.num_procs();
        let root = tree.root.load(env, ctx, 0);
        let rc = tree.load_cell(env, ctx, root);
        let n = rc.count as usize;
        // Aim for a handful of subtrees per processor: fine enough for LPT
        // balance, coarse enough that the spine stays tiny.
        let limit = (n / (8 * p)).max(tree.k).max(1);
        let mut plan = FlatPlan {
            subs: Vec::new(),
            spine: Vec::new(),
            spine_kids_total: 0,
            owner: Vec::new(),
        };
        let mut weights: Vec<u32> = Vec::new();
        if n > limit {
            expand(env, ctx, tree, limit, &mut plan, &mut weights, root);
        } else {
            plan.subs.push(root);
            weights.push(rc.count);
        }
        plan.spine_kids_total = plan.spine.iter().map(|s| s.kids.len()).sum();
        assert!(
            plan.subs.len() <= PLAN_CAP,
            "flatten plan overflow ({} entries)",
            plan.subs.len()
        );

        // Greedy LPT by body count, deterministic tie-breaking (same scheme
        // as the SPACE subspace assignment).
        let mut by_weight: Vec<(u32, u32)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i as u32))
            .collect();
        by_weight.sort_unstable_by(|a, b| b.cmp(a));
        let mut load = vec![0u64; p];
        plan.owner = vec![0u8; plan.subs.len()];
        for &(w, i) in &by_weight {
            let q = (0..p).min_by_key(|&q| (load[q], q)).unwrap();
            load[q] += w as u64;
            plan.owner[i as usize] = q as u8;
            env.compute(ctx, 8);
        }
        plan
    }

    /// Phase 2: each owner counts its claimed subtrees and publishes the
    /// per-entry totals. The caller barriers afterwards.
    pub fn publish_counts<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        tree: &SharedTree,
        plan: &FlatPlan,
        proc: usize,
    ) {
        for (i, &node) in plan.subs.iter().enumerate() {
            if plan.owner[i] as usize != proc {
                continue;
            }
            let rec = load_included(env, ctx, tree, node).expect("frontier entry became a husk");
            let (nn, nk, nb) = count_subtree(env, ctx, tree, node, &rec);
            self.sub_counts.store(env, ctx, 3 * i, nn);
            self.sub_counts.store(env, ctx, 3 * i + 1, nk);
            self.sub_counts.store(env, ctx, 3 * i + 2, nb);
        }
    }

    /// Phase 3: prefix-sum the published counts into disjoint segments and
    /// emit. The root always lands at flat index 0. Returns the total node
    /// count. The caller's next barrier separates these writes from the
    /// force phase's reads.
    pub fn fill<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        tree: &SharedTree,
        plan: &FlatPlan,
        proc: usize,
    ) -> u32 {
        let ns = plan.subs.len();
        // Segment bases: spine first (root at index 0), then the frontier
        // entries in discovery order.
        let mut bases: Vec<(u32, u32, u32)> = Vec::with_capacity(ns);
        let mut nn = plan.spine.len() as u32;
        let mut nk = plan.spine_kids_total as u32;
        let mut nb = 0u32;
        for i in 0..ns {
            bases.push((nn, nk, nb));
            nn += self.sub_counts.load(env, ctx, 3 * i);
            nk += self.sub_counts.load(env, ctx, 3 * i + 1);
            nb += self.sub_counts.load(env, ctx, 3 * i + 2);
        }
        assert!(
            (nn as usize) <= self.nodes.len() && (nk as usize) <= self.kids.len(),
            "flat snapshot capacity exceeded ({nn} nodes, {nk} kid slots)"
        );

        for (i, &node) in plan.subs.iter().enumerate() {
            if plan.owner[i] as usize != proc {
                continue;
            }
            let (bn, bk, bb) = bases[i];
            let mut cur = Cursors {
                node: bn,
                kid: bk,
                body: bb,
            };
            let rec = load_included(env, ctx, tree, node).expect("frontier entry became a husk");
            let at = self.emit(env, ctx, tree, node, rec, &mut cur);
            debug_assert_eq!(at, bn);
        }

        // Processor 0 emits the spine: its cells sit at flat indices
        // [0, spine.len()) in pre-order, kid slots at [0, spine_kids_total).
        if proc == 0 {
            let mut kid_cur = 0u32;
            for (j, sc) in plan.spine.iter().enumerate() {
                let c = tree.load_cell(env, ctx, sc.node);
                let first = kid_cur;
                for kid in &sc.kids {
                    let idx = match *kid {
                        SpineKid::Spine(j2) => j2,
                        SpineKid::Sub(i) => bases[i as usize].0,
                    };
                    self.kids.store(env, ctx, kid_cur as usize, idx);
                    kid_cur += 1;
                }
                self.nodes.store(
                    env,
                    ctx,
                    j,
                    FlatNode {
                        com: c.com,
                        mass: c.mass,
                        half: c.half,
                        first,
                        tag: sc.kids.len() as u32,
                    },
                );
            }
        }
        nn
    }

    /// Emit one subtree in pre-order, children in octant order. Returns the
    /// node's flat index.
    fn emit<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        tree: &SharedTree,
        node: NodeRef,
        rec: Rec,
        cur: &mut Cursors,
    ) -> u32 {
        let my = cur.node;
        cur.node += 1;
        match rec {
            Rec::L(l) => {
                let first = cur.body;
                for &b in l.body_slice() {
                    self.bodies.store(env, ctx, cur.body as usize, b);
                    cur.body += 1;
                }
                self.nodes.store(
                    env,
                    ctx,
                    my as usize,
                    FlatNode {
                        com: l.com,
                        mass: l.mass,
                        half: l.half,
                        first,
                        tag: LEAF_TAG | l.n,
                    },
                );
            }
            Rec::C(c) => {
                let mut included: Vec<(NodeRef, Rec)> = Vec::with_capacity(8);
                for ch in tree.children(env, ctx, node) {
                    if ch.is_null() {
                        continue;
                    }
                    if let Some(chrec) = load_included(env, ctx, tree, ch) {
                        included.push((ch, chrec));
                    }
                }
                let first = cur.kid;
                cur.kid += included.len() as u32;
                self.nodes.store(
                    env,
                    ctx,
                    my as usize,
                    FlatNode {
                        com: c.com,
                        mass: c.mass,
                        half: c.half,
                        first,
                        tag: included.len() as u32,
                    },
                );
                for (off, (chref, chrec)) in included.into_iter().enumerate() {
                    let idx = self.emit(env, ctx, tree, chref, chrec, cur);
                    self.kids.store(env, ctx, first as usize + off, idx);
                }
            }
        }
        my
    }
}

/// Load a child node iff the force walk would visit it: leaves with bodies,
/// cells with bodies and mass (husks contribute nothing).
fn load_included<E: Env>(env: &E, ctx: &mut E::Ctx, tree: &SharedTree, r: NodeRef) -> Option<Rec> {
    if r.is_leaf() {
        let l = tree.load_leaf(env, ctx, r);
        (l.n > 0).then_some(Rec::L(l))
    } else {
        let c = tree.load_cell(env, ctx, r);
        (c.count > 0 && c.mass != 0.0).then_some(Rec::C(c))
    }
}

/// Count (nodes, kid slots, bodies) of the live subtree at `node`.
fn count_subtree<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    node: NodeRef,
    rec: &Rec,
) -> (u32, u32, u32) {
    match rec {
        Rec::L(l) => (1, 0, l.n),
        Rec::C(_) => {
            let (mut nn, mut nk, mut nb) = (1, 0, 0);
            for ch in tree.children(env, ctx, node) {
                if ch.is_null() {
                    continue;
                }
                if let Some(chrec) = load_included(env, ctx, tree, ch) {
                    let (a, b, c) = count_subtree(env, ctx, tree, ch, &chrec);
                    nn += a;
                    nk += b + 1;
                    nb += c;
                }
            }
            (nn, nk, nb)
        }
    }
}

/// Expand the spine: `cell` has more than `limit` bodies; record it as a
/// spine cell and classify its children. Returns the cell's spine index.
fn expand<E: Env>(
    env: &E,
    ctx: &mut E::Ctx,
    tree: &SharedTree,
    limit: usize,
    plan: &mut FlatPlan,
    weights: &mut Vec<u32>,
    cell: NodeRef,
) -> u32 {
    let j = plan.spine.len() as u32;
    plan.spine.push(SpineCell {
        node: cell,
        kids: Vec::new(),
    });
    for ch in tree.children(env, ctx, cell) {
        if ch.is_null() {
            continue;
        }
        let kid = if ch.is_leaf() {
            let l = tree.load_leaf(env, ctx, ch);
            if l.n == 0 {
                continue;
            }
            let i = plan.subs.len() as u32;
            plan.subs.push(ch);
            weights.push(l.n);
            SpineKid::Sub(i)
        } else {
            let c = tree.load_cell(env, ctx, ch);
            if c.count == 0 || c.mass == 0.0 {
                continue;
            }
            let room = plan.spine.len() + plan.subs.len() + 16 <= PLAN_CAP;
            if c.count as usize > limit && room {
                SpineKid::Spine(expand(env, ctx, tree, limit, plan, weights, ch))
            } else {
                let i = plan.subs.len() as u32;
                plan.subs.push(ch);
                weights.push(c.count);
                SpineKid::Sub(i)
            }
        };
        plan.spine[j as usize].kids.push(kid);
    }
    j
}
