//! Shared octree representation.
//!
//! The tree follows the SPLASH-2 (`LOCAL`) data-structure design that the
//! paper describes: internal **cells** and **leaves** are distinct records,
//! bodies live only in leaves, and nodes are allocated from per-processor
//! arenas (or, for the ORIG algorithm, from one global arena) with
//! dynamically obtained indices. A [`NodeRef`] packs (kind, arena, index)
//! into 32 bits, exactly the role the cell-pointer arrays play in the
//! original C codes.

use crate::env::{Env, Placement};
use crate::math::{Cube, Vec3};
use crate::shared::{SharedAtomicVec, SharedAtomicVec64, SharedVec};

/// Compile-time maximum bodies per leaf. The runtime threshold `k` may be
/// anything in `1..=MAX_LEAF_BODIES`; the paper notes that allowing several
/// bodies per leaf (rather than one) is what made all tree-build algorithms
/// comparable on hardware-coherent machines.
pub const MAX_LEAF_BODIES: usize = 16;

/// Maximum tree depth before insertion gives up. With `f64` coordinates two
/// distinct points always separate well before this depth; hitting it means
/// the input contains more than `k` coincident bodies.
pub const MAX_DEPTH: usize = 64;

/// Marker stored in `owner` fields of freed nodes.
pub const OWNER_FREE: u8 = u8::MAX;

/// A packed reference to a tree node: 2 bits kind, 6 bits arena, 24 bits
/// index. The all-zero value is NULL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct NodeRef(pub u32);

const KIND_CELL: u32 = 1;
const KIND_LEAF: u32 = 2;

impl NodeRef {
    pub const NULL: NodeRef = NodeRef(0);

    #[inline]
    pub fn cell(arena: usize, index: usize) -> NodeRef {
        debug_assert!(arena < 64 && index < (1 << 24));
        NodeRef((KIND_CELL << 30) | ((arena as u32) << 24) | index as u32)
    }

    #[inline]
    pub fn leaf(arena: usize, index: usize) -> NodeRef {
        debug_assert!(arena < 64 && index < (1 << 24));
        NodeRef((KIND_LEAF << 30) | ((arena as u32) << 24) | index as u32)
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn is_cell(self) -> bool {
        self.0 >> 30 == KIND_CELL
    }

    #[inline]
    pub fn is_leaf(self) -> bool {
        self.0 >> 30 == KIND_LEAF
    }

    #[inline]
    pub fn arena(self) -> usize {
        (self.0 >> 24 & 0x3f) as usize
    }

    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xff_ffff) as usize
    }

    /// The lock id guarding this node in the environment's lock table.
    ///
    /// Node locks live in the id range `[RESERVED_LOCKS, ..)`: the low ids
    /// are reserved for arena free-list locks, which are acquired *while
    /// holding* a node lock — they must never hash to the same table entry
    /// or a subdividing processor deadlocks against itself.
    #[inline]
    pub fn lock_id(self) -> usize {
        RESERVED_LOCKS + self.0 as usize
    }
}

/// Lock ids below this are reserved for arena free-list locks; environments
/// must never alias ids `0..RESERVED_LOCKS` with any id `>= RESERVED_LOCKS`.
pub const RESERVED_LOCKS: usize = 64;

/// An internal tree cell: summary quantities and the cube of space it
/// represents. The eight child slots live in the arena's atomic `children`
/// array (see [`Arena`]): child pointers are read during lock-free descent
/// and written concurrently by different processors attaching different
/// octants of the same cell (PARTREE merge, SPACE attach), so they must be
/// individually atomic rather than fields of this struct.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Center of mass of the rooted subtree (valid after the CoM phase).
    pub com: Vec3,
    /// Total mass of the rooted subtree (valid after the CoM phase).
    pub mass: f64,
    /// Total force-computation work of bodies in the subtree, from the
    /// previous step's interaction counts. Used by costzones.
    pub cost: u64,
    /// Number of bodies in the rooted subtree (valid after the CoM phase).
    pub count: u32,
    /// Processor that created (or currently owns) this cell.
    pub owner: u8,
    pub octant_in_parent: u8,
    pub in_use: bool,
    /// Set when the UPDATE algorithm has recorded this cell in a husk list
    /// (a cell whose children were all reclaimed). Guarded by the cell's
    /// lock.
    pub husk_listed: bool,
    pub parent: NodeRef,
    /// Geometric center of the cube this cell represents.
    pub center: Vec3,
    /// Half side length of the cube.
    pub half: f64,
}

impl Cell {
    pub fn empty() -> Cell {
        Cell {
            com: Vec3::ZERO,
            mass: 0.0,
            cost: 0,
            count: 0,
            owner: 0,
            octant_in_parent: 0,
            in_use: false,
            husk_listed: false,
            parent: NodeRef::NULL,
            center: Vec3::ZERO,
            half: 0.0,
        }
    }

    #[inline]
    pub fn cube(&self) -> Cube {
        Cube::new(self.center, self.half)
    }
}

/// A leaf: up to [`MAX_LEAF_BODIES`] body indices plus summary quantities.
#[derive(Debug, Clone, Copy)]
pub struct Leaf {
    pub bodies: [u32; MAX_LEAF_BODIES],
    pub n: u32,
    pub com: Vec3,
    pub mass: f64,
    pub cost: u64,
    pub owner: u8,
    /// Processor whose created-leaf list this leaf is recorded in.
    pub listed_by: u8,
    pub octant_in_parent: u8,
    pub in_use: bool,
    /// Step stamp of the last center-of-mass processing, to make the CoM
    /// trigger idempotent across stale list entries (see the UPDATE
    /// algorithm).
    pub com_stamp: u32,
    pub parent: NodeRef,
    pub center: Vec3,
    pub half: f64,
}

impl Leaf {
    pub fn empty() -> Leaf {
        Leaf {
            bodies: [0; MAX_LEAF_BODIES],
            n: 0,
            com: Vec3::ZERO,
            mass: 0.0,
            cost: 0,
            owner: 0,
            listed_by: u8::MAX,
            octant_in_parent: 0,
            in_use: false,
            com_stamp: u32::MAX,
            parent: NodeRef::NULL,
            center: Vec3::ZERO,
            half: 0.0,
        }
    }

    #[inline]
    pub fn cube(&self) -> Cube {
        Cube::new(self.center, self.half)
    }

    #[inline]
    pub fn body_slice(&self) -> &[u32] {
        &self.bodies[..self.n as usize]
    }
}

/// One node arena: storage for cells and leaves plus allocation state.
pub struct Arena {
    pub id: usize,
    pub cells: SharedVec<Cell>,
    pub leaves: SharedVec<Leaf>,
    /// Atomic child slots: entry `8*i + oct` is the [`NodeRef`] encoding of
    /// cell `i`'s child in octant `oct` (0 = NULL).
    pub children: SharedAtomicVec,
    /// Atomic parent refs for leaves (mirrors `Leaf::parent`): lets the
    /// UPDATE algorithm locate the lock guarding a leaf without reading the
    /// (lock-protected) leaf record first.
    pub leaf_parent: SharedAtomicVec,
    /// Atomic leaf bounds (f64 bit patterns: center x/y/z, half — 4 words
    /// per leaf, mirrors the leaf's cube): lets the UPDATE algorithm run its
    /// did-the-body-cross-its-boundary check without taking any lock.
    pub leaf_bounds: SharedAtomicVec64,
    /// Child-completion counters for the parallel CoM pass, parallel to
    /// `cells`.
    pub cell_pending: SharedAtomicVec,
    /// `[0]` = next free cell index (bump).
    pub next_cell: SharedAtomicVec,
    /// `[0]` = next free leaf index (bump).
    pub next_leaf: SharedAtomicVec,
    /// Free-list stacks used by the UPDATE algorithm's reclamation.
    pub free_cells: SharedVec<u32>,
    pub free_leaves: SharedVec<u32>,
    /// `[0]` = depth of `free_cells`; `[1]` = depth of `free_leaves`. Guarded
    /// by the arena's free-list lock.
    pub free_tops: SharedAtomicVec,
}

impl Arena {
    /// Lock id guarding this arena's free lists: drawn from the reserved
    /// low range so it can never alias a node lock (see
    /// [`NodeRef::lock_id`]).
    #[inline]
    pub fn freelist_lock(&self) -> usize {
        debug_assert!(self.id < RESERVED_LOCKS);
        self.id
    }
}

/// How the tree's storage is laid out, reflecting the data-structure
/// difference between the ORIG and SPLASH-2-style algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeLayout {
    /// One global arena shared by all processors; allocation counters and
    /// per-processor bookkeeping live adjacent in shared memory (heavy false
    /// sharing — the ORIG design).
    GlobalArena,
    /// One arena per processor, placed in that processor's local memory;
    /// private counters (the SPLASH-2 / LOCAL design).
    PerProcessor,
}

/// Capacity plan for tree storage.
#[derive(Debug, Clone, Copy)]
pub struct TreeCapacity {
    pub cells_per_arena: usize,
    pub leaves_per_arena: usize,
    pub leaf_list_per_proc: usize,
}

impl TreeCapacity {
    /// A generous default for `n` bodies, leaf threshold `k`, `p` processors
    /// and the given layout.
    pub fn plan(n: usize, k: usize, p: usize, layout: TreeLayout) -> TreeCapacity {
        let k = k.max(1);
        // Leaves are bounded by the number of non-empty cubes at the finest
        // occupied level; 4n/k covers strongly clustered inputs, and the
        // per-arena share gets slack for load imbalance between processors.
        let leaves_total = (4 * n / k).max(512) + 512;
        let cells_total = leaves_total + 512;
        let arenas = match layout {
            TreeLayout::GlobalArena => 1,
            TreeLayout::PerProcessor => p,
        };
        let slack = |t: usize| (t / arenas) * 3 / 2 + 1024;
        TreeCapacity {
            cells_per_arena: slack(cells_total).min(1 << 24),
            leaves_per_arena: slack(leaves_total).min(1 << 24),
            // Every allocation records a list entry (including free-list
            // reuse), so size for allocation churn, not just live leaves.
            leaf_list_per_proc: (leaves_total * 4 / p + 4096).min(1 << 24),
        }
    }
}

/// The shared octree, plus the per-processor created-leaf lists that drive
/// the parallel center-of-mass pass.
pub struct SharedTree {
    pub arenas: Vec<Arena>,
    /// `[0]` = the root cell reference.
    pub root: SharedVec<NodeRef>,
    /// `[0]` = the root cube for the current step.
    pub root_cube: SharedVec<Cube>,
    /// Leaf threshold: a leaf holding `k` bodies splits on the next insert.
    pub k: usize,
    pub layout: TreeLayout,
    /// Per-processor lists of created leaves (encoded [`NodeRef`]s).
    pub leaf_lists: Vec<SharedVec<u32>>,
    /// Per-processor list lengths; element 0 of each is the length.
    pub leaf_list_len: Vec<SharedAtomicVec>,
}

impl SharedTree {
    /// Allocate tree storage for up to `n` bodies on `p` processors.
    pub fn new<E: Env>(env: &E, n: usize, k: usize, layout: TreeLayout) -> SharedTree {
        assert!(
            (1..=MAX_LEAF_BODIES).contains(&k),
            "leaf threshold k={k} out of range"
        );
        let p = env.num_procs();
        let cap = TreeCapacity::plan(n, k, p, layout);
        let n_arenas = match layout {
            TreeLayout::GlobalArena => 1,
            TreeLayout::PerProcessor => p,
        };
        let place = |a: usize| match layout {
            TreeLayout::GlobalArena => Placement::Global,
            TreeLayout::PerProcessor => Placement::Local(a),
        };
        let arenas = (0..n_arenas)
            .map(|a| Arena {
                id: a,
                cells: SharedVec::new(env, cap.cells_per_arena, Cell::empty(), place(a)),
                leaves: SharedVec::new(env, cap.leaves_per_arena, Leaf::empty(), place(a)),
                children: SharedAtomicVec::new(env, cap.cells_per_arena * 8, 0, place(a)),
                leaf_parent: SharedAtomicVec::new(env, cap.leaves_per_arena, 0, place(a)),
                leaf_bounds: SharedAtomicVec64::new(env, cap.leaves_per_arena * 4, 0, place(a)),
                cell_pending: SharedAtomicVec::new(env, cap.cells_per_arena, 0, place(a)),
                next_cell: SharedAtomicVec::new(env, 1, 0, place(a)),
                next_leaf: SharedAtomicVec::new(env, 1, 0, place(a)),
                free_cells: SharedVec::new(env, cap.cells_per_arena, 0, place(a)),
                free_leaves: SharedVec::new(env, cap.leaves_per_arena, 0, place(a)),
                free_tops: SharedAtomicVec::new(env, 2, 0, place(a)),
            })
            .collect();
        // In the GlobalArena (ORIG) layout the per-processor list-length
        // counters are deliberately allocated back to back in one global
        // region — they share cache lines and pages, reproducing the false
        // sharing of ORIG's shared bookkeeping arrays. The PerProcessor
        // layout gives each processor a private, locally homed counter.
        let (leaf_lists, leaf_list_len) = match layout {
            TreeLayout::GlobalArena => {
                let lists = (0..p)
                    .map(|_| SharedVec::new(env, cap.leaf_list_per_proc, 0u32, Placement::Global))
                    .collect();
                let lens = (0..p)
                    .map(|_| SharedAtomicVec::new(env, 1, 0, Placement::Global))
                    .collect();
                (lists, lens)
            }
            TreeLayout::PerProcessor => {
                let lists = (0..p)
                    .map(|q| SharedVec::new(env, cap.leaf_list_per_proc, 0u32, Placement::Local(q)))
                    .collect();
                let lens = (0..p)
                    .map(|q| SharedAtomicVec::new(env, 1, 0, Placement::Local(q)))
                    .collect();
                (lists, lens)
            }
        };
        let tree = SharedTree {
            arenas,
            root: SharedVec::new(env, 1, NodeRef::NULL, Placement::Global),
            root_cube: SharedVec::new(env, 1, Cube::new(Vec3::ZERO, 1.0), Placement::Global),
            k,
            layout,
            leaf_lists,
            leaf_list_len,
        };
        tree.tag_regions(env);
        tree
    }

    /// Register tree storage with the environment's region registry (see
    /// [`Env::tag_region`]): cells/children/pending counters as
    /// [`Region::TreeCells`], leaf storage as [`Region::TreeLeaves`], and
    /// all allocation state (bump cursors, free lists, leaf lists, root)
    /// as [`Region::TreeAlloc`].
    fn tag_regions<E: Env>(&self, env: &E) {
        use crate::env::Region;
        for a in &self.arenas {
            a.cells.tag(env, Region::TreeCells);
            a.children.tag(env, Region::TreeCells);
            a.cell_pending.tag(env, Region::TreeCells);
            a.leaves.tag(env, Region::TreeLeaves);
            a.leaf_parent.tag(env, Region::TreeLeaves);
            a.leaf_bounds.tag(env, Region::TreeLeaves);
            a.next_cell.tag(env, Region::TreeAlloc);
            a.next_leaf.tag(env, Region::TreeAlloc);
            a.free_cells.tag(env, Region::TreeAlloc);
            a.free_leaves.tag(env, Region::TreeAlloc);
            a.free_tops.tag(env, Region::TreeAlloc);
        }
        for list in &self.leaf_lists {
            list.tag(env, Region::TreeAlloc);
        }
        for len in &self.leaf_list_len {
            len.tag(env, Region::TreeAlloc);
        }
        self.root.tag(env, Region::TreeAlloc);
        self.root_cube.tag(env, Region::TreeAlloc);
    }

    /// The arena a given processor allocates from.
    #[inline]
    pub fn arena_of(&self, proc: usize) -> usize {
        match self.layout {
            TreeLayout::GlobalArena => 0,
            TreeLayout::PerProcessor => proc,
        }
    }

    // ----- timed node accessors -------------------------------------------

    #[inline]
    pub fn load_cell<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) -> Cell {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()].cells.load(env, ctx, r.index())
    }

    #[inline]
    pub fn store_cell<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef, c: Cell) {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()].cells.store(env, ctx, r.index(), c)
    }

    #[inline]
    pub fn update_cell<E: Env, R>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        r: NodeRef,
        f: impl FnOnce(&mut Cell) -> R,
    ) -> R {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()].cells.update(env, ctx, r.index(), f)
    }

    #[inline]
    pub fn load_leaf<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) -> Leaf {
        debug_assert!(r.is_leaf());
        self.arenas[r.arena()].leaves.load(env, ctx, r.index())
    }

    /// Optimistic unordered read of a cell record (see
    /// [`crate::shared::SharedVec::load_relaxed`]): used by lock-free
    /// walk-ups that re-validate before acting on the result.
    #[inline]
    pub fn load_cell_relaxed<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) -> Cell {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()]
            .cells
            .load_relaxed(env, ctx, r.index())
    }

    /// Optimistic unordered read of a leaf record; see
    /// [`SharedTree::load_cell_relaxed`].
    #[inline]
    pub fn load_leaf_relaxed<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) -> Leaf {
        debug_assert!(r.is_leaf());
        self.arenas[r.arena()]
            .leaves
            .load_relaxed(env, ctx, r.index())
    }

    #[inline]
    pub fn store_leaf<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef, l: Leaf) {
        debug_assert!(r.is_leaf());
        self.arenas[r.arena()].leaves.store(env, ctx, r.index(), l)
    }

    #[inline]
    pub fn update_leaf<E: Env, R>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        r: NodeRef,
        f: impl FnOnce(&mut Leaf) -> R,
    ) -> R {
        debug_assert!(r.is_leaf());
        self.arenas[r.arena()].leaves.update(env, ctx, r.index(), f)
    }

    // ----- untimed node accessors (setup / validation) --------------------

    #[inline]
    pub fn peek_cell(&self, r: NodeRef) -> Cell {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()].cells.peek(r.index())
    }

    #[inline]
    pub fn peek_leaf(&self, r: NodeRef) -> Leaf {
        debug_assert!(r.is_leaf());
        self.arenas[r.arena()].leaves.peek(r.index())
    }

    // ----- child slots -----------------------------------------------------

    /// Timed atomic read of a cell's child slot.
    #[inline]
    pub fn child<E: Env>(&self, env: &E, ctx: &mut E::Ctx, cell: NodeRef, oct: usize) -> NodeRef {
        debug_assert!(cell.is_cell() && oct < 8);
        NodeRef(
            self.arenas[cell.arena()]
                .children
                .load(env, ctx, cell.index() * 8 + oct),
        )
    }

    /// Timed atomic write of a cell's child slot.
    #[inline]
    pub fn set_child<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        cell: NodeRef,
        oct: usize,
        v: NodeRef,
    ) {
        debug_assert!(cell.is_cell() && oct < 8);
        self.arenas[cell.arena()]
            .children
            .store(env, ctx, cell.index() * 8 + oct, v.0)
    }

    /// Untimed child read for setup/validation.
    #[inline]
    pub fn peek_child(&self, cell: NodeRef, oct: usize) -> NodeRef {
        debug_assert!(cell.is_cell() && oct < 8);
        NodeRef(
            self.arenas[cell.arena()]
                .children
                .peek(cell.index() * 8 + oct),
        )
    }

    /// Untimed snapshot of all eight child slots.
    pub fn peek_children(&self, cell: NodeRef) -> [NodeRef; 8] {
        std::array::from_fn(|oct| self.peek_child(cell, oct))
    }

    /// Timed read of all eight child slots as one 32-byte access — the
    /// traversal phases (force, costzones, CoM) read a cell's whole child
    /// vector at once, as the original codes do. The slots are individually
    /// atomic, so the access is reported as an atomic (acquire) read.
    #[inline]
    pub fn children<E: Env>(&self, env: &E, ctx: &mut E::Ctx, cell: NodeRef) -> [NodeRef; 8] {
        debug_assert!(cell.is_cell());
        let a = &self.arenas[cell.arena()].children;
        let base = cell.index() * 8;
        // Real acquiring loads first, accounting call second: acquires are
        // instrumented after the operation they describe (see
        // [`crate::env::Env::atomic_commit`]).
        let kids = std::array::from_fn(|oct| NodeRef(a.peek(base + oct)));
        env.read_atomic(ctx, a.addr(base), 32);
        kids
    }

    /// Timed atomic read of a leaf's parent ref (mirror of `Leaf::parent`).
    #[inline]
    pub fn leaf_parent<E: Env>(&self, env: &E, ctx: &mut E::Ctx, leaf: NodeRef) -> NodeRef {
        debug_assert!(leaf.is_leaf());
        NodeRef(
            self.arenas[leaf.arena()]
                .leaf_parent
                .load(env, ctx, leaf.index()),
        )
    }

    /// Timed atomic write of a leaf's parent ref. Callers must keep
    /// `Leaf::parent` in sync (both are written by `new_leaf`/reparenting).
    #[inline]
    pub fn set_leaf_parent<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        leaf: NodeRef,
        parent: NodeRef,
    ) {
        debug_assert!(leaf.is_leaf());
        self.arenas[leaf.arena()]
            .leaf_parent
            .store(env, ctx, leaf.index(), parent.0)
    }

    /// Timed atomic write of a leaf's bounds mirror (center, half). Callers
    /// must keep `Leaf::{center, half}` in sync.
    pub fn set_leaf_bounds<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        leaf: NodeRef,
        cube: crate::math::Cube,
    ) {
        debug_assert!(leaf.is_leaf());
        let b = &self.arenas[leaf.arena()].leaf_bounds;
        let i = leaf.index() * 4;
        b.store(env, ctx, i, cube.center.x.to_bits());
        b.store(env, ctx, i + 1, cube.center.y.to_bits());
        b.store(env, ctx, i + 2, cube.center.z.to_bits());
        b.store(env, ctx, i + 3, cube.half.to_bits());
    }

    /// Timed atomic read of a leaf's bounds mirror.
    pub fn leaf_bounds<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        leaf: NodeRef,
    ) -> crate::math::Cube {
        debug_assert!(leaf.is_leaf());
        let b = &self.arenas[leaf.arena()].leaf_bounds;
        let i = leaf.index() * 4;
        crate::math::Cube::new(
            Vec3::new(
                f64::from_bits(b.load(env, ctx, i)),
                f64::from_bits(b.load(env, ctx, i + 1)),
                f64::from_bits(b.load(env, ctx, i + 2)),
            ),
            f64::from_bits(b.load(env, ctx, i + 3)),
        )
    }

    // ----- pending counters ------------------------------------------------

    #[inline]
    pub fn pending_store<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef, v: u32) {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()]
            .cell_pending
            .store(env, ctx, r.index(), v)
    }

    #[inline]
    pub fn pending_add<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef, v: u32) -> u32 {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()]
            .cell_pending
            .fetch_add(env, ctx, r.index(), v)
    }

    #[inline]
    pub fn pending_sub<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef, v: u32) -> u32 {
        debug_assert!(r.is_cell());
        self.arenas[r.arena()]
            .cell_pending
            .fetch_sub(env, ctx, r.index(), v)
    }

    #[inline]
    pub fn pending_peek(&self, r: NodeRef) -> u32 {
        self.arenas[r.arena()].cell_pending.peek(r.index())
    }

    // ----- allocation -------------------------------------------------------

    /// Allocate a fresh cell from `arena`, owned by `owner`.
    pub fn alloc_cell<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        arena: usize,
        owner: usize,
    ) -> NodeRef {
        let a = &self.arenas[arena];
        let idx = a.next_cell.fetch_add(env, ctx, 0, 1) as usize;
        assert!(
            idx < a.cells.len(),
            "cell arena {arena} exhausted ({} slots); raise TreeCapacity",
            a.cells.len()
        );
        let r = NodeRef::cell(arena, idx);
        let mut c = Cell::empty();
        c.owner = owner as u8;
        c.in_use = true;
        a.cells.store(env, ctx, idx, c);
        a.cell_pending.store(env, ctx, idx, 0);
        // Arenas are reused across steps: clear stale child slots.
        for oct in 0..8 {
            a.children.store(env, ctx, idx * 8 + oct, 0);
        }
        r
    }

    /// Allocate a fresh leaf from `arena`, owned by `owner`, recording it in
    /// `owner`'s created-leaf list (unless it is already listed there from a
    /// previous step — UPDATE reuse).
    pub fn alloc_leaf<E: Env>(
        &self,
        env: &E,
        ctx: &mut E::Ctx,
        arena: usize,
        owner: usize,
    ) -> NodeRef {
        let a = &self.arenas[arena];
        // Try the free list first (only ever populated by UPDATE).
        let reused = if a.free_tops.peek(1) > 0 {
            env.lock(ctx, a.freelist_lock());
            let top = a.free_tops.load(env, ctx, 1);
            let got = if top > 0 {
                let idx = a.free_leaves.load(env, ctx, top as usize - 1);
                a.free_tops.store(env, ctx, 1, top - 1);
                Some(idx as usize)
            } else {
                None
            };
            env.unlock(ctx, a.freelist_lock());
            got
        } else {
            None
        };
        let idx = match reused {
            Some(idx) => idx,
            None => {
                let idx = a.next_leaf.fetch_add(env, ctx, 0, 1) as usize;
                assert!(
                    idx < a.leaves.len(),
                    "leaf arena {arena} exhausted ({} slots); raise TreeCapacity",
                    a.leaves.len()
                );
                idx
            }
        };
        let r = NodeRef::leaf(arena, idx);
        let mut l = Leaf::empty();
        l.owner = owner as u8;
        l.in_use = true;
        l.listed_by = owner as u8;
        a.leaves.store(env, ctx, idx, l);
        // Always record: duplicate list entries are deduplicated by the CoM
        // pass's `com_stamp` (same processor scans its list sequentially),
        // and entries whose leaf was re-listed by another processor are
        // skipped via `listed_by`.
        self.record_leaf(env, ctx, owner, r);
        r
    }

    /// Append a leaf to `proc`'s created-leaf list.
    fn record_leaf<E: Env>(&self, env: &E, ctx: &mut E::Ctx, proc: usize, r: NodeRef) {
        let len = self.leaf_list_len[proc].fetch_add(env, ctx, 0, 1) as usize;
        assert!(
            len < self.leaf_lists[proc].len(),
            "created-leaf list of processor {proc} exhausted; raise TreeCapacity"
        );
        self.leaf_lists[proc].store(env, ctx, len, r.0);
    }

    /// Mark a leaf dead without recycling its slot. This is what the
    /// rebuild-every-step algorithms use when a subdivision replaces a leaf:
    /// it takes no lock, so it adds nothing to the lock counts the paper
    /// studies. The slot is reclaimed wholesale by the next
    /// [`SharedTree::reset_for_rebuild`].
    pub fn retire_leaf<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) {
        debug_assert!(r.is_leaf());
        self.update_leaf(env, ctx, r, |l| {
            l.in_use = false;
            l.owner = OWNER_FREE;
            l.n = 0;
        });
        self.set_leaf_parent(env, ctx, r, NodeRef::NULL);
    }

    /// Return a leaf to its arena's free list (UPDATE reclamation). The leaf
    /// stays recorded in whatever list listed it; `in_use=false` makes stale
    /// entries skippable.
    pub fn free_leaf<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) {
        debug_assert!(r.is_leaf());
        let a = &self.arenas[r.arena()];
        self.update_leaf(env, ctx, r, |l| {
            l.in_use = false;
            l.owner = OWNER_FREE;
            l.n = 0;
        });
        self.set_leaf_parent(env, ctx, r, NodeRef::NULL);
        env.lock(ctx, a.freelist_lock());
        let top = a.free_tops.load(env, ctx, 1);
        a.free_leaves
            .store(env, ctx, top as usize, r.index() as u32);
        a.free_tops.store(env, ctx, 1, top + 1);
        env.unlock(ctx, a.freelist_lock());
    }

    /// Return a cell to its arena's free list (UPDATE reclamation).
    pub fn free_cell<E: Env>(&self, env: &E, ctx: &mut E::Ctx, r: NodeRef) {
        debug_assert!(r.is_cell());
        let a = &self.arenas[r.arena()];
        self.update_cell(env, ctx, r, |c| {
            c.in_use = false;
            c.owner = OWNER_FREE;
        });
        for oct in 0..8 {
            a.children.store(env, ctx, r.index() * 8 + oct, 0);
        }
        env.lock(ctx, a.freelist_lock());
        let top = a.free_tops.load(env, ctx, 0);
        a.free_cells.store(env, ctx, top as usize, r.index() as u32);
        a.free_tops.store(env, ctx, 0, top + 1);
        env.unlock(ctx, a.freelist_lock());
    }

    /// Reset allocation state for a fresh rebuild. Called by each processor
    /// for the arenas it owns (`proc == arena`, or processor 0 for the
    /// global layout), between barriers.
    pub fn reset_for_rebuild<E: Env>(&self, env: &E, ctx: &mut E::Ctx, proc: usize) {
        if proc < self.arenas.len() {
            let a = &self.arenas[proc];
            a.next_cell.store(env, ctx, 0, 0);
            a.next_leaf.store(env, ctx, 0, 0);
            a.free_tops.store(env, ctx, 0, 0);
            a.free_tops.store(env, ctx, 1, 0);
        }
        self.leaf_list_len[proc].store(env, ctx, 0, 0);
        // Rebuilding from scratch invalidates any listed_by memory: entries
        // will be re-recorded, so clear stale flags lazily via list length.
        if proc == 0 {
            self.root.store(env, ctx, 0, NodeRef::NULL);
        }
    }

    /// Reset already-allocated tree storage to its freshly-allocated state
    /// (untimed, single-threaded engine setup between jobs). Unlike the
    /// per-step [`SharedTree::reset_for_rebuild`] — which only rewinds the
    /// allocation counters — this clears every record, child slot, mirror
    /// and free list back to the values [`SharedTree::new`] establishes, so
    /// a run on a reused engine starts from bitwise the same cold state as a
    /// run on a fresh allocation.
    pub fn reset(&self) {
        for a in &self.arenas {
            for i in 0..a.cells.len() {
                a.cells.poke(i, Cell::empty());
            }
            for i in 0..a.leaves.len() {
                a.leaves.poke(i, Leaf::empty());
            }
            for i in 0..a.children.len() {
                a.children.poke(i, 0);
            }
            for i in 0..a.leaf_parent.len() {
                a.leaf_parent.poke(i, 0);
            }
            for i in 0..a.leaf_bounds.len() {
                a.leaf_bounds.poke(i, 0);
            }
            for i in 0..a.cell_pending.len() {
                a.cell_pending.poke(i, 0);
            }
            a.next_cell.poke(0, 0);
            a.next_leaf.poke(0, 0);
            for i in 0..a.free_cells.len() {
                a.free_cells.poke(i, 0);
            }
            for i in 0..a.free_leaves.len() {
                a.free_leaves.poke(i, 0);
            }
            a.free_tops.poke(0, 0);
            a.free_tops.poke(1, 0);
        }
        for (list, len) in self.leaf_lists.iter().zip(&self.leaf_list_len) {
            for i in 0..list.len() {
                list.poke(i, 0);
            }
            len.poke(0, 0);
        }
        self.root.poke(0, NodeRef::NULL);
        self.root_cube.poke(0, Cube::new(Vec3::ZERO, 1.0));
    }

    /// Number of live cells allocated across all arenas (untimed).
    pub fn cells_allocated(&self) -> usize {
        self.arenas
            .iter()
            .map(|a| a.next_cell.peek(0) as usize)
            .sum()
    }

    /// Number of live leaves allocated across all arenas (untimed).
    pub fn leaves_allocated(&self) -> usize {
        self.arenas
            .iter()
            .map(|a| a.next_leaf.peek(0) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;

    #[test]
    fn noderef_packing_roundtrip() {
        for (arena, idx) in [(0usize, 0usize), (5, 12345), (63, (1 << 24) - 1)] {
            let c = NodeRef::cell(arena, idx);
            assert!(c.is_cell() && !c.is_leaf() && !c.is_null());
            assert_eq!(c.arena(), arena);
            assert_eq!(c.index(), idx);
            let l = NodeRef::leaf(arena, idx);
            assert!(l.is_leaf() && !l.is_cell() && !l.is_null());
            assert_eq!(l.arena(), arena);
            assert_eq!(l.index(), idx);
            assert_ne!(c, l);
        }
        assert!(NodeRef::NULL.is_null());
        assert!(!NodeRef::NULL.is_cell());
        assert!(!NodeRef::NULL.is_leaf());
    }

    #[test]
    fn capacity_plan_is_positive_and_bounded() {
        for &n in &[1usize, 100, 10_000, 1_000_000] {
            for &p in &[1usize, 4, 16, 32] {
                for layout in [TreeLayout::GlobalArena, TreeLayout::PerProcessor] {
                    let c = TreeCapacity::plan(n, 8, p, layout);
                    assert!(c.cells_per_arena > 0);
                    assert!(c.leaves_per_arena > 0);
                    assert!(c.leaf_list_per_proc > 0);
                    assert!(c.cells_per_arena <= 1 << 24);
                }
            }
        }
    }

    #[test]
    fn alloc_cell_and_leaf() {
        let env = NativeEnv::new(2);
        let tree = SharedTree::new(&env, 1000, 8, TreeLayout::PerProcessor);
        let mut ctx = env.make_ctx(0);
        let c = tree.alloc_cell(&env, &mut ctx, 0, 0);
        assert!(c.is_cell());
        assert!(tree.peek_cell(c).in_use);
        assert_eq!(tree.peek_cell(c).owner, 0);
        let l = tree.alloc_leaf(&env, &mut ctx, 0, 0);
        assert!(l.is_leaf());
        assert_eq!(tree.leaf_list_len[0].peek(0), 1);
        assert_eq!(tree.leaf_lists[0].peek(0), l.0);
        assert_eq!(tree.cells_allocated(), 1);
        assert_eq!(tree.leaves_allocated(), 1);
    }

    #[test]
    fn leaf_free_and_reuse() {
        let env = NativeEnv::new(1);
        let tree = SharedTree::new(&env, 100, 4, TreeLayout::PerProcessor);
        let mut ctx = env.make_ctx(0);
        let l1 = tree.alloc_leaf(&env, &mut ctx, 0, 0);
        tree.free_leaf(&env, &mut ctx, l1);
        assert!(!tree.peek_leaf(l1).in_use);
        let l2 = tree.alloc_leaf(&env, &mut ctx, 0, 0);
        // Free-list reuse must return the same slot. The duplicate list
        // entry is expected; the CoM pass deduplicates by stamp.
        assert_eq!(l1, l2);
        assert_eq!(tree.leaf_list_len[0].peek(0), 2);
    }

    #[test]
    fn global_layout_uses_one_arena() {
        let env = NativeEnv::new(4);
        let tree = SharedTree::new(&env, 1000, 8, TreeLayout::GlobalArena);
        assert_eq!(tree.arenas.len(), 1);
        for p in 0..4 {
            assert_eq!(tree.arena_of(p), 0);
        }
        let per = SharedTree::new(&env, 1000, 8, TreeLayout::PerProcessor);
        assert_eq!(per.arenas.len(), 4);
        assert_eq!(per.arena_of(3), 3);
    }

    #[test]
    fn reset_clears_allocation_state() {
        let env = NativeEnv::new(1);
        let tree = SharedTree::new(&env, 100, 4, TreeLayout::PerProcessor);
        let mut ctx = env.make_ctx(0);
        tree.alloc_cell(&env, &mut ctx, 0, 0);
        tree.alloc_leaf(&env, &mut ctx, 0, 0);
        tree.reset_for_rebuild(&env, &mut ctx, 0);
        assert_eq!(tree.cells_allocated(), 0);
        assert_eq!(tree.leaves_allocated(), 0);
        assert_eq!(tree.leaf_list_len[0].peek(0), 0);
        assert!(tree.root.peek(0).is_null());
    }

    #[test]
    fn full_reset_restores_fresh_state() {
        let env = NativeEnv::new(2);
        let tree = SharedTree::new(&env, 200, 4, TreeLayout::PerProcessor);
        let mut ctx = env.make_ctx(0);
        let c = tree.alloc_cell(&env, &mut ctx, 0, 0);
        let l = tree.alloc_leaf(&env, &mut ctx, 0, 0);
        tree.set_child(&env, &mut ctx, c, 3, l);
        tree.set_leaf_parent(&env, &mut ctx, l, c);
        tree.free_leaf(&env, &mut ctx, l);
        tree.root.poke(0, c);
        tree.root_cube
            .poke(0, Cube::new(Vec3::new(1.0, 2.0, 3.0), 9.0));
        tree.reset();
        assert_eq!(tree.cells_allocated(), 0);
        assert_eq!(tree.leaves_allocated(), 0);
        assert!(tree.root.peek(0).is_null());
        let cube = tree.root_cube.peek(0);
        assert_eq!((cube.center, cube.half), (Vec3::ZERO, 1.0));
        for a in &tree.arenas {
            assert!(!a.cells.peek(0).in_use);
            assert!(!a.leaves.peek(0).in_use);
            assert_eq!(a.leaves.peek(0).listed_by, u8::MAX);
            assert_eq!(a.children.peek(3), 0);
            assert_eq!(a.leaf_parent.peek(0), 0);
            assert_eq!(a.free_tops.peek(1), 0);
        }
        for q in 0..2 {
            assert_eq!(tree.leaf_list_len[q].peek(0), 0);
            assert_eq!(tree.leaf_lists[q].peek(0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_k_rejected() {
        let env = NativeEnv::new(1);
        let _ = SharedTree::new(&env, 100, 0, TreeLayout::PerProcessor);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let env = NativeEnv::new(4);
        let tree = SharedTree::new(&env, 10_000, 8, TreeLayout::GlobalArena);
        let mut all: Vec<Vec<NodeRef>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|p| {
                    let env = &env;
                    let tree = &tree;
                    s.spawn(move || {
                        let mut ctx = env.make_ctx(p);
                        (0..200)
                            .map(|_| tree.alloc_cell(env, &mut ctx, 0, p))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                all.push(h.join().unwrap());
            }
        });
        let mut seen = std::collections::HashSet::new();
        for refs in &all {
            for r in refs {
                assert!(seen.insert(r.0), "duplicate allocation {r:?}");
            }
        }
        assert_eq!(seen.len(), 800);
    }
}
