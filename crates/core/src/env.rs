//! The shared-address-space environment abstraction.
//!
//! Every algorithm in this crate is written once, generic over [`Env`]. An
//! `Env` supplies:
//!
//! * **real synchronization** — locks and barriers that actually provide
//!   mutual exclusion / rendezvous among the worker threads, and
//! * **a timing account** — hooks (`read`, `write`, `compute`) through which
//!   the algorithm reports its shared-memory accesses and local computation.
//!
//! [`NativeEnv`] maps synchronization to `std`-based primitives and
//! ignores the timing hooks: algorithms then run at full native speed on the
//! host. The `ssmp` crate provides `SimEnv`, which additionally routes every
//! access through a coherence-protocol cost model and advances a per-processor
//! virtual clock — the same algorithm code then "runs on" an SGI Origin 2000,
//! an SGI Challenge, an Intel Paragon under HLRC shared virtual memory, or a
//! Typhoon-zero, reproducing the paper's cross-platform study.

use crate::sync::{RawLock, SenseBarrier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A virtual address in the simulated shared address space.
///
/// The native environment hands out unique addresses but never interprets
/// them; simulation environments use them to determine cache lines, pages,
/// and home nodes.
pub type VAddr = u64;

/// Placement hint for shared allocations, mirroring the data-placement
/// differences between the ORIG and LOCAL algorithms that the paper studies:
/// ORIG allocates cells in one global array (no locality, heavy false
/// sharing), LOCAL keeps each processor's cells contiguous in its own memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One shared region; home pages assigned round-robin (or centrally,
    /// depending on platform).
    Global,
    /// Allocated in (and homed at) the given processor's local memory.
    Local(usize),
}

/// The four top-level phases of one Barnes-Hut step, in execution order.
/// Used by the [`Env::phase_begin`]/[`Env::phase_end`] observability hooks
/// and by the per-phase accounting in [`crate::app`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Bounds reduction + tree build + center-of-mass pass.
    Tree,
    /// Costzones partitioning.
    Partition,
    /// Force computation.
    Force,
    /// Position/velocity update.
    Update,
}

impl Phase {
    /// All phases in execution order; `ALL[p.index()] == p`.
    pub const ALL: [Phase; 4] = [Phase::Tree, Phase::Partition, Phase::Force, Phase::Update];

    /// Stable index into per-phase arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Tree => 0,
            Phase::Partition => 1,
            Phase::Force => 2,
            Phase::Update => 3,
        }
    }

    /// Lower-case name, used for trace span labels and table rows.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Tree => "tree",
            Phase::Partition => "partition",
            Phase::Force => "force",
            Phase::Update => "update",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Named shared-data regions for attributed telemetry.
///
/// Every shared allocation the application makes belongs to one of these
/// regions; allocators report the mapping through [`Env::tag_region`] and
/// attribution-capable environments (the `ssmp` machine) then account each
/// simulated miss, fault and lock wait to the region it hit. The variants
/// mirror the data structures the paper's communication analysis talks
/// about: tree cells, tree leaves, the tree allocator state, body SoA
/// fields, the flat force-walk snapshot, and the partitioner's arrays.
///
/// Unregistered addresses fall into [`Region::Other`], so per-region
/// counters always tile the aggregate counters exactly, whatever is tagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Body SoA state: positions, velocities, accelerations, masses.
    Bodies,
    /// Per-body metadata: work-cost estimates and body→leaf back-links.
    BodyMeta,
    /// Partition outputs: body ordering, zone boundaries, processor boxes.
    Partition,
    /// Partitioner scratch: SPACE frontier/count/cost/routing arrays.
    PartitionScratch,
    /// Internal tree cells: cell pool, child links, pending counters.
    TreeCells,
    /// Tree leaves: leaf pool, parent links, leaf bounding boxes.
    TreeLeaves,
    /// Tree allocator state: bump cursors, free lists, per-processor leaf
    /// lists, the root pointer and root cube. Free-list lock waits are
    /// attributed here (see [`Region::of_lock`]).
    TreeAlloc,
    /// Flat SoA tree snapshot used by the force walk.
    FlatTree,
    /// MORTON sort workspace: ping-pong key/index buffers, per-processor
    /// digit histograms, cooperative rank/base arrays, and the emission
    /// plan's publication arrays.
    SortScratch,
    /// Per-processor interaction-list scratch of the batched force kernel:
    /// the SoA (position, mass, id) entries each group traversal emits and
    /// the evaluation loop consumes.
    ForceList,
    /// Anything not (yet) tagged: harness scratch, ad-hoc test
    /// allocations. Keeping a catch-all row makes the per-region tiling
    /// property unconditional.
    Other,
}

impl Region {
    /// All regions in display order; `ALL[r.index()] == r`.
    pub const ALL: [Region; Region::COUNT] = [
        Region::Bodies,
        Region::BodyMeta,
        Region::Partition,
        Region::PartitionScratch,
        Region::TreeCells,
        Region::TreeLeaves,
        Region::TreeAlloc,
        Region::FlatTree,
        Region::SortScratch,
        Region::ForceList,
        Region::Other,
    ];

    /// Number of regions (length of [`Region::ALL`]).
    pub const COUNT: usize = 11;

    /// Stable index into per-region arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Region::Bodies => 0,
            Region::BodyMeta => 1,
            Region::Partition => 2,
            Region::PartitionScratch => 3,
            Region::TreeCells => 4,
            Region::TreeLeaves => 5,
            Region::TreeAlloc => 6,
            Region::FlatTree => 7,
            Region::SortScratch => 8,
            Region::ForceList => 9,
            Region::Other => 10,
        }
    }

    /// Stable lower-case name, used in report rows and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Region::Bodies => "bodies",
            Region::BodyMeta => "body-meta",
            Region::Partition => "partition",
            Region::PartitionScratch => "partition-scratch",
            Region::TreeCells => "tree-cells",
            Region::TreeLeaves => "tree-leaves",
            Region::TreeAlloc => "tree-alloc",
            Region::FlatTree => "flat-tree",
            Region::SortScratch => "sort-scratch",
            Region::ForceList => "force-list",
            Region::Other => "other",
        }
    }

    /// The region whose data a lock id protects: ids below
    /// [`crate::tree::types::RESERVED_LOCKS`] are the tree allocator's
    /// free-list locks, everything above is a per-cell/leaf node lock
    /// (see `NodeRef::lock_id`). Lock acquisitions and waits are
    /// attributed to the protected structure, which is exactly the
    /// paper's "time spent locking hot cells" signal.
    #[inline]
    pub fn of_lock(id: usize) -> Region {
        const RESERVED: usize = 64; // == crate::tree::types::RESERVED_LOCKS
        if id < RESERVED {
            Region::TreeAlloc
        } else {
            Region::TreeCells
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-context statistics an environment can report after a run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CtxStats {
    /// Current time: nanoseconds (native) or simulated cycles (ssmp).
    pub time: u64,
    /// Number of lock acquisitions performed by this processor.
    pub lock_acquires: u64,
    /// Time spent waiting for locks, in the environment's time unit.
    pub lock_wait: u64,
    /// Time spent waiting at barriers, in the environment's time unit.
    pub barrier_wait: u64,
    /// Cache/page misses served remotely (simulation environments only).
    pub remote_misses: u64,
    /// Misses served from local memory (simulation environments only).
    pub local_misses: u64,
    /// Page faults / protocol handler invocations (SVM platforms only).
    pub page_faults: u64,
}

impl CtxStats {
    /// Field-wise difference against an earlier snapshot of the *same*
    /// context. All fields are monotonic counters (including `time`), so
    /// the difference is the activity between the two snapshots; saturating
    /// arithmetic keeps a misuse from panicking in release builds.
    pub fn delta_since(&self, earlier: &CtxStats) -> CtxStats {
        CtxStats {
            time: self.time.saturating_sub(earlier.time),
            lock_acquires: self.lock_acquires.saturating_sub(earlier.lock_acquires),
            lock_wait: self.lock_wait.saturating_sub(earlier.lock_wait),
            barrier_wait: self.barrier_wait.saturating_sub(earlier.barrier_wait),
            remote_misses: self.remote_misses.saturating_sub(earlier.remote_misses),
            local_misses: self.local_misses.saturating_sub(earlier.local_misses),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
        }
    }

    /// Field-wise accumulation of a delta produced by
    /// [`CtxStats::delta_since`].
    pub fn accumulate(&mut self, delta: &CtxStats) {
        self.time += delta.time;
        self.lock_acquires += delta.lock_acquires;
        self.lock_wait += delta.lock_wait;
        self.barrier_wait += delta.barrier_wait;
        self.remote_misses += delta.remote_misses;
        self.local_misses += delta.local_misses;
        self.page_faults += delta.page_faults;
    }
}

/// A shared-address-space execution environment. See the module docs.
///
/// Algorithms must obey the usual shared-memory contract: any location that
/// can be written concurrently is only accessed while holding the `Env` lock
/// that the algorithm associates with it (or with phase-level ownership
/// separation enforced by barriers). The environments provide the real
/// synchronization to make that sound.
pub trait Env: Sync {
    /// Per-processor (per-worker-thread) context. Owned by the worker.
    type Ctx: Send;

    /// Number of processors (worker threads) in this environment.
    fn num_procs(&self) -> usize;

    /// Create the context for processor `proc` (`0..num_procs`).
    fn make_ctx(&self, proc: usize) -> Self::Ctx;

    /// Allocate `bytes` of shared address space.
    fn alloc(&self, bytes: u64, align: u64, place: Placement) -> VAddr;

    /// Account for a shared-memory read of `bytes` at `addr`.
    fn read(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32);

    /// Account for a shared-memory write of `bytes` at `addr`.
    fn write(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32);

    /// Account for an atomic read-modify-write (defaults to read + write).
    /// An RMW carries acquire *and* release semantics: checking
    /// environments treat it as a synchronization edge on `addr`.
    fn rmw(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.read(ctx, addr, bytes);
        self.write(ctx, addr, bytes);
    }

    /// Account for an atomic load with acquire semantics. Cost models treat
    /// it as a plain read; checking environments use the distinction to
    /// model the happens-before edge instead of reporting a data race.
    fn read_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.read(ctx, addr, bytes);
    }

    /// Account for an atomic store with release semantics. See
    /// [`Env::read_atomic`].
    fn write_atomic(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.write(ctx, addr, bytes);
    }

    /// Ordering-model hook invoked *after* the real atomic operation that an
    /// [`Env::rmw`] or [`Env::read_atomic`] call accounted for has executed.
    ///
    /// Cost models ignore it (no time or traffic is charged — the default is
    /// a no-op). Checking environments use it for the acquire side of the
    /// synchronization edge: the instrumentation call necessarily runs at a
    /// different instant than the real atomic it describes, and the sound
    /// protocol is *publish before the real operation, acquire after it*
    /// (see [`crate::check`]). Callers performing a real acquiring atomic
    /// must therefore invoke the accounting call first, the real operation
    /// second, and `atomic_commit` third.
    fn atomic_commit(&self, _ctx: &mut Self::Ctx, _addr: VAddr, _bytes: u32) {}

    /// Account for a deliberately unordered (relaxed, possibly torn) read:
    /// an optimistic pre-check whose result is re-validated under proper
    /// synchronization before being acted on. Cost models charge it as a
    /// read; checking environments exempt it from race reporting.
    fn read_unordered(&self, ctx: &mut Self::Ctx, addr: VAddr, bytes: u32) {
        self.read(ctx, addr, bytes);
    }

    /// Account for `cycles` of purely local computation.
    fn compute(&self, ctx: &mut Self::Ctx, cycles: u64);

    /// Acquire lock `lock` (hashed into the environment's lock table).
    fn lock(&self, ctx: &mut Self::Ctx, lock: usize);

    /// Release lock `lock`. Must pair with a previous [`Env::lock`].
    fn unlock(&self, ctx: &mut Self::Ctx, lock: usize);

    /// Global barrier across all processors.
    fn barrier(&self, ctx: &mut Self::Ctx);

    /// Observability hook: the address range `[base, base + bytes)` holds
    /// the shared data structure named by `region`. Called by allocating
    /// containers ([`crate::world::World`], [`crate::tree::SharedTree`],
    /// [`crate::tree::FlatTree`]) right after [`Env::alloc`], from the
    /// set-up thread before workers start. Execution environments ignore it
    /// (the default is a no-op and charges nothing); attribution-capable
    /// environments record the mapping so per-region communication counters
    /// can be reported. Wrapper environments must forward it.
    fn tag_region(&self, _base: VAddr, _bytes: u64, _region: Region) {}

    /// Observability hook: processor `ctx` is entering `phase` of step
    /// `step` (warm-up steps included). Emitted by [`crate::app`] at every
    /// phase boundary; execution environments and cost models ignore it
    /// (the default is a no-op and charges nothing), while tracing wrappers
    /// ([`crate::trace::TraceEnv`]) open a span. Wrapper environments must
    /// forward it to their inner environment.
    fn phase_begin(&self, _ctx: &mut Self::Ctx, _phase: Phase, _step: u32) {}

    /// Observability hook: processor `ctx` is leaving `phase` of step
    /// `step`. Must pair with a previous [`Env::phase_begin`]. See
    /// [`Env::phase_begin`].
    fn phase_end(&self, _ctx: &mut Self::Ctx, _phase: Phase, _step: u32) {}

    /// Scheduling hook: the worker thread for processor `proc` is about to
    /// start executing a submitted SPMD job. Called by
    /// [`crate::harness::WorkerPool::run`] on the worker thread, before
    /// [`Env::make_ctx`]. Execution environments ignore it (the default is a
    /// no-op); the controlled scheduler ([`crate::sched::SchedEnv`]) uses it
    /// as the registration rendezvous that gates workers behind the
    /// scheduler. Wrapper environments must forward it to their inner
    /// environment.
    fn worker_begin(&self, _proc: usize) {}

    /// Scheduling hook: the worker thread for processor `proc` has finished
    /// (or unwound from) its SPMD job. Always called, even when the job
    /// panicked, so a controlled scheduler can hand control to the remaining
    /// workers. Must pair with [`Env::worker_begin`]; wrapper environments
    /// must forward it.
    fn worker_end(&self, _proc: usize) {}

    /// Current time for this processor: wall nanoseconds (native) or
    /// simulated cycles (ssmp).
    fn now(&self, ctx: &Self::Ctx) -> u64;

    /// Statistics snapshot for this processor.
    fn stats(&self, ctx: &Self::Ctx) -> CtxStats;
}

/// Number of entries in the native lock table. Cell locks are hashed into
/// this table, exactly like the fixed lock arrays of the SPLASH codes; a
/// collision merely adds contention, never unsoundness — except that ids
/// below [`crate::tree::types::RESERVED_LOCKS`] are kept in their own slots
/// so a free-list lock can be taken while holding a node lock.
pub const NATIVE_LOCK_TABLE: usize = 4096;

/// Map a lock id into a table of `table` entries, preserving the reserved
/// low range (see [`crate::tree::types::RESERVED_LOCKS`]).
///
/// `table` must be strictly larger than the reserved range: with
/// `table <= 64` the modulo would alias node locks into (or past) the
/// reserved slots, silently breaking the free-list/node-lock separation.
#[inline]
pub fn lock_slot(id: usize, table: usize) -> usize {
    const RESERVED: usize = 64;
    debug_assert!(
        table > RESERVED,
        "lock table of {table} entries cannot preserve the {RESERVED} reserved slots"
    );
    if id < RESERVED {
        id
    } else {
        RESERVED + (id - RESERVED) % (table - RESERVED)
    }
}

/// The native execution environment: real threads, real locks, zero timing
/// overhead. `read`/`write`/`compute` are no-ops that compile away.
pub struct NativeEnv {
    procs: usize,
    locks: Box<[RawLock]>,
    barrier: SenseBarrier,
    start: Instant,
    next_addr: AtomicU64,
}

/// Per-processor context of [`NativeEnv`].
pub struct NativeCtx {
    proc: usize,
    lock_acquires: u64,
    lock_wait_ns: u64,
    barrier_wait_ns: u64,
}

impl NativeEnv {
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0, "need at least one processor");
        let locks = (0..NATIVE_LOCK_TABLE).map(|_| RawLock::new()).collect();
        NativeEnv {
            procs,
            locks,
            barrier: SenseBarrier::new(procs),
            start: Instant::now(),
            next_addr: AtomicU64::new(0x1000),
        }
    }

    /// The processor id a context was created for.
    pub fn proc_of(ctx: &NativeCtx) -> usize {
        ctx.proc
    }
}

impl Env for NativeEnv {
    type Ctx = NativeCtx;

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn make_ctx(&self, proc: usize) -> NativeCtx {
        assert!(proc < self.procs);
        NativeCtx {
            proc,
            lock_acquires: 0,
            lock_wait_ns: 0,
            barrier_wait_ns: 0,
        }
    }

    fn alloc(&self, bytes: u64, align: u64, _place: Placement) -> VAddr {
        let align = align.max(1);
        let mut cur = self.next_addr.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            match self.next_addr.compare_exchange_weak(
                cur,
                base + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return base,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline(always)]
    fn read(&self, _ctx: &mut NativeCtx, _addr: VAddr, _bytes: u32) {}

    #[inline(always)]
    fn write(&self, _ctx: &mut NativeCtx, _addr: VAddr, _bytes: u32) {}

    #[inline(always)]
    fn compute(&self, _ctx: &mut NativeCtx, _cycles: u64) {}

    fn lock(&self, ctx: &mut NativeCtx, lock: usize) {
        let m = &self.locks[lock_slot(lock, NATIVE_LOCK_TABLE)];
        ctx.lock_acquires += 1;
        if !m.try_lock() {
            let t0 = Instant::now();
            m.lock();
            ctx.lock_wait_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn unlock(&self, _ctx: &mut NativeCtx, lock: usize) {
        self.locks[lock_slot(lock, NATIVE_LOCK_TABLE)].unlock()
    }

    fn barrier(&self, ctx: &mut NativeCtx) {
        let t0 = Instant::now();
        self.barrier.wait();
        ctx.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
    }

    fn now(&self, _ctx: &NativeCtx) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn stats(&self, ctx: &NativeCtx) -> CtxStats {
        CtxStats {
            time: self.now(ctx),
            lock_acquires: ctx.lock_acquires,
            lock_wait: ctx.lock_wait_ns,
            barrier_wait: ctx.barrier_wait_ns,
            ..CtxStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let env = NativeEnv::new(1);
        let a = env.alloc(100, 64, Placement::Global);
        let b = env.alloc(10, 64, Placement::Global);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        let env = NativeEnv::new(4);
        let counter = std::cell::UnsafeCell::new(0u64);
        struct Wrap(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only mutated while holding lock 7 below.
        unsafe impl Sync for Wrap {}
        let shared = Wrap(counter);
        const ITERS: u64 = 20_000;
        std::thread::scope(|s| {
            for p in 0..4 {
                let env = &env;
                let shared = &shared;
                s.spawn(move || {
                    let mut ctx = env.make_ctx(p);
                    for _ in 0..ITERS {
                        env.lock(&mut ctx, 7);
                        // SAFETY: guarded by lock 7.
                        unsafe { *shared.0.get() += 1 };
                        env.unlock(&mut ctx, 7);
                    }
                });
            }
        });
        // SAFETY: all worker threads have joined; no concurrent access.
        assert_eq!(unsafe { *shared.0.get() }, 4 * ITERS);
    }

    #[test]
    fn lock_stats_are_counted() {
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        for i in 0..10 {
            env.lock(&mut ctx, i);
            env.unlock(&mut ctx, i);
        }
        assert_eq!(env.stats(&ctx).lock_acquires, 10);
    }

    #[test]
    fn barrier_synchronizes_all_procs() {
        let env = NativeEnv::new(8);
        let flag = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..8 {
                let env = &env;
                let flag = &flag;
                s.spawn(move || {
                    let mut ctx = env.make_ctx(p);
                    flag.fetch_add(1, Ordering::SeqCst);
                    env.barrier(&mut ctx);
                    // After the barrier every increment must be visible.
                    assert_eq!(flag.load(Ordering::SeqCst), 8);
                });
            }
        });
    }

    #[test]
    fn lock_slot_preserves_reserved_range() {
        for id in 0..64 {
            assert_eq!(lock_slot(id, NATIVE_LOCK_TABLE), id);
        }
        for id in [64usize, 65, 4095, 4096, 1 << 20] {
            let slot = lock_slot(id, NATIVE_LOCK_TABLE);
            assert!((64..NATIVE_LOCK_TABLE).contains(&slot), "id {id} -> {slot}");
        }
        // The smallest legal table still separates the two ranges.
        assert_eq!(lock_slot(64, 65), 64);
        assert_eq!(lock_slot(129, 65), 64);
    }

    #[test]
    fn colliding_ids_share_one_slot_and_still_exclude() {
        // At the smallest legal table (65 entries: 64 reserved + 1 shared
        // slot) every non-reserved id collides. Collision must degrade to
        // contention, never to broken mutual exclusion.
        const TABLE: usize = 65;
        let ids = [64usize, 65, 1 << 16];
        for id in ids {
            assert_eq!(lock_slot(id, TABLE), 64, "id {id} must land in slot 64");
        }
        let locks: Vec<RawLock> = (0..TABLE).map(|_| RawLock::new()).collect();
        let counter = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for id in ids {
                let locks = &locks;
                let counter = &counter;
                let max_seen = &max_seen;
                s.spawn(move || {
                    for _ in 0..2_000 {
                        locks[lock_slot(id, TABLE)].lock();
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        locks[lock_slot(id, TABLE)].unlock();
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "cannot preserve")]
    fn lock_slot_rejects_tiny_tables() {
        // A table no larger than the reserved range would alias node locks
        // into the reserved slots (or divide by zero); it must fail loudly.
        let _ = lock_slot(100, 64);
    }

    #[test]
    fn ctx_stats_delta_and_accumulate_roundtrip() {
        let s0 = CtxStats {
            time: 100,
            lock_acquires: 3,
            lock_wait: 10,
            barrier_wait: 5,
            remote_misses: 2,
            local_misses: 7,
            page_faults: 1,
        };
        let s1 = CtxStats {
            time: 250,
            lock_acquires: 8,
            lock_wait: 40,
            barrier_wait: 9,
            remote_misses: 2,
            local_misses: 11,
            page_faults: 4,
        };
        let d = s1.delta_since(&s0);
        assert_eq!(d.time, 150);
        assert_eq!(d.lock_acquires, 5);
        assert_eq!(d.lock_wait, 30);
        assert_eq!(d.barrier_wait, 4);
        assert_eq!(d.remote_misses, 0);
        assert_eq!(d.local_misses, 4);
        assert_eq!(d.page_faults, 3);
        let mut acc = s0;
        acc.accumulate(&d);
        assert_eq!(acc, s1);
    }

    #[test]
    fn phase_metadata_is_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Phase::Tree.name(), "tree");
    }

    #[test]
    fn region_metadata_is_consistent() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(format!("{r}"), r.name());
        }
        let mut names: Vec<&str> = Region::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Region::COUNT, "duplicate region names");
        // Free-list locks protect the allocator, node locks the cells.
        assert_eq!(Region::of_lock(0), Region::TreeAlloc);
        assert_eq!(Region::of_lock(63), Region::TreeAlloc);
        assert_eq!(Region::of_lock(64), Region::TreeCells);
        assert_eq!(Region::of_lock(1 << 20), Region::TreeCells);
    }

    #[test]
    fn phase_hooks_default_to_noops() {
        // The hooks must be callable on any Env without affecting time or
        // statistics.
        let env = NativeEnv::new(1);
        let mut ctx = env.make_ctx(0);
        let before = env.stats(&ctx);
        env.phase_begin(&mut ctx, Phase::Tree, 0);
        env.phase_end(&mut ctx, Phase::Tree, 0);
        let after = env.stats(&ctx);
        assert_eq!(before.lock_acquires, after.lock_acquires);
        assert_eq!(before.barrier_wait, after.barrier_wait);
    }

    #[test]
    fn time_advances() {
        let env = NativeEnv::new(1);
        let ctx = env.make_ctx(0);
        let t0 = env.now(&ctx);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(env.now(&ctx) > t0);
    }
}
